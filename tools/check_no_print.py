#!/usr/bin/env python3
"""Lint: no bare ``print(`` in library code; no naked clock calls.

Library layers report through structured logging (:mod:`repro.log`) and
telemetry (:mod:`repro.obs`); a stray ``print`` bypasses both and spams
host applications. The CLI is the program edge and prints by design, so
it is allowlisted.

Second check: no naked ``time.time()`` / ``time.monotonic()`` *calls*
inside ``src/repro/serve`` and ``src/repro/obs``. Those trees are the
flight recorder and the cluster it observes — every timestamp must flow
through an injectable clock seam (``self._clock``, a ``clock=``
constructor parameter) or the deterministic-simulation harness and the
byte-stable telemetry artifacts silently break. Default arguments like
``clock: Callable = time.monotonic`` are references, not calls, and
stay legal: they *are* the seam. The chaos drill module is allowlisted
because it measures real subprocesses with real wall clocks on purpose.

AST-based, so strings and docstrings that merely mention ``print(`` do
not trip the check. Exits non-zero listing each offending call site.

Usage: ``python tools/check_no_print.py [root]`` (default: ``src/repro``).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Program-edge modules that print to the user on purpose.
ALLOWLIST = frozenset({
    "src/repro/cli.py",
    "src/repro/__main__.py",
    "src/repro/sketch/accuracy.py",
})

#: Trees where wall-clock reads must go through an injectable seam.
CLOCK_SCOPE = ("src/repro/serve/", "src/repro/obs/")

#: Modules inside the clock scope that legitimately read the wall clock
#: (the chaos drill times real subprocess lifecycles).
CLOCK_ALLOWLIST = frozenset({
    "src/repro/serve/chaos.py",
})

_CLOCK_ATTRS = frozenset({"time", "monotonic"})


def find_prints(path: Path) -> list:
    """(line, col) of every ``print(...)`` call in *path*."""
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    except SyntaxError as exc:
        print(f"{path}: syntax error: {exc}", file=sys.stderr)
        return [(exc.lineno or 0, exc.offset or 0)]
    sites = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            sites.append((node.lineno, node.col_offset))
    return sites


def find_naked_clock_calls(path: Path) -> list:
    """(line, col, name) of every ``time.time()``/``time.monotonic()``
    *call* in *path* (attribute references — default args — are fine)."""
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    except SyntaxError:
        return []
    sites = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "time"
            and node.func.attr in _CLOCK_ATTRS
        ):
            sites.append(
                (node.lineno, node.col_offset, f"time.{node.func.attr}()")
            )
    return sites


def main(argv) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path("src/repro")
    repo = Path.cwd()
    failures = 0
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(repo).as_posix() if path.is_absolute() else (
            path.as_posix()
        )
        if rel not in ALLOWLIST:
            for line, col in find_prints(path):
                print(f"{rel}:{line}:{col}: bare print() in library code "
                      "(use repro.log / repro.obs)")
                failures += 1
        if (
            rel.startswith(CLOCK_SCOPE)
            and rel not in CLOCK_ALLOWLIST
        ):
            for line, col, name in find_naked_clock_calls(path):
                print(f"{rel}:{line}:{col}: naked {name} call "
                      "(thread an injectable clock seam instead)")
                failures += 1
    if failures:
        print(f"{failures} lint failure(s) found", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
