#!/usr/bin/env python3
"""Lint: no bare ``print(`` in library code under ``src/repro/``.

Library layers report through structured logging (:mod:`repro.log`) and
telemetry (:mod:`repro.obs`); a stray ``print`` bypasses both and spams
host applications. The CLI is the program edge and prints by design, so
it is allowlisted.

AST-based, so strings and docstrings that merely mention ``print(`` do
not trip the check. Exits non-zero listing each offending call site.

Usage: ``python tools/check_no_print.py [root]`` (default: ``src/repro``).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Program-edge modules that print to the user on purpose.
ALLOWLIST = frozenset({
    "src/repro/cli.py",
    "src/repro/__main__.py",
})


def find_prints(path: Path) -> list:
    """(line, col) of every ``print(...)`` call in *path*."""
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    except SyntaxError as exc:
        print(f"{path}: syntax error: {exc}", file=sys.stderr)
        return [(exc.lineno or 0, exc.offset or 0)]
    sites = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            sites.append((node.lineno, node.col_offset))
    return sites


def main(argv) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path("src/repro")
    repo = Path.cwd()
    failures = 0
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(repo).as_posix() if path.is_absolute() else (
            path.as_posix()
        )
        if rel in ALLOWLIST:
            continue
        for line, col in find_prints(path):
            print(f"{rel}:{line}:{col}: bare print() in library code "
                  "(use repro.log / repro.obs)")
            failures += 1
    if failures:
        print(f"{failures} bare print call(s) found", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
