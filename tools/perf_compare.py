#!/usr/bin/env python3
"""Gate: substrate speedups must not regress against the committed baseline.

Compares two ``bench_throughput`` result files (see
``benchmarks/bench_throughput.py``) substrate by substrate. The compared
quantity is each substrate's **speedup ratio** (fast path over reference
path measured in the same process on the same input), not its absolute
rate — ratios survive the hardware change between the maintainer's
machine that committed the baseline and the CI runner that checks it.

A substrate regresses when::

    candidate_speedup < baseline_speedup / tolerance

Missing substrates in the candidate also fail (a deleted bench is not a
passing bench). Prints a comparison table either way; exits 1 on any
regression.

``--require NAME:FLOOR`` (repeatable) additionally pins an **absolute**
speedup floor on the *baseline* number — e.g. ``rsdos_sketch:5.0``
asserts the committed baseline still claims the sketch tier is at least
5x the columnar tier. The relative rule above tolerates slow CI runners;
the absolute rule guards the committed claim itself from quietly eroding
across baseline refreshes.

Usage::

    python tools/perf_compare.py benchmarks/out/throughput.json \
        candidate.json [--tolerance 1.5] [--require rsdos_sketch:5.0]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_substrates(path: Path) -> dict:
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"{path}: unreadable bench JSON: {exc}")
    substrates = document.get("substrates")
    if not isinstance(substrates, dict) or not substrates:
        raise SystemExit(f"{path}: no 'substrates' map in bench JSON")
    return substrates


def compare(baseline: dict, candidate: dict, tolerance: float) -> list:
    """(substrate, base speedup, cand speedup, floor, ok) per baseline row."""
    rows = []
    for name in baseline:
        base = float(baseline[name]["speedup"])
        floor = base / tolerance
        entry = candidate.get(name)
        cand = float(entry["speedup"]) if entry else None
        ok = cand is not None and cand >= floor
        rows.append((name, base, cand, floor, ok))
    return rows


def render(rows: list, tolerance: float) -> str:
    lines = [
        f"Substrate speedup vs. committed baseline (tolerance {tolerance}x)",
        "",
        f"{'substrate':<14} {'baseline':>9} {'candidate':>10} "
        f"{'floor':>7}  verdict",
    ]
    for name, base, cand, floor, ok in rows:
        shown = f"{cand:.2f}x" if cand is not None else "missing"
        lines.append(
            f"{name:<14} {base:>8.2f}x {shown:>10} {floor:>6.2f}x  "
            + ("ok" if ok else "REGRESSED")
        )
    return "\n".join(lines)


def parse_requirement(spec: str) -> tuple:
    """``NAME:FLOOR`` -> (name, floor); raises SystemExit on bad specs."""
    name, sep, floor_text = spec.partition(":")
    if not sep or not name:
        raise SystemExit(f"--require {spec!r}: expected NAME:FLOOR")
    try:
        floor = float(floor_text)
    except ValueError:
        raise SystemExit(f"--require {spec!r}: FLOOR must be a number")
    if floor <= 0:
        raise SystemExit(f"--require {spec!r}: FLOOR must be positive")
    return name, floor


def check_requirements(baseline: dict, requirements: list) -> list:
    """Absolute-floor failures against the committed baseline numbers."""
    failures = []
    for name, floor in requirements:
        entry = baseline.get(name)
        if entry is None:
            failures.append(f"{name}: required substrate missing from baseline")
            continue
        speedup = float(entry["speedup"])
        if speedup < floor:
            failures.append(
                f"{name}: baseline speedup {speedup:.2f}x "
                f"below required floor {floor:.2f}x"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="committed bench JSON")
    parser.add_argument("candidate", type=Path, help="fresh bench JSON")
    parser.add_argument(
        "--tolerance", type=float, default=1.5,
        help="allowed shrink factor on each speedup ratio (default: 1.5)",
    )
    parser.add_argument(
        "--require", action="append", default=[], metavar="NAME:FLOOR",
        help="absolute speedup floor the committed baseline must meet "
             "(repeatable, e.g. rsdos_sketch:5.0)",
    )
    args = parser.parse_args(argv)
    if args.tolerance < 1.0:
        parser.error("--tolerance must be >= 1.0")
    requirements = [parse_requirement(spec) for spec in args.require]
    baseline = load_substrates(args.baseline)
    rows = compare(
        baseline,
        load_substrates(args.candidate),
        args.tolerance,
    )
    print(render(rows, args.tolerance))
    failed = False
    regressed = [name for name, _, _, _, ok in rows if not ok]
    if regressed:
        print(
            f"regressed: {', '.join(regressed)}", file=sys.stderr
        )
        failed = True
    for failure in check_requirements(baseline, requirements):
        print(f"requirement failed: {failure}", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
