"""In-process transport: ``sim://node`` URLs, seeded network faults.

Implements the exchange interface from :mod:`repro.serve.transport`, so
a :class:`~repro.serve.client.ServeClient` and every follower's
:class:`~repro.serve.replication.WalShipper` talk to the virtual cluster
through the same code path they use against real HTTP — except the
"network" here is a seeded RNG that can drop requests, drop responses
(after the side effect happened — the at-least-once hazard), duplicate
deliveries, serve a stale cached reply (reordering; stale epochs), add
latency on the simulated clock, and enforce partitions.

:func:`dispatch` mirrors the :mod:`repro.serve.http` handler mapping for
the endpoints the shipper and client exercise, minus the socket layer:
same paths, same status codes, same JSON bodies.
"""

from __future__ import annotations

import json
import urllib.parse
from typing import Callable, Dict, FrozenSet, Optional, Set, Tuple

import random

from repro.serve.admission import SubmitResult
from repro.serve.transport import TransportError, TransportResponse
from repro.serve.wal import KIND_ATTACK, KIND_DPS
from repro.simtest.clock import SimClock

SCHEME = "sim://"


def _json_response(status: int, body: dict,
                   retry_after: Optional[float] = None) -> TransportResponse:
    headers = {"Content-Type": "application/json"}
    if retry_after is not None:
        headers["Retry-After"] = f"{retry_after:g}"
    return TransportResponse(
        status=status,
        data=json.dumps(body, sort_keys=True).encode("utf-8"),
        headers=headers,
    )


def _parse_records(body: Optional[bytes]):
    if not body:
        return None
    try:
        data = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if isinstance(data, dict) and isinstance(data.get("records"), list):
        return data["records"]
    if isinstance(data, list):
        return data
    return None


def _ingest_response(result: SubmitResult) -> TransportResponse:
    status = result.http_status()
    return _json_response(
        status,
        result.to_dict(),
        retry_after=result.retry_after if status == 503 else None,
    )


def dispatch(service, method: str, path: str,
             body: Optional[bytes] = None,
             headers=None) -> TransportResponse:
    """Route one request to a live service object, http.py-compatibly.

    Mirrors the real handler's flight-recorder plumbing too: an incoming
    ``X-Repro-Trace-Id`` is honored (else the node mints one,
    deterministically — node name + counter), the request lands in the
    service's bounded request log, a ``serve.http`` span wraps the
    route, and the trace ID is echoed in the response headers.
    """
    parsed = urllib.parse.urlsplit(path)
    route = parsed.path
    query = {
        key: values[-1]
        for key, values in urllib.parse.parse_qs(parsed.query).items()
    }
    trace = None
    if headers:
        trace = headers.get("X-Repro-Trace-Id")
    if not trace:
        trace = service.mint_trace_id()
    started = service._clock()
    with service.tracer.span(
        "serve.http",
        trace_id=trace,
        endpoint=route,
        method=method,
        node=service.node_name,
        role=service.cluster.role,
        epoch=service.cluster.epoch,
    ) as span:
        response = _route(service, method, route, query, body, trace)
        span.set_attr(status=response.status)
    service.requests.record(
        trace, route, method, response.status,
        max(0.0, service._clock() - started),
        node=service.node_name, role=service.cluster.role,
    )
    response.headers["X-Repro-Trace-Id"] = trace
    return response


def _route(service, method: str, route: str, query: dict,
           body: Optional[bytes], trace: str) -> TransportResponse:
    if method == "GET":
        if route == "/healthz":
            seg_count, wal_bytes = service._update_wal_gauges()
            return _json_response(200, {
                "ok": True,
                "draining": service._draining.is_set(),
                "degraded": service.degraded,
                "role": service.cluster.role,
                "epoch": service.cluster.epoch,
                "primary_url": service.cluster.primary_url,
                "wal_segments": seg_count,
                "wal_bytes": wal_bytes,
                "snapshot_age_s": round(
                    service._clock() - service._last_snapshot_at, 3
                ),
            })
        if route == "/status":
            return _json_response(200, service.status_doc())
        if route == "/metrics/history":
            last = None
            if "last" in query:
                try:
                    last = max(0, int(query["last"]))
                except ValueError:
                    return _json_response(
                        400, {"error": "?last= must be an integer"}
                    )
            return _json_response(200, service.history.history_doc(last))
        if route == "/stats":
            return _json_response(200, service.stats())
        if route == "/digest":
            return _json_response(200, {
                "digest": service.store.state_digest(),
                "applied_seq": service.applied_seq,
            })
        if route == "/replication/status":
            committed = None
            if "committed" in query:
                try:
                    committed = int(query["committed"])
                except ValueError:
                    return _json_response(
                        400, {"error": "?committed= must be an integer"}
                    )
            return _json_response(200, service.replication_status(
                query.get("follower"), committed
            ))
        if route == "/replication/segment":
            try:
                first = int(query["first"])
                offset = int(query.get("offset", 0))
                limit = int(query.get("limit", 1 << 20))
            except (KeyError, ValueError):
                return _json_response(
                    400, {"error": "need ?first=N&offset=M[&limit=K]"}
                )
            chunk = service.wal.read_chunk(first, offset, max(1, limit))
            if chunk is None:
                return _json_response(404, {
                    "error": f"no WAL segment starting at seq {first}"
                })
            return TransportResponse(
                status=200, data=chunk,
                headers={"Content-Type": "application/octet-stream"},
            )
        if route == "/replication/snapshot":
            loaded = service.snapshots.load_newest_valid()
            if not loaded.found:
                return _json_response(404, {"error": "no valid snapshot yet"})
            return _json_response(200, loaded.payload)
        return _json_response(404, {"error": f"no such endpoint: {route}"})
    if method == "POST":
        if route == "/promote":
            return _json_response(200, service.promote())
        if route == "/replication/fence":
            data = json.loads((body or b"{}").decode("utf-8"))
            epoch = data.get("epoch")
            if not isinstance(epoch, int) or isinstance(epoch, bool):
                return _json_response(
                    400, {"error": '"epoch" must be an integer'}
                )
            if service.fence(epoch, data.get("primary_url")):
                return _json_response(200, {
                    "fenced": True,
                    "role": service.cluster.role,
                    "epoch": service.cluster.epoch,
                })
            return _json_response(409, {
                "fenced": False,
                "error": "stale epoch",
                "epoch": service.cluster.epoch,
            })
        if route in ("/ingest/attacks", "/ingest/dps"):
            records = _parse_records(body)
            if records is None:
                return _json_response(
                    400, {"error": "body required (JSON records)"}
                )
            if route == "/ingest/dps":
                feed, kind = "dps", KIND_DPS
            else:
                feed, kind = query.get("feed", "telescope"), KIND_ATTACK
            result = service.submit(feed, kind, records, trace=trace)
            return _ingest_response(result)
        return _json_response(404, {"error": f"no such endpoint: {route}"})
    return _json_response(405, {"error": f"method {method} not supported"})


class _BoundTransport:
    """The per-caller view: carries who is calling for partition checks."""

    def __init__(self, transport: "SimTransport", caller: str) -> None:
        self._transport = transport
        self.caller = caller

    def exchange(self, method, url, body=None, headers=None, timeout=10.0):
        return self._transport.exchange_from(
            self.caller, method, url, body=body, headers=headers,
            timeout=timeout,
        )


class SimTransport:
    """The virtual network: routing + seeded fault schedule."""

    def __init__(self, seed: int, clock: Optional[SimClock] = None) -> None:
        self.rng = random.Random(seed ^ 0x5EED)
        self.clock = clock if clock is not None else SimClock()
        self._nodes: Dict[str, Callable[[], Optional[object]]] = {}
        self._partitions: Set[FrozenSet[str]] = set()
        #: Per-exchange fault probabilities.
        self.drop_request_rate = 0.0
        self.drop_response_rate = 0.0
        self.duplicate_rate = 0.0
        self.stale_rate = 0.0
        self.delay_rate = 0.0
        self.delay_s = 0.05
        self._reply_cache: Dict[Tuple[str, str, str], TransportResponse] = {}
        self.exchanges = 0
        self.faults: Dict[str, int] = {}
        #: Observer called as ``on_response(target, method, path,
        #: response)`` after every *delivered* dispatch (duplicates
        #: included) — the harness hooks its write-attribution oracle
        #: here, since every accepted write crosses this chokepoint.
        self.on_response: Optional[Callable] = None

    # -- wiring ---------------------------------------------------------------

    def register(
        self, name: str, get_service: Callable[[], Optional[object]]
    ) -> None:
        """Register a node; *get_service* returns None while crashed."""
        self._nodes[name] = get_service

    def bind(self, caller: str) -> _BoundTransport:
        """A transport whose exchanges originate at *caller*."""
        return _BoundTransport(self, caller)

    def url_of(self, name: str) -> str:
        return f"{SCHEME}{name}"

    # -- faults ---------------------------------------------------------------

    def set_rates(self, *, drop: float = 0.0, dup: float = 0.0,
                  stale: float = 0.0, delay: float = 0.0) -> None:
        """Set per-exchange fault probabilities (drop splits 50/50
        between request-drop and response-drop)."""
        self.drop_request_rate = drop / 2.0
        self.drop_response_rate = drop / 2.0
        self.duplicate_rate = dup
        self.stale_rate = stale
        self.delay_rate = delay

    def partition(self, a: str, b: str) -> None:
        self._partitions.add(frozenset((a, b)))

    def heal(self, a: Optional[str] = None, b: Optional[str] = None) -> None:
        """Heal one pair, or everything when called with no arguments."""
        if a is None and b is None:
            self._partitions.clear()
        else:
            self._partitions.discard(frozenset((a, b)))

    def partitioned(self, a: str, b: str) -> bool:
        return frozenset((a, b)) in self._partitions

    def _count(self, fault: str) -> None:
        self.faults[fault] = self.faults.get(fault, 0) + 1

    # -- the exchange ---------------------------------------------------------

    def exchange_from(self, caller: str, method: str, url: str,
                      body: Optional[bytes] = None,
                      headers=None, timeout: float = 10.0
                      ) -> TransportResponse:
        if not url.startswith(SCHEME):
            raise TransportError(f"not a sim url: {url}")
        rest = url[len(SCHEME):]
        target, _, path = rest.partition("/")
        path = "/" + path
        self.exchanges += 1
        # Roll every fault up front, in fixed order, so the number of
        # RNG draws per exchange is constant — determinism survives any
        # control-flow shortcut below.
        roll = self.rng.random
        drop_req = roll() < self.drop_request_rate
        drop_resp = roll() < self.drop_response_rate
        duplicate = roll() < self.duplicate_rate
        stale = roll() < self.stale_rate
        delayed = roll() < self.delay_rate
        if delayed:
            self._count("delay")
            self.clock.advance(self.delay_s)
        get_service = self._nodes.get(target)
        if get_service is None:
            raise TransportError(f"unknown sim node: {target}")
        if self.partitioned(caller, target):
            self._count("partitioned")
            self.clock.advance(min(timeout, 1.0))
            raise TransportError(
                f"{caller} -> {target}: partitioned (simulated)"
            )
        service = get_service()
        if service is None:
            raise TransportError(f"{target}: connection refused (crashed)")
        if drop_req:
            self._count("drop_request")
            self.clock.advance(min(timeout, 1.0))
            raise TransportError(f"{target}: request lost (simulated)")
        cache_key = (target, method, path)
        if stale and cache_key in self._reply_cache:
            # A delayed older reply for this exact request arrives
            # instead of a fresh one — reordering, stale epochs included.
            self._count("stale_reply")
            return self._reply_cache[cache_key]
        response = dispatch(service, method, path, body, headers)
        if self.on_response is not None:
            self.on_response(target, method, path, response)
        if duplicate:
            # The request was delivered twice; the second delivery's
            # side effects happen, the second response wins.
            self._count("duplicate")
            response = dispatch(service, method, path, body, headers)
            if self.on_response is not None:
                self.on_response(target, method, path, response)
        self._reply_cache[cache_key] = response
        if drop_resp:
            self._count("drop_response")
            self.clock.advance(min(timeout, 1.0))
            raise TransportError(
                f"{target}: response lost after delivery (simulated)"
            )
        return response


__all__ = ["SCHEME", "SimTransport", "dispatch"]
