"""Virtual time for the simulation: nothing waits, everything advances.

Every ``time.monotonic``/``time.sleep`` in the serve layer is injectable
(``LiveIngestService(clock=..., sleep=...)``); the harness passes one
:class:`SimClock` everywhere, so timeouts, breaker cooldowns, snapshot
intervals and retry backoffs all read the same deterministic timeline —
and a "five second" sync timeout costs zero wall-clock.
"""

from __future__ import annotations


class SimClock:
    """A monotonic clock that only moves when told to."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        #: Total simulated seconds slept through :meth:`sleep`.
        self.slept = 0.0

    def __call__(self) -> float:
        """Callable like ``time.monotonic`` (the clock seam's shape)."""
        return self._now

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("time only moves forward in the simulation")
        self._now += seconds
        return self._now

    def sleep(self, seconds: float) -> None:
        """Injectable ``time.sleep``: advancing time *is* sleeping."""
        if seconds > 0:
            self.slept += seconds
            self.advance(seconds)


__all__ = ["SimClock"]
