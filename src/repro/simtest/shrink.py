"""Greedy fault-schedule minimization (delta debugging on op lists).

A failing trace from the seed sweep usually carries dozens of irrelevant
ops around the handful that actually interact. The shrinker re-runs the
executor on candidate subsets — determinism makes every re-run
faithful — and keeps any reduction that still fails:

1. **Chunk removal**: try deleting windows of ops, halving the window
   size down to single ops (classic ddmin shape, greedy variant).
2. **Op simplification**: per surviving op, try cheaper parameters —
   one-record ingests, zero-keep power cuts, un-torn disk-full — so the
   committed corpus trace reads as close to the invariant boundary as
   possible.

The failure signature is the set of oracle names that fired; a shrink
step only counts when the *same* oracle still fires, so minimization
cannot wander from a durability violation to an unrelated crash.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.simtest.harness import TRACE_VERSION, execute_ops


def _signature(violations: List[dict]) -> frozenset:
    return frozenset(v.get("oracle", "?") for v in violations)


def _still_fails(seed: int, config: dict, ops: List[dict],
                 signature: frozenset) -> Tuple[bool, List[dict], dict]:
    violations, summary = execute_ops(seed, config, ops)
    return signature <= _signature(violations), violations, summary


def _simplify_op(op: dict) -> Optional[dict]:
    """A strictly-simpler variant of *op*, or None if already minimal."""
    kind = op.get("op")
    if kind == "ingest" and int(op.get("count", 1)) > 1:
        smaller = dict(op)
        smaller["count"] = 1
        return smaller
    if kind == "crash" and op.get("mode") == "power" \
            and float(op.get("keep_fraction", 0.0)) > 0.0:
        smaller = dict(op)
        smaller["keep_fraction"] = 0.0
        return smaller
    if kind == "disk_full" and int(op.get("torn", 0)) > 0:
        smaller = dict(op)
        smaller["torn"] = 0
        return smaller
    if kind == "advance" and float(op.get("seconds", 0.0)) > 0.1:
        smaller = dict(op)
        smaller["seconds"] = 0.1
        return smaller
    return None


def shrink_trace(trace: dict, max_runs: int = 400) -> Tuple[dict, int]:
    """Minimize a failing trace; returns (minimized trace, runs used).

    The input trace must fail (non-empty ``violations``); raises
    ``ValueError`` when its baseline re-run passes — a trace that no
    longer reproduces must not be silently "minimized" to nothing.
    """
    seed = int(trace["seed"])
    config = dict(trace["config"])
    ops = list(trace["ops"])
    runs = 1
    baseline, summary = execute_ops(seed, config, ops)
    if not baseline:
        raise ValueError(
            "trace does not fail on re-run; nothing to shrink"
        )
    signature = _signature(baseline)
    violations = baseline
    # Phase 1: chunked removal, window halving to 1.
    chunk = max(1, len(ops) // 2)
    while chunk >= 1 and runs < max_runs:
        index = 0
        while index < len(ops) and runs < max_runs:
            candidate = ops[:index] + ops[index + chunk:]
            runs += 1
            fails, cand_violations, cand_summary = _still_fails(
                seed, config, candidate, signature
            )
            if fails and len(candidate) < len(ops):
                ops = candidate
                violations, summary = cand_violations, cand_summary
                # Same index now points at the next window.
            else:
                index += chunk
        chunk //= 2
    # Phase 2: per-op parameter simplification to a fixpoint.
    changed = True
    while changed and runs < max_runs:
        changed = False
        for index in range(len(ops)):
            simpler = _simplify_op(ops[index])
            if simpler is None:
                continue
            candidate = ops[:index] + [simpler] + ops[index + 1:]
            runs += 1
            fails, cand_violations, cand_summary = _still_fails(
                seed, config, candidate, signature
            )
            if fails:
                ops = candidate
                violations, summary = cand_violations, cand_summary
                changed = True
            if runs >= max_runs:
                break
    minimized = {
        "version": TRACE_VERSION,
        "seed": seed,
        "config": config,
        "ops": ops,
        "violations": violations,
        "summary": summary,
    }
    return minimized, runs


__all__ = ["shrink_trace"]
