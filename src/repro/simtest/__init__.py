"""Deterministic simulation testing for the serve cluster.

A FoundationDB-style harness: the whole primary/follower cluster runs as
plain in-process objects — no sockets, no threads, no subprocesses — on
three injected seams the serve layer exposes:

* :class:`~repro.simtest.clock.SimClock` replaces every ``time`` call;
* :class:`~repro.simtest.disk.SimDisk` sits under the write-ahead log
  and injects torn writes, power cuts that lose the unfsynced tail, and
  ENOSPC at chosen points;
* :class:`~repro.simtest.transport.SimTransport` implements the
  WalShipper/ServeClient exchange interface with seeded drop, duplicate,
  stale-reply, delay and partition faults.

A seeded generator produces a fault schedule (a list of plain-dict ops),
a pure executor runs it, and an oracle asserts the standing invariants
after final recovery: every acked write survives exactly once (modulo
the documented power-cut window), every surviving node converges to the
WAL-replay digest, and at most one node per epoch accepted writes.
Failures are written as replayable JSON traces and minimized by
:mod:`~repro.simtest.shrink` into ``tests/simtest_corpus/``.
"""

from repro.simtest.clock import SimClock
from repro.simtest.disk import MemorySnapshotStore, SimDisk
from repro.simtest.transport import SimTransport
from repro.simtest.harness import (
    TRACE_VERSION,
    default_spec,
    generate_ops,
    run_sim,
    run_trace,
    trace_to_json,
)
from repro.simtest.shrink import shrink_trace

__all__ = [
    "MemorySnapshotStore",
    "SimClock",
    "SimDisk",
    "SimTransport",
    "TRACE_VERSION",
    "default_spec",
    "generate_ops",
    "run_sim",
    "run_trace",
    "shrink_trace",
    "trace_to_json",
]
