"""The deterministic cluster simulation: generate, execute, check.

One run is a pure function of ``(seed, config)``:

1. :func:`generate_ops` draws a **fault schedule** — a list of plain-dict
   ops (ingest bursts, applier ticks, replication polls, crashes with
   process/power semantics, partitions, disk-full windows, network fault
   rates, failovers, snapshot corruption) — from a seeded RNG. Ops carry
   every parameter; the executor never draws randomness of its own
   beyond the transport's seeded fault rolls.
2. :class:`_Sim` executes the ops against a virtual serve cluster:
   primary + followers as plain :class:`~repro.serve.service.LiveIngestService`
   objects on :class:`~repro.simtest.clock.SimClock` /
   :class:`~repro.simtest.disk.SimDisk` /
   :class:`~repro.simtest.transport.SimTransport`. Ingest goes through a
   real :class:`~repro.serve.client.ServeClient`, so retry, Retry-After,
   409-redirect and failover logic are inside the tested surface. Every
   202 the client sees lands its sequence range in the **acked ledger**.
3. A **settle phase** heals all faults, restarts every node, resolves a
   single primary, re-aims and (when diverged) re-seeds followers, and
   pumps replication until the cluster converges.
4. The **oracles** then assert the standing invariants:

   * *durability* — every acked sequence is present in the final
     primary's full-WAL replay or named by a shed tombstone, except
     sequences provably lost to a power cut's documented unfsynced
     window (collected at crash time by diffing WAL sequence sets);
   * *digest* — every non-fenced node's live store digest equals an
     offline replay oracle built from the final primary's WAL alone;
   * *epoch* — at most one node accepted writes per epoch (observed at
     the transport chokepoint, so split-brain cannot hide).

Failures ship as replayable JSON traces (:func:`trace_to_json` is
byte-stable for a given seed) and are minimized by
:func:`~repro.simtest.shrink.shrink_trace`.
"""

from __future__ import annotations

import json
import random
import shutil
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.pipeline.runner import RetryPolicy
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.replication import (
    CLUSTER_FILE,
    CURSOR_FILE,
    ReplicationError,
    ROLE_FENCED,
    ROLE_PRIMARY,
    ROLE_REPLICA,
)
from repro.serve.service import LiveIngestService, ServeConfig, WAL_DIR
from repro.serve.state import LiveFusedStore
from repro.serve.transport import TransportError
from repro.serve.wal import (
    KIND_ATTACK,
    KIND_DPS,
    KIND_SHED,
    WAL_KINDS,
    WriteAheadLog,
    segment_first_seq,
)
from repro.simtest.clock import SimClock
from repro.simtest.disk import MemorySnapshotStore, SimDisk
from repro.simtest.transport import SimTransport

TRACE_VERSION = 1

#: Relative op frequencies for the generator.
_OP_WEIGHTS = (
    ("ingest", 34),
    ("tick", 16),
    ("poll", 16),
    ("advance", 8),
    ("crash", 5),
    ("restart", 6),
    ("partition", 4),
    ("heal", 3),
    ("disk_full", 2),
    ("disk_free", 2),
    ("net", 2),
    ("failover", 1),
    ("corrupt_snapshot", 1),
)

_SETTLE_ROUNDS = 400
#: Pump rounds a follower may sit at the same committed sequence while
#: still behind before it is declared diverged and re-seeded.
_STALL_ROUNDS = 8


def default_spec(**overrides) -> dict:
    """The baseline simulation config; keyword args override fields."""
    spec = {
        "nodes": 3,
        "steps": 80,
        "records_per_ingest": 6,
        "queue_size": 64,
        "snapshot_every_events": 40,
        "snapshot_interval_s": 5.0,
        "snapshot_keep": 3,
        "fsync_every": 8,
        "sync_replicas": 1,
        "sync_timeout_s": 1.0,
        "retry_after": 0.2,
        "breaker_cooldown": 0.5,
        "apply_batch": 16,
        "baseline_days": 7,
        "alert_factor": 3.0,
        "max_events_per_victim": 64,
        "fault_rates": {
            "drop": 0.04,
            "dup": 0.03,
            "stale": 0.03,
            "delay": 0.05,
        },
    }
    spec.update(overrides)
    return spec


def make_records(feed: str, start: int, count: int) -> List[dict]:
    """Deterministic record batch: a pure function of (feed, start, count).

    Ops carry only ``start``/``count`` so traces stay small; the executor
    regenerates identical payloads on every replay.
    """
    records = []
    for i in range(count):
        n = start + i
        if feed == "dps":
            records.append({
                "domain": f"site-{n % 37}.example",
                "provider": f"dps-{n % 7}",
                "day": n % 5,
                "active": n % 3 != 0,
            })
        else:
            records.append({
                "source": feed,
                "target": (10 << 24) + (n % 499),
                "start_ts": float(n),
                "end_ts": float(n) + 30.0,
                "intensity": 50.0 + (n % 11),
            })
    return records


def generate_ops(seed: int, config: dict) -> List[dict]:
    """Draw a fault schedule from *seed*; every op is a plain dict.

    The generator keeps a lightweight cluster model (who is crashed,
    which pairs are partitioned, whose disk is full) so schedules stay
    *mostly* sensible — but the executor treats every op as total (a
    crash of a crashed node is a no-op), which is what lets the shrinker
    delete arbitrary subsets.
    """
    rng = random.Random(seed)
    names = [f"n{i}" for i in range(int(config["nodes"]))]
    total = sum(weight for _name, weight in _OP_WEIGHTS)
    crashed: Set[str] = set()
    partitions: List[Tuple[str, str]] = []
    full: Set[str] = set()
    next_start = 0
    ops: List[dict] = []
    for _ in range(int(config["steps"])):
        pick = rng.randrange(total)
        kind = _OP_WEIGHTS[-1][0]
        for name, weight in _OP_WEIGHTS:
            if pick < weight:
                kind = name
                break
            pick -= weight
        if kind == "ingest":
            feed = rng.choice(("telescope", "honeypot", "dps"))
            count = rng.randint(1, int(config["records_per_ingest"]))
            ops.append({
                "op": "ingest", "feed": feed,
                "start": next_start, "count": count,
            })
            next_start += count
        elif kind in ("tick", "poll"):
            ops.append({"op": kind, "node": rng.choice(names)})
        elif kind == "advance":
            ops.append({
                "op": "advance",
                "seconds": round(rng.uniform(0.05, 2.0), 3),
            })
        elif kind == "crash":
            alive = [n for n in names if n not in crashed]
            if not alive:
                ops.append({"op": "advance", "seconds": 0.1})
                continue
            node = rng.choice(alive)
            crashed.add(node)
            if rng.random() < 0.4:
                ops.append({
                    "op": "crash", "node": node, "mode": "power",
                    "keep_fraction": round(rng.random(), 3),
                })
            else:
                ops.append({"op": "crash", "node": node, "mode": "process"})
        elif kind == "restart":
            if crashed:
                node = rng.choice(sorted(crashed))
                crashed.discard(node)
                ops.append({"op": "restart", "node": node})
            else:
                ops.append({"op": "tick", "node": rng.choice(names)})
        elif kind == "partition":
            pool = names + ["client"]
            a, b = rng.sample(pool, 2)
            partitions.append((a, b))
            ops.append({"op": "partition", "a": a, "b": b})
        elif kind == "heal":
            if partitions and rng.random() < 0.5:
                a, b = partitions.pop(rng.randrange(len(partitions)))
                ops.append({"op": "heal", "a": a, "b": b})
            elif partitions:
                partitions.clear()
                ops.append({"op": "heal"})
            else:
                ops.append({"op": "advance", "seconds": 0.1})
        elif kind == "disk_full":
            candidates = [n for n in names if n not in full]
            if not candidates:
                ops.append({"op": "advance", "seconds": 0.1})
                continue
            node = rng.choice(candidates)
            full.add(node)
            ops.append({
                "op": "disk_full", "node": node,
                "torn": rng.choice((0, 0, 3, 9)),
            })
        elif kind == "disk_free":
            if full:
                node = rng.choice(sorted(full))
                full.discard(node)
                ops.append({"op": "disk_free", "node": node})
            else:
                ops.append({"op": "advance", "seconds": 0.1})
        elif kind == "net":
            if rng.random() < 0.35:
                ops.append({"op": "net"})
            else:
                rates = config.get("fault_rates") or {}
                ops.append({
                    "op": "net",
                    "drop": round(
                        rng.uniform(0, float(rates.get("drop", 0.1))), 3
                    ),
                    "dup": round(
                        rng.uniform(0, float(rates.get("dup", 0.05))), 3
                    ),
                    "stale": round(
                        rng.uniform(0, float(rates.get("stale", 0.05))), 3
                    ),
                    "delay": round(
                        rng.uniform(0, float(rates.get("delay", 0.1))), 3
                    ),
                })
        elif kind == "failover":
            if len(names) > 1:
                ops.append({"op": "failover"})
            else:
                ops.append({"op": "advance", "seconds": 0.1})
        elif kind == "corrupt_snapshot":
            ops.append({
                "op": "corrupt_snapshot",
                "node": rng.choice(names),
                "count": rng.randint(1, 2),
            })
    return ops


class _SimNode:
    """One virtual cluster member: durable layers + (maybe) a service."""

    def __init__(self, name: str, base_dir: Path) -> None:
        self.name = name
        self.data_dir = base_dir / name
        self.disk = SimDisk()
        self.snap_store = MemorySnapshotStore()
        self.service: Optional[LiveIngestService] = None
        self.crashed = False
        self.replica_of: Optional[str] = None


def _wal_seq_sets(node: _SimNode) -> Tuple[Set[int], Set[int]]:
    """(non-shed seqs, shed-tombstoned seqs) parseable from a node's WAL.

    Reads the raw SimDisk bytes directly — no service needed — skipping
    torn/partial lines, which is exactly what recovery would discard.
    """
    nonshed: Set[int] = set()
    shed: Set[int] = set()
    wal_dir = node.data_dir / WAL_DIR
    try:
        names = node.disk.listdir(wal_dir)
    except OSError:
        return nonshed, shed
    for name in names:
        if segment_first_seq(name) is None:
            continue
        try:
            raw = node.disk.read_bytes(wal_dir / name)
        except OSError:
            continue
        for line in raw.split(b"\n"):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                continue
            if not isinstance(data, dict):
                continue
            seq = data.get("seq")
            kind = data.get("kind")
            if not isinstance(seq, int) or kind not in WAL_KINDS:
                continue
            if kind == KIND_SHED:
                shed.update(
                    s
                    for s in (data.get("record") or {}).get("seqs", ())
                    if isinstance(s, int)
                )
            else:
                nonshed.add(seq)
    return nonshed, shed


class _Sim:
    """Executor state for one simulated cluster run."""

    def __init__(self, seed: int, config: dict) -> None:
        self.seed = seed
        self.config = config
        self.base_dir = Path(tempfile.mkdtemp(prefix="repro-simtest-"))
        self.clock = SimClock()
        self.transport = SimTransport(seed, clock=self.clock)
        self.names = [f"n{i}" for i in range(int(config["nodes"]))]
        self.nodes: Dict[str, _SimNode] = {
            name: _SimNode(name, self.base_dir) for name in self.names
        }
        for node in self.nodes.values():
            self.transport.register(
                node.name,
                lambda n=node: None if n.crashed else n.service,
            )
        self.transport.on_response = self._on_response
        self.acked: Set[int] = set()
        self.power_lost: Set[int] = set()
        self.shed_harvest: Set[int] = set()
        self.writes_by_epoch: Dict[int, Set[str]] = {}
        self.violations: List[dict] = []
        self.primary_name = self.names[0]
        self.max_epoch = 1
        primary_url = self.transport.url_of(self.primary_name)
        for name in self.names[1:]:
            self.nodes[name].replica_of = primary_url
        for name in self.names:
            self._start_node(self.nodes[name])
        self.client = ServeClient(
            [self.transport.url_of(name) for name in self.names],
            retry=RetryPolicy(
                max_attempts=6,
                backoff_base=0.05,
                backoff_max=1.0,
                jitter=True,
                jitter_seed=seed & 0xFFFF,
            ),
            timeout=2.0,
            sleep=self.clock.sleep,
            transport=self.transport.bind("client"),
        )

    # -- node lifecycle --------------------------------------------------------

    def _service_config(self, node: _SimNode) -> ServeConfig:
        c = self.config
        followers = max(0, len(self.names) - 1)
        return ServeConfig(
            data_dir=node.data_dir,
            manual_drive=True,
            wal_keep_all=True,
            queue_size=int(c["queue_size"]),
            retry_after=float(c["retry_after"]),
            snapshot_every_events=int(c["snapshot_every_events"]),
            snapshot_interval_s=float(c["snapshot_interval_s"]),
            snapshot_keep=int(c["snapshot_keep"]),
            wal_fsync_every=int(c["fsync_every"]),
            max_events_per_victim=int(c["max_events_per_victim"]),
            baseline_days=int(c["baseline_days"]),
            alert_factor=float(c["alert_factor"]),
            apply_batch=int(c["apply_batch"]),
            breaker_cooldown=float(c["breaker_cooldown"]),
            sync_replicas=min(int(c["sync_replicas"]), followers),
            sync_timeout_s=float(c["sync_timeout_s"]),
            replica_of=node.replica_of,
            follower_id=node.name,
            poll_interval_s=0.1,
        )

    def _start_node(self, node: _SimNode) -> None:
        node.crashed = False
        service = LiveIngestService(
            self._service_config(node),
            metrics=MetricsRegistry(),
            clock=self.clock,
            disk=node.disk,
            snapshot_store=node.snap_store,
            transport=self.transport.bind(node.name),
            sleep=self.clock.sleep,
        )
        node.service = service
        service.start()
        service.sync_pump = self._pump
        # A restarted stale primary must not reopen for writes when a
        # newer epoch exists: the operator runbook fences it on arrival,
        # and the simulated runbook does the same.
        if (
            service.cluster.role == ROLE_PRIMARY
            and node.name != self.primary_name
            and self.max_epoch > service.cluster.epoch
        ):
            service.fence(
                self.max_epoch, self.transport.url_of(self.primary_name)
            )

    def _crash_node(self, node: _SimNode, mode: str,
                    keep_fraction: float) -> None:
        if node.crashed:
            return
        if mode == "power":
            before, _shed = _wal_seq_sets(node)
            node.disk.crash_power(keep_fraction)
            after, _shed = _wal_seq_sets(node)
            # Anything parseable before but not after fell inside the
            # documented power-loss window (unfsynced tail, torn line
            # included): the durability oracle must not demand it back.
            self.power_lost |= before - after
        else:
            node.disk.crash_process()
        # No drain, no close: a crash is a crash. The service object is
        # simply dropped; durable truth lives in SimDisk + snapshots.
        node.service = None
        node.crashed = True

    def _reaim(self, node: _SimNode, primary_url: str) -> None:
        """Restart a follower pointed at a new primary.

        The cursor file is removed first: its byte offsets index the
        *old* primary's segment files and would misalign the stream
        against the new one. The local WAL stays — committed sequences
        remain the commit truth, and refetched duplicates dedupe.
        """
        node.replica_of = primary_url
        (node.data_dir / CURSOR_FILE).unlink(missing_ok=True)
        node.disk.crash_process()
        node.service = None
        node.crashed = True
        self._start_node(node)

    def _reseed(self, node: _SimNode, primary_url: str) -> None:
        """Wipe a diverged follower and stream it fresh from seq 1."""
        # Shed tombstones live only in the WAL of the node that was
        # primary when the shed happened; harvest them before the wipe
        # so the durability oracle keeps exempting acked-then-shed
        # sequences.
        self.shed_harvest |= _wal_seq_sets(node)[1]
        node.disk.wipe()
        node.snap_store = MemorySnapshotStore()
        (node.data_dir / CURSOR_FILE).unlink(missing_ok=True)
        (node.data_dir / CLUSTER_FILE).unlink(missing_ok=True)
        node.replica_of = primary_url
        node.service = None
        node.crashed = True
        self._start_node(node)

    def _alive(self) -> List[_SimNode]:
        return [
            node for node in self.nodes.values()
            if node.service is not None and not node.crashed
        ]

    def _pump(self) -> None:
        """Advance appliers, replication and the clock (sync-wait driver).

        Ticking the appliers matters: a queued batch is *above* the
        stable frontier until the applier takes it, and followers only
        commit at-or-below the frontier — without ticks the sync wait
        could never be confirmed.
        """
        for node in self._alive():
            node.service.tick_apply()
        for node in self._alive():
            shipper = node.service.shipper
            if shipper is None:
                continue
            try:
                shipper.poll_once()
            except (ReplicationError, OSError):
                pass
        self.clock.advance(0.05)

    def _on_response(self, target: str, method: str, path: str,
                     response) -> None:
        if method != "POST" or not path.startswith("/ingest"):
            return
        try:
            data = json.loads(response.data.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return
        if not isinstance(data, dict) or not data.get("accepted"):
            return
        node = self.nodes.get(target)
        if node is None or node.service is None:
            return
        epoch = node.service.cluster.epoch
        self.writes_by_epoch.setdefault(epoch, set()).add(target)

    # -- op execution ----------------------------------------------------------

    def run_op(self, op: dict) -> None:
        kind = op.get("op")
        if kind == "ingest":
            self._op_ingest(op)
        elif kind == "tick":
            node = self.nodes.get(op.get("node"))
            if node is not None and node.service is not None:
                node.service.tick_apply()
        elif kind == "poll":
            node = self.nodes.get(op.get("node"))
            if (
                node is not None
                and node.service is not None
                and node.service.shipper is not None
            ):
                try:
                    node.service.shipper.poll_once()
                except (ReplicationError, OSError):
                    pass
        elif kind == "advance":
            self.clock.advance(max(0.0, float(op.get("seconds", 0.1))))
        elif kind == "crash":
            node = self.nodes.get(op.get("node"))
            if node is not None:
                self._crash_node(
                    node,
                    op.get("mode", "process"),
                    float(op.get("keep_fraction", 0.0)),
                )
        elif kind == "restart":
            node = self.nodes.get(op.get("node"))
            if node is not None and node.crashed:
                self._start_node(node)
        elif kind == "partition":
            if op.get("a") and op.get("b"):
                self.transport.partition(op["a"], op["b"])
        elif kind == "heal":
            if op.get("a") and op.get("b"):
                self.transport.heal(op["a"], op["b"])
            else:
                self.transport.heal()
        elif kind == "disk_full":
            node = self.nodes.get(op.get("node"))
            if node is not None:
                torn = int(op.get("torn", 0))
                node.disk.set_full(True, torn if torn > 0 else None)
                node.snap_store.fail_saves = True
        elif kind == "disk_free":
            node = self.nodes.get(op.get("node"))
            if node is not None:
                node.disk.set_full(False)
                node.snap_store.fail_saves = False
        elif kind == "net":
            self.transport.set_rates(
                drop=float(op.get("drop", 0.0)),
                dup=float(op.get("dup", 0.0)),
                stale=float(op.get("stale", 0.0)),
                delay=float(op.get("delay", 0.0)),
            )
        elif kind == "failover":
            self._op_failover()
        elif kind == "corrupt_snapshot":
            node = self.nodes.get(op.get("node"))
            if node is not None:
                node.snap_store.corrupt_newest(int(op.get("count", 1)))
        # Unknown ops are ignored: executors must be total so the
        # shrinker can cut arbitrary subsets and traces stay replayable
        # across versions.

    def _op_ingest(self, op: dict) -> None:
        feed = op.get("feed", "telescope")
        records = make_records(
            feed, int(op.get("start", 0)), int(op.get("count", 1))
        )
        if feed == "dps":
            path = "/ingest/dps"
        else:
            path = f"/ingest/attacks?feed={feed}"
        # Trace ID derived from the op itself, not a counter: replays
        # and shrunk traces tag the same write with the same ID.
        trace = f"ingest-{feed}-{int(op.get('start', 0))}"
        try:
            response = self.client.request(
                "POST", path, body={"records": records}, trace=trace
            )
        except (ServeClientError, TransportError, OSError):
            # The write never got a 202: it is *allowed* to be lost.
            return
        if response.status != 202:
            return
        accepted = response.body.get("accepted")
        last_seq = response.body.get("last_seq")
        if (
            isinstance(accepted, int) and accepted > 0
            and isinstance(last_seq, int)
        ):
            self.acked.update(range(last_seq - accepted + 1, last_seq + 1))

    def _committed(self, node: _SimNode) -> int:
        service = node.service
        if service is None:
            return -1
        if service.shipper is not None:
            return service.shipper.committed_seq
        return service._seq

    def _op_failover(self) -> None:
        """The failover drill: crash the primary, promote the freshest.

        Crashed followers are restarted *first* so their recovered WALs
        are candidates — under synchronous replication the acked
        frontier is guaranteed to live in some follower's log, and
        committed sequences are a contiguous prefix, so the maximum
        committed follower holds a superset of every confirmed write.

        Like a real runbook, the drill ABORTS rather than promote a
        candidate known to be behind the acknowledged frontier (e.g.
        the only caught-up follower is down and the survivor was
        disk-full while the writes flowed). Early harness versions
        promoted unconditionally and the durability oracle rightly
        flagged the acked-write loss — that is operator-induced data
        loss, not a serve-layer bug, so the runbook gained the same
        freshness gate production failovers use.
        """
        for node in self.nodes.values():
            if node.crashed:
                self._start_node(node)
        candidates = [
            node for node in self._alive()
            if node.service.cluster.role == ROLE_REPLICA
        ]
        if not candidates:
            return
        # Give each candidate one last pull before choosing.
        for node in candidates:
            if node.service.shipper is not None:
                try:
                    node.service.shipper.poll_once()
                except (ReplicationError, OSError):
                    pass
        new = max(candidates, key=lambda n: (self._committed(n), n.name))
        durable_acked = self.acked - self.power_lost
        frontier = max(durable_acked) if durable_acked else 0
        if self._committed(new) < frontier:
            return
        old = self.nodes.get(self.primary_name)
        if old is not None and not old.crashed and old is not new:
            self._crash_node(old, mode="process", keep_fraction=1.0)
        new.service.promote()
        new.replica_of = None
        self.max_epoch = new.service.cluster.epoch
        self.primary_name = new.name
        url = self.transport.url_of(new.name)
        for node in self._alive():
            if node is new:
                continue
            node.service.fence(self.max_epoch, url)
            if node.service.cluster.role == ROLE_REPLICA:
                self._reaim(node, url)

    # -- settle + oracles ------------------------------------------------------

    def settle(self) -> None:
        """Heal everything, converge the cluster, re-seed the diverged."""
        self.transport.set_rates()
        self.transport.heal()
        for node in self.nodes.values():
            node.disk.set_full(False)
            node.snap_store.fail_saves = False
        for node in self.nodes.values():
            if node.crashed:
                self._start_node(node)
        keeper = self._resolve_primary()
        url = self.transport.url_of(keeper.name)
        for node in self._alive():
            if node is keeper:
                continue
            service = node.service
            if service.cluster.role == ROLE_FENCED:
                # Rejoin fenced ex-primaries the way operators do: wipe
                # and re-seed from the keeper (their WAL may hold a
                # diverged suffix). This also puts them back under the
                # digest oracle instead of leaving them exempt forever.
                self._reseed(node, url)
            elif (
                service.cluster.role == ROLE_REPLICA
                and service.cluster.primary_url != url
            ):
                self._reaim(node, url)
        last_committed: Dict[str, int] = {}
        stalls: Dict[str, int] = {}
        converged = False
        for _round in range(_SETTLE_ROUNDS):
            while keeper.service.tick_apply():
                pass
            target = keeper.service._seq
            done = keeper.service.queue.depth == 0
            for node in self._alive():
                if node.service.cluster.role != ROLE_REPLICA:
                    continue
                shipper = node.service.shipper
                if shipper is None:
                    self._reseed(node, url)
                    done = False
                    continue
                try:
                    shipper.poll_once()
                except (ReplicationError, OSError):
                    pass
                committed = shipper.committed_seq
                if committed != last_committed.get(node.name):
                    last_committed[node.name] = committed
                    stalls[node.name] = 0
                else:
                    stalls[node.name] = stalls.get(node.name, 0) + 1
                if committed < target:
                    done = False
                    if stalls[node.name] >= _STALL_ROUNDS:
                        # Diverged (rewound primary, misaligned offsets,
                        # poisoned stream): wipe and stream fresh — the
                        # keeper's WAL is complete from sequence 1.
                        self._reseed(node, url)
                        last_committed.pop(node.name, None)
                        stalls[node.name] = 0
            self.clock.advance(0.2)
            if done and keeper.service.queue.depth == 0:
                converged = True
                break
        if not converged:
            self.violations.append({
                "oracle": "settle",
                "detail": "cluster failed to converge after settle rounds",
                "committed": {
                    name: self._committed(self.nodes[name])
                    for name in sorted(self.nodes)
                },
                "target": keeper.service._seq,
            })

    def _resolve_primary(self) -> _SimNode:
        primaries = [
            node for node in self._alive()
            if node.service.cluster.role == ROLE_PRIMARY
        ]
        if not primaries:
            candidates = [
                node for node in self._alive()
                if node.service.cluster.role == ROLE_REPLICA
            ] or self._alive()
            keeper = max(
                candidates, key=lambda n: (self._committed(n), n.name)
            )
            keeper.service.promote()
        else:
            keeper = max(
                primaries,
                key=lambda n: (
                    n.service.cluster.epoch, n.service._seq, n.name
                ),
            )
            others = [node for node in primaries if node is not keeper]
            if any(
                node.service.cluster.epoch >= keeper.service.cluster.epoch
                for node in others
            ):
                # An epoch tie means two nodes both believe the same
                # reign: bump the keeper past it so the fence below is
                # unambiguous.
                keeper.service.promote()
            for node in others:
                node.service.fence(
                    keeper.service.cluster.epoch,
                    self.transport.url_of(keeper.name),
                )
        keeper.replica_of = None
        self.primary_name = keeper.name
        self.max_epoch = keeper.service.cluster.epoch
        return keeper

    def check_oracles(self) -> None:
        keeper = self.nodes[self.primary_name]
        oracle_wal = WriteAheadLog(
            keeper.data_dir / WAL_DIR,
            metrics=MetricsRegistry(),
            disk=keeper.disk,
        )
        records, _report = oracle_wal.replay(after_seq=0)
        survived = {record.seq for record in records}
        shed: Set[int] = set(self.shed_harvest)
        for node in self.nodes.values():
            shed |= _wal_seq_sets(node)[1]
        missing = sorted(self.acked - self.power_lost - survived - shed)
        if missing:
            self.violations.append({
                "oracle": "durability",
                "detail": "acked sequences absent from final primary "
                          "WAL and shed set",
                "missing_count": len(missing),
                "missing": missing[:32],
            })
        c = self.config
        store = LiveFusedStore(
            baseline_days=int(c["baseline_days"]),
            alert_factor=float(c["alert_factor"]),
            max_events_per_victim=int(c["max_events_per_victim"]),
            metrics=MetricsRegistry(),
        )
        for record in records:
            try:
                if record.kind == KIND_ATTACK:
                    store.apply_attack(record.record)
                elif record.kind == KIND_DPS:
                    store.apply_dps(record.record)
            except ValueError:
                # Deterministic apply rejection: the live nodes skipped
                # it too.
                pass
        expected = store.state_digest()
        for node in self._alive():
            if node.service.cluster.role == ROLE_FENCED:
                # A fenced ex-primary may legitimately hold a diverged
                # suffix — that is *why* it is fenced.
                continue
            digest = node.service.store.state_digest()
            if digest != expected:
                self.violations.append({
                    "oracle": "digest",
                    "node": node.name,
                    "digest": digest,
                    "expected": expected,
                })
        for epoch in sorted(self.writes_by_epoch):
            writers = sorted(self.writes_by_epoch[epoch])
            if len(writers) > 1:
                self.violations.append({
                    "oracle": "epoch",
                    "epoch": epoch,
                    "writers": writers,
                })

    def summary(self) -> dict:
        nodes = {}
        for name in sorted(self.nodes):
            node = self.nodes[name]
            if node.service is None or node.crashed:
                nodes[name] = {"crashed": True}
                continue
            service = node.service
            nodes[name] = {
                "role": service.cluster.role,
                "epoch": service.cluster.epoch,
                "seq": service._seq,
                "applied_seq": service.applied_seq,
                "digest": service.store.state_digest(),
            }
        keeper = self.nodes.get(self.primary_name)
        return {
            "acked": len(self.acked),
            "power_cut_exempt": len(self.power_lost & self.acked),
            "final_primary": self.primary_name,
            "final_epoch": self.max_epoch,
            "final_seq": (
                keeper.service._seq
                if keeper is not None and keeper.service is not None
                else None
            ),
            "nodes": nodes,
            "writes_by_epoch": {
                str(epoch): sorted(writers)
                for epoch, writers in sorted(self.writes_by_epoch.items())
            },
            "network": {
                "exchanges": self.transport.exchanges,
                "faults": dict(sorted(self.transport.faults.items())),
            },
            "sim_time_s": round(self.clock.now(), 3),
        }

    def cleanup(self) -> None:
        shutil.rmtree(self.base_dir, ignore_errors=True)


def execute_ops(seed: int, config: dict,
                ops: List[dict]) -> Tuple[List[dict], dict]:
    """Run one op schedule to completion; returns (violations, summary)."""
    sim = _Sim(seed, config)
    try:
        try:
            for op in ops:
                sim.run_op(op)
            sim.settle()
            sim.check_oracles()
        except Exception as exc:  # noqa: BLE001 — an executor crash IS a finding
            detail = f"{type(exc).__name__}: {exc}".replace(
                str(sim.base_dir), "<tmp>"
            )
            sim.violations.append({"oracle": "exception", "detail": detail})
        try:
            summary = sim.summary()
        except Exception as exc:  # noqa: BLE001 — summary must never mask a run
            summary = {
                "error": f"{type(exc).__name__}: {exc}".replace(
                    str(sim.base_dir), "<tmp>"
                )
            }
        return sim.violations, summary
    finally:
        sim.cleanup()


def run_sim(seed: int, config: Optional[dict] = None) -> dict:
    """Generate and execute one seeded run; returns the full trace."""
    config = config if config is not None else default_spec()
    ops = generate_ops(seed, config)
    violations, summary = execute_ops(seed, config, ops)
    return {
        "version": TRACE_VERSION,
        "seed": seed,
        "config": config,
        "ops": ops,
        "violations": violations,
        "summary": summary,
    }


def run_trace(trace: dict) -> dict:
    """Re-execute a recorded trace's ops verbatim (replay / shrinking)."""
    violations, summary = execute_ops(
        int(trace["seed"]), dict(trace["config"]), list(trace["ops"])
    )
    return {
        "version": TRACE_VERSION,
        "seed": int(trace["seed"]),
        "config": dict(trace["config"]),
        "ops": list(trace["ops"]),
        "violations": violations,
        "summary": summary,
    }


def trace_to_json(trace: dict) -> str:
    """Canonical trace serialization: byte-identical for identical runs."""
    return json.dumps(trace, sort_keys=True, indent=2) + "\n"


__all__ = [
    "TRACE_VERSION",
    "default_spec",
    "execute_ops",
    "generate_ops",
    "make_records",
    "run_sim",
    "run_trace",
    "trace_to_json",
]
