"""In-memory disk + snapshot store with seeded failure injection.

:class:`SimDisk` implements the :class:`~repro.serve.disk.LocalDisk`
interface over plain bytearrays and models the two-tier durability the
WAL's contract is written against:

* ``append`` lands bytes in ``data`` — the "reached the OS" tier that
  survives a *process* crash (:meth:`crash_process`);
* ``fsync`` advances ``synced_len`` — the stable-storage tier; a *power*
  crash (:meth:`crash_power`) rolls every file back to ``synced_len``
  plus an op-specified fraction of the unsynced tail, which is exactly
  how real power loss tears a final line mid-byte.

ENOSPC is modeled with :meth:`set_full`: the next append may write a
chosen partial prefix before failing, reproducing the
partial-line-then-error shape a full filesystem produces.

:class:`MemorySnapshotStore` duck-types the
:class:`~repro.store.checkpoint.CheckpointStore` surface the
:class:`~repro.serve.snapshot.SnapshotManager` needs (``stages`` /
``save`` / ``load`` / ``discard``) with hooks to corrupt chosen
snapshots and to fail saves while the disk is "full".
"""

from __future__ import annotations

import errno
import json
from pathlib import Path
from typing import Dict, List, Optional, Set, Union

from repro.store.checkpoint import (
    CheckpointCorruptionError,
    CheckpointMissingError,
)


def _key(path: Union[str, Path]) -> str:
    return str(path)


class _SimFile:
    __slots__ = ("data", "synced_len")

    def __init__(self) -> None:
        self.data = bytearray()
        self.synced_len = 0


class _SimHandle:
    """An append handle: just a name, validity-tracked for close()."""

    __slots__ = ("key", "closed")

    def __init__(self, key: str) -> None:
        self.key = key
        self.closed = False


class SimDisk:
    """Deterministic in-memory filesystem for the WAL seam."""

    def __init__(self) -> None:
        self._files: Dict[str, _SimFile] = {}
        self._dirs: Set[str] = set()
        # ENOSPC injection: while full, appends fail; the first failing
        # append may still land a partial prefix (torn write).
        self._full = False
        self._partial_next: Optional[int] = None
        self.appends = 0
        self.fsyncs = 0
        self.power_cuts = 0

    # -- fault controls --------------------------------------------------------

    def set_full(
        self, full: bool, partial_next_append: Optional[int] = None
    ) -> None:
        """Flip ENOSPC mode; optionally tear the next failing append."""
        self._full = full
        self._partial_next = partial_next_append if full else None

    @property
    def full(self) -> bool:
        return self._full

    def crash_power(
        self, keep_unsynced_fraction: float = 0.0
    ) -> Dict[str, bytes]:
        """Power cut: every file rolls back to its fsynced length.

        ``keep_unsynced_fraction`` of each unsynced tail survives (byte
        count rounded down) — a non-integral cut lands mid-line, which
        is precisely the torn-tail case recovery must repair. Returns
        the bytes each file *lost*, keyed by path, so the harness can
        compute which acked sequences fell inside the documented
        power-loss window.
        """
        if not 0.0 <= keep_unsynced_fraction <= 1.0:
            raise ValueError("keep_unsynced_fraction must be within [0, 1]")
        lost: Dict[str, bytes] = {}
        for key, entry in self._files.items():
            unsynced = len(entry.data) - entry.synced_len
            if unsynced <= 0:
                continue
            keep_extra = int(unsynced * keep_unsynced_fraction)
            cut = entry.synced_len + keep_extra
            if cut < len(entry.data):
                lost[key] = bytes(entry.data[cut:])
                del entry.data[cut:]
            entry.synced_len = len(entry.data)
        self.power_cuts += 1
        return lost

    def crash_process(self) -> None:
        """Process kill: appended (flushed-to-OS) bytes all survive."""
        for entry in self._files.values():
            entry.synced_len = len(entry.data)

    def wipe(self) -> None:
        """Forget everything (re-seeding a diverged node)."""
        self._files.clear()
        self._dirs.clear()
        self._full = False
        self._partial_next = None

    # -- LocalDisk interface ---------------------------------------------------

    def mkdir(self, directory: Union[str, Path]) -> None:
        self._dirs.add(_key(directory))

    def listdir(self, directory: Union[str, Path]) -> List[str]:
        prefix = _key(directory).rstrip("/") + "/"
        names = []
        for key in self._files:
            if key.startswith(prefix) and "/" not in key[len(prefix):]:
                names.append(key[len(prefix):])
        return names

    def size(self, path: Union[str, Path]) -> int:
        return len(self._require(path).data)

    def exists(self, path: Union[str, Path]) -> bool:
        return _key(path) in self._files

    def unlink(self, path: Union[str, Path]) -> None:
        key = _key(path)
        if key not in self._files:
            raise FileNotFoundError(errno.ENOENT, "no such file", key)
        del self._files[key]

    def open_append(self, path: Union[str, Path]):
        key = _key(path)
        if key not in self._files:
            self._files[key] = _SimFile()
        return _SimHandle(key)

    def append(self, handle, data: bytes) -> None:
        entry = self._files[handle.key]
        if self._full:
            torn = self._partial_next or 0
            self._partial_next = None
            if torn > 0:
                entry.data.extend(data[:torn])
            raise OSError(errno.ENOSPC, "no space left on device (simulated)")
        entry.data.extend(data)
        self.appends += 1

    def fsync(self, handle) -> None:
        entry = self._files[handle.key]
        entry.synced_len = len(entry.data)
        self.fsyncs += 1

    def close(self, handle) -> None:
        handle.closed = True

    def read_bytes(self, path: Union[str, Path]) -> bytes:
        return bytes(self._require(path).data)

    def read_chunk(
        self, path: Union[str, Path], offset: int, max_bytes: int
    ) -> Optional[bytes]:
        entry = self._files.get(_key(path))
        if entry is None:
            return None
        return bytes(entry.data[offset:offset + max_bytes])

    def truncate(self, path: Union[str, Path], keep_bytes: int) -> None:
        entry = self._require(path)
        del entry.data[keep_bytes:]
        entry.synced_len = len(entry.data)

    def _require(self, path: Union[str, Path]) -> _SimFile:
        entry = self._files.get(_key(path))
        if entry is None:
            raise FileNotFoundError(errno.ENOENT, "no such file", _key(path))
        return entry


class MemorySnapshotStore:
    """Duck-typed CheckpointStore: JSON-frozen stages, injectable faults.

    Payloads are frozen through a JSON round-trip at save time so a
    stored snapshot can never alias live mutable state — the same
    isolation the real store's serialization provides.
    """

    def __init__(self) -> None:
        self._stages: Dict[str, str] = {}
        self._corrupt: Set[str] = set()
        #: While True every save raises ENOSPC (disk-full snapshots).
        self.fail_saves = False
        self.saves = 0

    def stages(self) -> List[str]:
        return sorted(self._stages)

    def save(self, stage: str, payload) -> None:
        if self.fail_saves:
            raise OSError(
                errno.ENOSPC, "no space left on device (simulated)"
            )
        self._stages[stage] = json.dumps(payload, sort_keys=True)
        self._corrupt.discard(stage)
        self.saves += 1

    def load(self, stage: str):
        if stage not in self._stages:
            raise CheckpointMissingError(stage, "no checkpoint (simulated)")
        if stage in self._corrupt:
            raise CheckpointCorruptionError(
                stage, "sha256 mismatch (simulated corruption)"
            )
        return json.loads(self._stages[stage])

    def discard(self, stage: str) -> None:
        self._stages.pop(stage, None)
        self._corrupt.discard(stage)

    # -- fault controls --------------------------------------------------------

    def corrupt(self, stage: str) -> bool:
        """Mark one stored stage corrupt; True if it existed."""
        if stage in self._stages:
            self._corrupt.add(stage)
            return True
        return False

    def corrupt_newest(self, count: int = 1) -> int:
        """Corrupt the *count* newest stages; returns how many."""
        done = 0
        for stage in reversed(self.stages()):
            if done >= count:
                break
            if self.corrupt(stage):
                done += 1
        return done


__all__ = ["MemorySnapshotStore", "SimDisk"]
