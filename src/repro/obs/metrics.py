"""Process-wide metrics registry: labeled counters, gauges, histograms.

Every runtime decision the resilient pipeline makes — a retry, a shard
kill, a breaker trip, a quarantined record — currently leaves only a log
line behind. A :class:`MetricsRegistry` turns those decisions into
*numbers* that a chaos drill can assert exactly and a flight report can
tabulate:

>>> registry = MetricsRegistry()
>>> trips = registry.counter(
...     "breaker_transitions_total", "breaker state changes", ("to_state",)
... )
>>> trips.inc(to_state="open")
>>> registry.value("breaker_transitions_total", to_state="open")
1

Design constraints, in priority order:

* **zero cost when disabled** — the module-level default registry is a
  :class:`NullRegistry` whose metric handles are shared no-op singletons,
  so instrumented hot paths pay one attribute call and nothing else;
* **deterministic** — exposition sorts families and label sets, histogram
  buckets are fixed at creation, and the only timestamp (the snapshot
  stamp) comes from an injectable clock, so two identical runs export
  byte-identical ``metrics.json``;
* **dependency-free** — this module imports only the standard library, so
  every layer of the codebase (including :mod:`repro.store.atomic`) can
  instrument itself without import cycles.

Exposition formats: Prometheus text (``render_prometheus``) and a JSON
snapshot (``snapshot``/``to_json``) that round-trips through
:func:`prometheus_from_snapshot` so the CLI can re-render persisted
artifacts without the live registry.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

TYPE_COUNTER = "counter"
TYPE_GAUGE = "gauge"
TYPE_HISTOGRAM = "histogram"

#: Default histogram buckets (seconds): spans stage timings from a
#: sub-millisecond cache hit to a multi-minute paper-scale stage.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0
)


def _label_key(
    names: Tuple[str, ...], values: Dict[str, Any]
) -> Tuple[str, ...]:
    if set(values) != set(names):
        raise ValueError(
            f"expected labels {names}, got {tuple(sorted(values))}"
        )
    return tuple(str(values[name]) for name in names)


class Counter:
    """Monotonically increasing value, optionally labeled."""

    kind = TYPE_COUNTER

    def __init__(self, name: str, help: str, label_names: Tuple[str, ...],
                 lock: threading.Lock) -> None:
        self.name = name
        self.help = help
        self.label_names = label_names
        self._lock = lock
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(self.label_names, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        key = _label_key(self.label_names, labels)
        with self._lock:
            return self._values.get(key, 0)

    def _series(self) -> List[Dict[str, Any]]:
        with self._lock:
            items = sorted(self._values.items())
        return [
            {"labels": dict(zip(self.label_names, key)), "value": value}
            for key, value in items
        ]


class Gauge(Counter):
    """A value that can go up and down (e.g. queue depth, breaker state)."""

    kind = TYPE_GAUGE

    def set(self, value: float, **labels: Any) -> None:
        key = _label_key(self.label_names, labels)
        with self._lock:
            self._values[key] = value

    def inc(self, amount: float = 1, **labels: Any) -> None:
        key = _label_key(self.label_names, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels: Any) -> None:
        self.inc(-amount, **labels)


class Histogram:
    """Fixed-bucket histogram (cumulative buckets, Prometheus-style)."""

    kind = TYPE_HISTOGRAM

    def __init__(self, name: str, help: str, label_names: Tuple[str, ...],
                 buckets: Sequence[float], lock: threading.Lock) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be sorted and non-empty")
        self.name = name
        self.help = help
        self.label_names = label_names
        self.buckets = tuple(float(b) for b in buckets)
        self._lock = lock
        # label key -> [per-bucket counts..., +Inf count, sum]
        self._state: Dict[Tuple[str, ...], List[float]] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(self.label_names, labels)
        with self._lock:
            state = self._state.get(key)
            if state is None:
                state = [0.0] * (len(self.buckets) + 1) + [0.0]
                self._state[key] = state
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    state[index] += 1
            state[len(self.buckets)] += 1  # +Inf
            state[-1] += value  # sum

    def count(self, **labels: Any) -> float:
        key = _label_key(self.label_names, labels)
        with self._lock:
            state = self._state.get(key)
            return state[len(self.buckets)] if state else 0

    def sum(self, **labels: Any) -> float:
        key = _label_key(self.label_names, labels)
        with self._lock:
            state = self._state.get(key)
            return state[-1] if state else 0.0

    def _series(self) -> List[Dict[str, Any]]:
        with self._lock:
            items = sorted(
                (key, list(state)) for key, state in self._state.items()
            )
        out = []
        for key, state in items:
            out.append({
                "labels": dict(zip(self.label_names, key)),
                "buckets": dict(
                    zip([str(b) for b in self.buckets], state)
                ),
                "count": state[len(self.buckets)],
                "sum": state[-1],
            })
        return out


class _NullMetric:
    """Shared no-op handle: the disabled-telemetry fast path."""

    def inc(self, amount: float = 1, **labels: Any) -> None:
        pass

    def dec(self, amount: float = 1, **labels: Any) -> None:
        pass

    def set(self, value: float, **labels: Any) -> None:
        pass

    def observe(self, value: float, **labels: Any) -> None:
        pass

    def value(self, **labels: Any) -> float:
        return 0

    def count(self, **labels: Any) -> float:
        return 0

    def sum(self, **labels: Any) -> float:
        return 0.0


_NULL_METRIC = _NullMetric()


class MetricsRegistry:
    """Named metric families sharing one lock and one injectable clock."""

    enabled = True

    def __init__(self, clock: Any = time.time) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._families: Dict[str, Any] = {}

    def _register(self, cls, name: str, help: str,
                  labels: Sequence[str], **kwargs) -> Any:
        label_names = tuple(labels)
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if (existing.kind != cls.kind
                        or existing.label_names != label_names):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}{existing.label_names}"
                    )
                return existing
            family = cls(name, help, label_names,
                         lock=threading.Lock(), **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> Counter:
        return self._register(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._register(Histogram, name, help, labels, buckets=buckets)

    # -- reading ---------------------------------------------------------------

    def value(self, name: str, **labels: Any) -> float:
        """Current value of one counter/gauge series (0 when absent)."""
        with self._lock:
            family = self._families.get(name)
        if family is None:
            return 0
        return family.value(**labels)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready snapshot: deterministic given the injected clock."""
        with self._lock:
            families = sorted(self._families.items())
        return {
            "snapshot_ts": round(self._clock(), 3),
            "metrics": {
                name: {
                    "type": family.kind,
                    "help": family.help,
                    "label_names": list(family.label_names),
                    "series": family._series(),
                }
                for name, family in families
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.snapshot(), sort_keys=True, indent=2) + "\n"

    def render_prometheus(self) -> str:
        return prometheus_from_snapshot(self.snapshot())


class NullRegistry:
    """The default: accepts every registration, records nothing."""

    enabled = False

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> _NullMetric:
        return _NULL_METRIC

    gauge = counter

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> _NullMetric:
        return _NULL_METRIC

    def value(self, name: str, **labels: Any) -> float:
        return 0

    def snapshot(self) -> Dict[str, Any]:
        return {"snapshot_ts": 0.0, "metrics": {}}

    def to_json(self) -> str:
        return json.dumps(self.snapshot(), sort_keys=True, indent=2) + "\n"

    def render_prometheus(self) -> str:
        return ""


NULL_REGISTRY = NullRegistry()

#: Process-wide registry; stays the null registry unless telemetry is
#: explicitly enabled (CLI ``--metrics``, or :func:`set_registry` in tests).
_registry: Any = NULL_REGISTRY


def get_registry() -> Any:
    """The process-wide registry (a :class:`NullRegistry` by default)."""
    return _registry


def set_registry(registry: Optional[Any]) -> Any:
    """Install (or with ``None`` reset) the process-wide registry."""
    global _registry
    _registry = registry if registry is not None else NULL_REGISTRY
    return _registry


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(value: str) -> str:
    # HELP lines escape only backslash and newline — double quotes stay
    # literal (the exposition format quotes label values, not help text).
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(labels: Dict[str, str], extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label(str(value))}"'
        for name, value in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    return str(int(value)) if float(value).is_integer() else repr(value)


def prometheus_from_snapshot(snapshot: Dict[str, Any]) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as Prometheus text.

    Works equally on a live snapshot and on a ``metrics.json`` loaded back
    from a run directory, which is how ``python -m repro metrics`` serves
    the Prometheus view of a finished run.
    """
    lines: List[str] = []
    for name in sorted(snapshot.get("metrics", {})):
        family = snapshot["metrics"][name]
        if family.get("help"):
            lines.append(f"# HELP {name} {_escape_help(family['help'])}")
        lines.append(f"# TYPE {name} {family['type']}")
        for series in family.get("series", []):
            labels = series.get("labels", {})
            if family["type"] == TYPE_HISTOGRAM:
                for bound, count in series["buckets"].items():
                    le = 'le="%s"' % bound
                    lines.append(
                        f"{name}_bucket{_render_labels(labels, le)} "
                        f"{_format_value(count)}"
                    )
                inf = 'le="+Inf"'
                lines.append(
                    f"{name}_bucket{_render_labels(labels, inf)} "
                    f"{_format_value(series['count'])}"
                )
                lines.append(
                    f"{name}_count{_render_labels(labels)} "
                    f"{_format_value(series['count'])}"
                )
                lines.append(
                    f"{name}_sum{_render_labels(labels)} "
                    f"{_format_value(series['sum'])}"
                )
            else:
                lines.append(
                    f"{name}{_render_labels(labels)} "
                    f"{_format_value(series['value'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


__all__ = [
    "DEFAULT_BUCKETS",
    "TYPE_COUNTER",
    "TYPE_GAUGE",
    "TYPE_HISTOGRAM",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "get_registry",
    "prometheus_from_snapshot",
    "set_registry",
]
