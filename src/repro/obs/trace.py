"""Span tracing: where a run's wall time actually went.

A :class:`SpanTracer` records context-manager *spans* — named intervals
with parent/child links and attributes — so a pipeline run leaves behind
an execution timeline instead of an interleaved log:

>>> tracer = SpanTracer(clock=iter(range(100)).__next__)
>>> with tracer.span("stage", stage="attacks"):
...     with tracer.span("attempt", attempt=1):
...         pass
>>> [s.name for s in tracer.spans]
['attempt', 'stage']

Parenthood is tracked per thread (each stage-supervisor thread gets its
own span stack), span ids are sequential under a lock, and all times come
from the injectable clock — so a serial run with a fake clock exports a
byte-identical ``trace.json`` every time.

Two export shapes:

* **JSONL** (``to_jsonl``) — one span object per line, the raw artifact;
* **Chrome ``trace_event``** (``to_chrome``) — a ``traceEvents`` document
  loadable in ``chrome://tracing`` / Perfetto, with thread lanes mapped
  deterministically in first-use order.

Like the metrics registry, this module is standard-library only and the
disabled default (:class:`NullTracer`) costs one no-op context manager.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple


@dataclass
class SpanRecord:
    """One completed span (times in seconds on the tracer's clock)."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    end: float
    thread: str
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": round(self.start, 6),
            "end": round(self.end, 6),
            "duration": round(self.duration, 6),
            "thread": self.thread,
            "attrs": self.attrs,
        }


class _Span:
    """Live span handle: lets the body attach attributes mid-flight."""

    def __init__(self, record: SpanRecord) -> None:
        self._record = record

    def set_attr(self, **attrs: Any) -> None:
        self._record.attrs.update(attrs)


class SpanTracer:
    """Collects spans with parent/child links; deterministic exports."""

    enabled = True

    def __init__(self, clock: Any = time.perf_counter) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._next_id = 1
        self._stacks = threading.local()
        self.spans: List[SpanRecord] = []

    def _stack(self) -> List[int]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = []
            self._stacks.stack = stack
        return stack

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[_Span]:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        stack = self._stack()
        parent_id = stack[-1] if stack else None
        record = SpanRecord(
            span_id=span_id,
            parent_id=parent_id,
            name=name,
            start=self._clock(),
            end=0.0,
            thread=threading.current_thread().name,
            attrs=dict(attrs),
        )
        stack.append(span_id)
        handle = _Span(record)
        try:
            yield handle
        except BaseException as exc:
            record.attrs.setdefault("error", f"{type(exc).__name__}: {exc}")
            raise
        finally:
            stack.pop()
            record.end = self._clock()
            with self._lock:
                self.spans.append(record)

    # -- exports ---------------------------------------------------------------

    def _sorted_spans(self) -> List[SpanRecord]:
        with self._lock:
            return sorted(self.spans, key=lambda s: s.span_id)

    def to_jsonl(self) -> str:
        return "".join(
            json.dumps(span.to_dict(), sort_keys=True) + "\n"
            for span in self._sorted_spans()
        )

    def to_chrome(self) -> Dict[str, Any]:
        """Chrome ``trace_event`` document (complete ``X`` events).

        Thread ids are assigned in first-use order over the id-sorted
        span list, so the mapping — and the whole document — is
        deterministic for a deterministic run.
        """
        tids: Dict[str, int] = {}
        events: List[Dict[str, Any]] = []
        spans = self._sorted_spans()
        for span in spans:
            if span.thread not in tids:
                tids[span.thread] = len(tids)
        for span in spans:
            args = dict(span.attrs)
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            args["span_id"] = span.span_id
            events.append({
                "name": span.name,
                "ph": "X",
                "pid": 1,
                "tid": tids[span.thread],
                "ts": round(span.start * 1e6, 1),
                "dur": round(span.duration * 1e6, 1),
                "args": args,
            })
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "metadata": {
                "threads": {str(tid): name for name, tid in tids.items()}
            },
        }

    def to_chrome_json(self) -> str:
        return json.dumps(self.to_chrome(), sort_keys=True, indent=2) + "\n"


class _NullSpan:
    def set_attr(self, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracing: one shared no-op context manager."""

    enabled = False
    spans: Tuple[()] = ()

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[_NullSpan]:
        yield _NULL_SPAN

    def to_jsonl(self) -> str:
        return ""

    def to_chrome(self) -> Dict[str, Any]:
        return {"traceEvents": [], "displayTimeUnit": "ms", "metadata": {}}

    def to_chrome_json(self) -> str:
        return json.dumps(self.to_chrome(), sort_keys=True, indent=2) + "\n"


NULL_TRACER = NullTracer()


__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "SpanRecord",
    "SpanTracer",
]
