"""Live ops console rendering for the serve cluster (``repro top``).

Pure functions from status documents to text: the CLI polls each node's
``/status`` (and optionally the primary's ``/metrics/history``), and
:func:`render_dashboard` turns whatever came back into one fixed-width
frame. Keeping the renderer free of I/O and clocks means the ``--once``
mode used in CI and tests is deterministic: same input documents, same
bytes out.

Input shape: one dict per node, ``{"url": ..., "status": <the /status
document or None>, "error": <str or None>}`` — unreachable nodes render
as a line with the error instead of vanishing, because "a node is gone"
is exactly what an ops console must show.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

#: Slow requests shown across the whole cluster.
SLOW_ROWS = 5
#: Busiest rate series shown from the metrics history window.
RATE_ROWS = 6


def _fmt(value: Any, width: int) -> str:
    return str(value).ljust(width)[:width]


def _fmt_age(seconds: Any) -> str:
    try:
        s = float(seconds)
    except (TypeError, ValueError):
        return "-"
    if s < 120:
        return f"{s:.1f}s"
    if s < 7200:
        return f"{s / 60:.1f}m"
    return f"{s / 3600:.1f}h"


def _fmt_bytes(count: Any) -> str:
    try:
        n = float(count)
    except (TypeError, ValueError):
        return "-"
    for unit in ("B", "KB", "MB", "GB"):
        if n < 1024 or unit == "GB":
            return f"{n:.0f}{unit}" if unit == "B" else f"{n:.1f}{unit}"
        n /= 1024.0
    return f"{n:.1f}GB"


def _node_rows(nodes: Sequence[Dict[str, Any]]) -> List[str]:
    header = (
        f"{_fmt('NODE', 14)} {_fmt('ROLE', 8)} {_fmt('EPOCH', 5)} "
        f"{_fmt('SEQ', 8)} {_fmt('APPLIED', 8)} {_fmt('QUEUE', 6)} "
        f"{_fmt('WAL', 12)} {_fmt('SNAP-AGE', 8)} {_fmt('FLAGS', 10)} "
        f"{_fmt('UPTIME', 7)}"
    )
    rows = [header]
    for entry in nodes:
        doc = entry.get("status")
        if not doc:
            error = entry.get("error") or "no status"
            rows.append(
                f"{_fmt(entry.get('url', '?'), 14)} "
                f"{_fmt('DOWN', 8)} {error}"
            )
            continue
        wal = doc.get("wal", {})
        flags = [
            flag
            for flag, on in (
                ("degraded", doc.get("degraded")),
                ("draining", doc.get("draining")),
                ("shedding", doc.get("shedding")),
            )
            if on
        ]
        rows.append(
            f"{_fmt(doc.get('node', '?'), 14)} "
            f"{_fmt(doc.get('role', '?'), 8)} "
            f"{_fmt(doc.get('epoch', '?'), 5)} "
            f"{_fmt(doc.get('seq', '?'), 8)} "
            f"{_fmt(doc.get('applied_seq', '?'), 8)} "
            f"{_fmt(doc.get('queue_depth', '?'), 6)} "
            f"{_fmt(_fmt_bytes(wal.get('bytes')) + '/' + str(wal.get('segments', '?')), 12)} "
            f"{_fmt(_fmt_age(doc.get('snapshots', {}).get('newest_age_s')), 8)} "
            f"{_fmt(','.join(flags) if flags else 'ok', 10)} "
            f"{_fmt(_fmt_age(doc.get('uptime_s')), 7)}"
        )
    return rows


def _replication_rows(nodes: Sequence[Dict[str, Any]]) -> List[str]:
    rows: List[str] = []
    for entry in nodes:
        doc = entry.get("status")
        if not doc:
            continue
        node = doc.get("node", "?")
        for fid, info in sorted(doc.get("followers", {}).items()):
            rows.append(
                f"  {node} -> {fid}: committed={info.get('committed_seq')} "
                f"lag={info.get('seq_lag')} "
                f"age={_fmt_age(info.get('age_s'))}"
            )
        shipping = doc.get("replication")
        if shipping:
            rows.append(
                f"  {node} <- {shipping.get('primary_url', '?')}: "
                f"committed={shipping.get('committed_seq')} "
                f"lag={shipping.get('lag_records')}rec/"
                f"{_fmt_bytes(shipping.get('lag_bytes'))} "
                f"commit-age={_fmt_age(shipping.get('last_commit_age_s'))} "
                f"state={shipping.get('state', '?')}"
            )
    return rows


def _slow_rows(nodes: Sequence[Dict[str, Any]]) -> List[str]:
    slow: List[Dict[str, Any]] = []
    for entry in nodes:
        doc = entry.get("status")
        if not doc:
            continue
        slow.extend(doc.get("requests", {}).get("slow", []))
    slow.sort(
        key=lambda r: (-float(r.get("duration_s", 0.0)), str(r.get("trace_id")))
    )
    return [
        f"  {r.get('duration_s', 0.0) * 1000:.1f}ms "
        f"{r.get('method', '?')} {r.get('endpoint', '?')} "
        f"status={r.get('status', '?')} node={r.get('node', '?')} "
        f"trace={r.get('trace_id', '?')}"
        for r in slow[:SLOW_ROWS]
    ]


def _history_rows(history: Optional[Dict[str, Any]]) -> List[str]:
    if not history or not history.get("windows"):
        return []
    window = history["windows"][-1]
    rows = [
        f"  window ts={window.get('ts')} dt={window.get('dt')}s "
        f"({history.get('window_count')}/{history.get('capacity')} windows)"
    ]
    rates = sorted(
        window.get("rates", {}).items(), key=lambda kv: (-kv[1], kv[0])
    )
    for key, rate in rates[:RATE_ROWS]:
        if rate > 0:
            rows.append(f"  {rate:>10.1f}/s  {key}")
    for key, row in sorted(window.get("quantiles", {}).items()):
        quantiles = " ".join(
            f"{q}={row[q] * 1000:.1f}ms"
            for q in ("p50", "p90", "p99")
            if q in row
        )
        rows.append(f"  {key}: n={row.get('count')} {quantiles}")
    return rows


def render_dashboard(
    nodes: Sequence[Dict[str, Any]],
    history: Optional[Dict[str, Any]] = None,
) -> str:
    """One console frame: node table, replication, slow requests, rates."""
    up = sum(1 for entry in nodes if entry.get("status"))
    lines = [f"repro cluster console — {up}/{len(nodes)} nodes up", ""]
    lines.extend(_node_rows(nodes))
    replication = _replication_rows(nodes)
    if replication:
        lines.append("")
        lines.append("replication:")
        lines.extend(replication)
    slow = _slow_rows(nodes)
    if slow:
        lines.append("")
        lines.append("slow requests:")
        lines.extend(slow)
    history_rows = _history_rows(history)
    if history_rows:
        lines.append("")
        lines.append("metrics history:")
        lines.extend(history_rows)
    return "\n".join(lines) + "\n"


__all__ = ["RATE_ROWS", "SLOW_ROWS", "render_dashboard"]
