"""Stage profiling: wall time, CPU time, peak RSS and throughput.

Tracing says *when* a stage ran; profiling says *what it cost*. A
:class:`StageProfiler` wraps each pipeline stage (and, when sharded, each
shard) and records:

* **wall time** — from the injectable wall clock;
* **CPU time** — process CPU seconds consumed while the stage ran (an
  approximation under concurrent stages, stated as such in the report);
* **peak RSS** — the high-water resident set, via ``getrusage`` (kilobytes
  on Linux); monotone per process, so the per-stage value is "peak so
  far", which is exactly what a memory budget cares about;
* **events/sec** — the stage's output record count over its wall time,
  the steering number for the ROADMAP's performance work.

All three probes are injectable, so deterministic tests substitute fake
clocks and a constant RSS function and get byte-identical ``profile.json``
artifacts. The disabled default is :class:`NullProfiler`.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None


def peak_rss_kb() -> int:
    """Peak resident set size of this process, in kilobytes (0: unknown)."""
    if resource is None:
        return 0
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports kilobytes; macOS reports bytes.
    import sys
    if sys.platform == "darwin":  # pragma: no cover
        return int(usage / 1024)
    return int(usage)


@dataclass
class StageProfile:
    """Measured cost of one stage (or one shard of one stage)."""

    stage: str
    shard: Optional[str] = None
    wall_s: float = 0.0
    cpu_s: float = 0.0
    peak_rss_kb: int = 0
    events: int = 0

    @property
    def events_per_s(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "stage": self.stage,
            "shard": self.shard,
            "wall_s": round(self.wall_s, 6),
            "cpu_s": round(self.cpu_s, 6),
            "peak_rss_kb": self.peak_rss_kb,
            "events": self.events,
            "events_per_s": round(self.events_per_s, 3),
        }


class _ProfileHandle:
    """Given to the profiled body so it can report its record count."""

    def __init__(self, profile: StageProfile) -> None:
        self._profile = profile

    def set_events(self, count: int) -> None:
        self._profile.events = int(count)


class StageProfiler:
    """Collects :class:`StageProfile` records for a run."""

    enabled = True

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        cpu_clock: Callable[[], float] = time.process_time,
        rss_fn: Callable[[], int] = peak_rss_kb,
    ) -> None:
        self._clock = clock
        self._cpu_clock = cpu_clock
        self._rss_fn = rss_fn
        self._lock = threading.Lock()
        self.profiles: List[StageProfile] = []

    @contextmanager
    def profile(
        self, stage: str, shard: Optional[str] = None
    ) -> Iterator[_ProfileHandle]:
        record = StageProfile(stage=stage, shard=shard)
        handle = _ProfileHandle(record)
        wall0 = self._clock()
        cpu0 = self._cpu_clock()
        try:
            yield handle
        finally:
            record.wall_s = self._clock() - wall0
            record.cpu_s = self._cpu_clock() - cpu0
            record.peak_rss_kb = self._rss_fn()
            with self._lock:
                self.profiles.append(record)

    def note(
        self,
        stage: str,
        wall_s: float,
        events: int = 0,
        shard: Optional[str] = None,
        cpu_s: float = 0.0,
    ) -> None:
        """Record a cost measured elsewhere (e.g. a worker's task outcome)."""
        with self._lock:
            self.profiles.append(
                StageProfile(
                    stage=stage,
                    shard=shard,
                    wall_s=wall_s,
                    cpu_s=cpu_s,
                    peak_rss_kb=self._rss_fn(),
                    events=int(events),
                )
            )

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            profiles = [p.to_dict() for p in self.profiles]
        return {"profiles": profiles}

    def to_json(self) -> str:
        return json.dumps(self.snapshot(), sort_keys=True, indent=2) + "\n"


class NullProfiler:
    """Disabled profiling: no-op context manager, empty snapshot."""

    enabled = False
    profiles: tuple = ()

    @contextmanager
    def profile(
        self, stage: str, shard: Optional[str] = None
    ) -> Iterator[_ProfileHandle]:
        yield _NULL_HANDLE

    def note(self, stage: str, wall_s: float, events: int = 0,
             shard: Optional[str] = None, cpu_s: float = 0.0) -> None:
        pass

    def snapshot(self) -> Dict[str, Any]:
        return {"profiles": []}

    def to_json(self) -> str:
        return json.dumps(self.snapshot(), sort_keys=True, indent=2) + "\n"


class _NullHandle:
    def set_events(self, count: int) -> None:
        pass


_NULL_HANDLE = _NullHandle()

NULL_PROFILER = NullProfiler()


__all__ = [
    "NULL_PROFILER",
    "NullProfiler",
    "StageProfile",
    "StageProfiler",
    "peak_rss_kb",
]
