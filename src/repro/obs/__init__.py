"""Unified telemetry: metrics, span tracing and stage profiling.

One :class:`Telemetry` object bundles the three observers every layer of
the pipeline reports into:

* :class:`~repro.obs.metrics.MetricsRegistry` — labeled counters, gauges
  and histograms (retries, breaker trips, worker kills, quarantine
  drops, checkpoint bytes, queue depth);
* :class:`~repro.obs.trace.SpanTracer` — parent/child spans for stages,
  attempts and shard batches;
* :class:`~repro.obs.profile.StageProfiler` — wall/CPU/RSS/throughput
  per stage and shard.

Telemetry is **disabled by default**: :meth:`Telemetry.disabled` bundles
the shared null observers, so instrumented hot paths cost a no-op method
call. The CLI's ``--metrics`` flag (or a test) enables it with
:meth:`Telemetry.create`, optionally with injected clocks for
byte-deterministic artifacts, and installs it process-wide with
:func:`set_telemetry` so layers constructed without an explicit handle
(the checkpoint store's fsync accounting, the streaming queue) report
into the same registry.

A run directory gains the artifacts ``metrics.json``, ``trace.json``
(Chrome ``trace_event``), ``trace.jsonl`` and ``profile.json`` via
:meth:`Telemetry.write_artifacts`; ``python -m repro report --run-dir``
renders them as a post-run flight report.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Union

from repro.obs.metrics import (
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    get_registry,
    prometheus_from_snapshot,
    set_registry,
)
from repro.obs.profile import (
    NULL_PROFILER,
    NullProfiler,
    StageProfile,
    StageProfiler,
    peak_rss_kb,
)
from repro.obs.trace import NULL_TRACER, NullTracer, SpanRecord, SpanTracer

#: Artifact names inside a run directory.
METRICS_FILE = "metrics.json"
TRACE_FILE = "trace.json"
TRACE_JSONL_FILE = "trace.jsonl"
PROFILE_FILE = "profile.json"


class Telemetry:
    """The bundle of observers one run reports into."""

    def __init__(
        self,
        metrics: Any,
        tracer: Any,
        profiler: Any,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.metrics = metrics
        self.tracer = tracer
        self.profiler = profiler
        #: The wall clock measurements share; injectable for determinism.
        self.clock = clock

    @property
    def enabled(self) -> bool:
        return bool(getattr(self.metrics, "enabled", False))

    @classmethod
    def disabled(cls) -> "Telemetry":
        """The zero-cost default: shared null observers."""
        return _DISABLED

    @classmethod
    def create(
        cls,
        clock: Optional[Callable[[], float]] = None,
        cpu_clock: Optional[Callable[[], float]] = None,
        rss_fn: Optional[Callable[[], int]] = None,
    ) -> "Telemetry":
        """Live telemetry; pass a fake *clock* for deterministic artifacts.

        One *clock* drives the tracer, the profiler's wall time and the
        metrics snapshot stamp, so a single injected fake makes every
        artifact byte-deterministic for a deterministic (serial) run.
        """
        wall = clock if clock is not None else time.perf_counter
        cpu = cpu_clock if cpu_clock is not None else time.process_time
        rss = rss_fn if rss_fn is not None else peak_rss_kb
        return cls(
            metrics=MetricsRegistry(clock=wall),
            tracer=SpanTracer(clock=wall),
            profiler=StageProfiler(clock=wall, cpu_clock=cpu, rss_fn=rss),
            clock=wall,
        )

    def write_artifacts(self, run_dir: Union[str, Path]) -> Dict[str, str]:
        """Export all artifacts into *run_dir*; returns name -> path."""
        run_dir = Path(run_dir)
        run_dir.mkdir(parents=True, exist_ok=True)
        artifacts = {
            METRICS_FILE: self.metrics.to_json(),
            TRACE_FILE: self.tracer.to_chrome_json(),
            TRACE_JSONL_FILE: self.tracer.to_jsonl(),
            PROFILE_FILE: self.profiler.to_json(),
        }
        written: Dict[str, str] = {}
        for name, text in artifacts.items():
            path = run_dir / name
            path.write_text(text, encoding="utf-8")
            written[name] = str(path)
        return written


_DISABLED = Telemetry(NULL_REGISTRY, NULL_TRACER, NULL_PROFILER)

_telemetry: Telemetry = _DISABLED


def get_telemetry() -> Telemetry:
    """The process-wide telemetry bundle (disabled unless installed)."""
    return _telemetry


def set_telemetry(telemetry: Optional[Telemetry]) -> Telemetry:
    """Install (``None``: reset) process-wide telemetry.

    Also installs/resets the process-wide metrics registry, so layers
    that self-instrument through :func:`repro.obs.metrics.get_registry`
    (checkpoint fsyncs, streaming queue, record quarantine) land in the
    same snapshot as the explicitly threaded pipeline metrics.
    """
    global _telemetry
    _telemetry = telemetry if telemetry is not None else _DISABLED
    set_registry(_telemetry.metrics if _telemetry.enabled else None)
    return _telemetry


__all__ = [
    "METRICS_FILE",
    "MetricsRegistry",
    "NULL_PROFILER",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullProfiler",
    "NullRegistry",
    "NullTracer",
    "PROFILE_FILE",
    "SpanRecord",
    "SpanTracer",
    "StageProfile",
    "StageProfiler",
    "TRACE_FILE",
    "TRACE_JSONL_FILE",
    "Telemetry",
    "get_registry",
    "get_telemetry",
    "peak_rss_kb",
    "prometheus_from_snapshot",
    "set_registry",
    "set_telemetry",
]
