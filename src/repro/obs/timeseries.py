"""Rolling flight recorder: metrics history windows + recent requests.

The artifact model of :mod:`repro.obs` (PR 4) is *post-mortem*: counters
accumulate for a whole process lifetime and land in ``metrics.json`` at
exit. A long-running serve cluster needs the orthogonal view — *what
changed in the last few seconds* — without growing memory forever.
This module adds the two bounded recorders the flight recorder is built
from:

* :class:`MetricsHistory` samples a :class:`~repro.obs.metrics.MetricsRegistry`
  on an injectable clock and keeps a fixed-capacity ring of **windows**:
  gauge values, per-second counter rates and per-window histogram
  quantiles (computed from cumulative-bucket deltas, so each window
  describes only the traffic inside it). Served at ``/metrics/history``
  and persisted as JSONL next to the other run artifacts.
* :class:`RequestLog` keeps a bounded ring of the most recent requests
  (trace id, endpoint, status, duration) plus a separate ring of
  requests slower than a capture threshold, for ``/status`` and the
  flight report's slow-request section.

Both are deterministic under an injected clock: every float is rounded,
iteration orders are sorted, and eviction is purely capacity-driven —
two identical schedules export byte-identical documents.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import TYPE_COUNTER, TYPE_GAUGE, TYPE_HISTOGRAM

#: Default quantiles derived per window from histogram bucket deltas.
DEFAULT_QUANTILES = (0.5, 0.9, 0.99)

#: Default JSONL artifact name for persisted history windows.
HISTORY_FILE = "metrics-history.jsonl"


def histogram_quantile(
    bounds: Sequence[float],
    cumulative: Sequence[float],
    total: float,
    q: float,
) -> Optional[float]:
    """Estimate the *q*-quantile of a cumulative-bucket histogram.

    ``bounds`` are the finite bucket upper bounds (sorted ascending) and
    ``cumulative[i]`` the count of observations ``<= bounds[i]``;
    ``total`` includes the ``+Inf`` bucket. Linear interpolation within
    the containing bucket, Prometheus ``histogram_quantile`` style: the
    first bucket interpolates from 0, and a rank falling in ``+Inf``
    clamps to the highest finite bound. Returns ``None`` when empty.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if total <= 0 or not bounds:
        return None
    rank = q * total
    previous_bound = 0.0
    previous_cum = 0.0
    for bound, cum in zip(bounds, cumulative):
        if rank <= cum:
            if cum <= previous_cum:
                return float(bound)
            fraction = (rank - previous_cum) / (cum - previous_cum)
            return previous_bound + fraction * (bound - previous_bound)
        previous_bound = float(bound)
        previous_cum = cum
    return float(bounds[-1])


def series_key(name: str, labels: Dict[str, Any]) -> str:
    """Stable flat key for one series: ``name{a="x",b="y"}`` (sorted)."""
    if not labels:
        return name
    rendered = ",".join(
        f'{key}="{labels[key]}"' for key in sorted(labels)
    )
    return f"{name}{{{rendered}}}"


def _round(value: float, digits: int = 6) -> float:
    return round(float(value), digits)


class MetricsHistory:
    """Fixed-capacity ring of derived metrics windows.

    ``sample()`` takes one window now; ``maybe_sample()`` takes one only
    if at least ``interval_s`` elapsed since the previous window, which
    is how the serve watch loop drives it without owning a timer. The
    clock is injectable so tests (and the simulation harness) produce
    byte-identical histories.
    """

    def __init__(
        self,
        registry: Any,
        clock: Any,
        interval_s: float = 5.0,
        capacity: int = 240,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
    ) -> None:
        if capacity < 1:
            raise ValueError("history capacity must be >= 1")
        if interval_s <= 0:
            raise ValueError("history interval must be > 0")
        self._registry = registry
        self._clock = clock
        self.interval_s = float(interval_s)
        self.capacity = int(capacity)
        self.quantiles = tuple(float(q) for q in quantiles)
        self._lock = threading.Lock()
        self._windows: Deque[Dict[str, Any]] = deque(maxlen=self.capacity)
        self._last_ts: Optional[float] = None
        self._prev_counters: Dict[str, float] = {}
        # key -> (cumulative bucket counts..., total count)
        self._prev_hist: Dict[str, Tuple[Tuple[float, ...], float]] = {}
        self._bounds: Dict[str, Tuple[float, ...]] = {}

    def maybe_sample(self) -> Optional[Dict[str, Any]]:
        """Take a window iff the sampling interval has elapsed."""
        with self._lock:
            now = self._clock()
            if (
                self._last_ts is not None
                and now - self._last_ts < self.interval_s
            ):
                return None
            return self._sample_locked(now)

    def sample(self) -> Dict[str, Any]:
        """Take a window unconditionally (tests, drain paths)."""
        with self._lock:
            return self._sample_locked(self._clock())

    def _sample_locked(self, now: float) -> Dict[str, Any]:
        snapshot = self._registry.snapshot()
        dt = 0.0 if self._last_ts is None else max(0.0, now - self._last_ts)
        gauges: Dict[str, float] = {}
        rates: Dict[str, float] = {}
        quantile_rows: Dict[str, Dict[str, Any]] = {}
        counters: Dict[str, float] = {}
        hist: Dict[str, Tuple[Tuple[float, ...], float]] = {}
        for name in sorted(snapshot.get("metrics", {})):
            family = snapshot["metrics"][name]
            kind = family.get("type")
            for series in family.get("series", []):
                key = series_key(name, series.get("labels", {}))
                if kind == TYPE_GAUGE:
                    gauges[key] = _round(series.get("value", 0.0))
                elif kind == TYPE_COUNTER:
                    value = float(series.get("value", 0.0))
                    counters[key] = value
                    if dt > 0:
                        delta = value - self._prev_counters.get(key, 0.0)
                        rates[key] = _round(max(0.0, delta) / dt)
                elif kind == TYPE_HISTOGRAM:
                    row = self._histogram_window(key, series, dt)
                    hist[key] = (
                        tuple(
                            float(series["buckets"][str(b)])
                            for b in self._bounds[key]
                        ),
                        float(series.get("count", 0.0)),
                    )
                    if row is not None:
                        quantile_rows[key] = row
        window = {
            "ts": _round(now),
            "dt": _round(dt),
            "gauges": gauges,
            "rates": rates,
            "quantiles": quantile_rows,
        }
        self._windows.append(window)
        self._last_ts = now
        self._prev_counters = counters
        self._prev_hist = hist
        return window

    def _histogram_window(
        self, key: str, series: Dict[str, Any], dt: float
    ) -> Optional[Dict[str, Any]]:
        bounds = self._bounds.get(key)
        if bounds is None:
            bounds = tuple(
                sorted(float(b) for b in series.get("buckets", {}))
            )
            self._bounds[key] = bounds
        if not bounds:
            return None
        cumulative = tuple(
            float(series["buckets"][str(b)]) for b in bounds
        )
        count = float(series.get("count", 0.0))
        prev = self._prev_hist.get(key)
        if prev is not None and dt > 0:
            prev_cum, prev_count = prev
            delta_cum = tuple(
                max(0.0, c - p) for c, p in zip(cumulative, prev_cum)
            )
            delta_count = max(0.0, count - prev_count)
        else:
            delta_cum, delta_count = cumulative, count
        if delta_count <= 0:
            return None
        row: Dict[str, Any] = {"count": _round(delta_count)}
        for q in self.quantiles:
            estimate = histogram_quantile(bounds, delta_cum, delta_count, q)
            if estimate is not None:
                row[f"p{int(q * 100)}"] = _round(estimate)
        return row

    def windows(self, last: Optional[int] = None) -> List[Dict[str, Any]]:
        with self._lock:
            items = list(self._windows)
        if last is not None and last >= 0:
            items = items[-last:] if last else []
        return items

    def history_doc(self, last: Optional[int] = None) -> Dict[str, Any]:
        """The ``/metrics/history`` response body."""
        windows = self.windows(last)
        return {
            "interval_s": _round(self.interval_s),
            "capacity": self.capacity,
            "window_count": len(windows),
            "windows": windows,
        }

    def to_jsonl(self) -> str:
        """One window per line, oldest first — the persisted artifact."""
        windows = self.windows()
        if not windows:
            return ""
        return "\n".join(
            json.dumps(w, sort_keys=True, separators=(",", ":"))
            for w in windows
        ) + "\n"


class RequestLog:
    """Bounded recent-requests ring with a slow-request capture ring."""

    def __init__(
        self,
        clock: Any,
        capacity: int = 256,
        slow_threshold_s: float = 0.5,
        slow_capacity: int = 64,
    ) -> None:
        if capacity < 1 or slow_capacity < 1:
            raise ValueError("request log capacities must be >= 1")
        self._clock = clock
        self.capacity = int(capacity)
        self.slow_threshold_s = float(slow_threshold_s)
        self._lock = threading.Lock()
        self._recent: Deque[Dict[str, Any]] = deque(maxlen=self.capacity)
        self._slow: Deque[Dict[str, Any]] = deque(maxlen=int(slow_capacity))
        self.total = 0

    def record(
        self,
        trace_id: str,
        endpoint: str,
        method: str,
        status: int,
        duration_s: float,
        **attrs: Any,
    ) -> Dict[str, Any]:
        entry: Dict[str, Any] = {
            "ts": _round(self._clock()),
            "trace_id": trace_id,
            "endpoint": endpoint,
            "method": method,
            "status": int(status),
            "duration_s": _round(duration_s),
        }
        for key in sorted(attrs):
            if attrs[key] is not None:
                entry[key] = attrs[key]
        with self._lock:
            self.total += 1
            self._recent.append(entry)
            if duration_s >= self.slow_threshold_s:
                self._slow.append(entry)
        return entry

    def recent(self, last: Optional[int] = None) -> List[Dict[str, Any]]:
        with self._lock:
            items = list(self._recent)
        if last is not None and last >= 0:
            items = items[-last:] if last else []
        return items

    def slow(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._slow)


__all__ = [
    "DEFAULT_QUANTILES",
    "HISTORY_FILE",
    "MetricsHistory",
    "RequestLog",
    "histogram_quantile",
    "series_key",
]
