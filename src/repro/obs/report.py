"""Flight report: one post-run summary from a run directory's artifacts.

After a durable run with ``--metrics``, the run dir holds machine-readable
telemetry (``metrics.json``, ``profile.json``, ``trace.jsonl``), the
runner's ``quality.json`` and the ``meta.json`` the CLI wrote at launch.
:func:`render_flight_report` fuses whatever subset of those exists into
the table an operator reads first after a chaos drill: per-stage timings
and attempts, retries, breaker trips, worker kills, drop counts and
throughput. ``python -m repro report --run-dir DIR`` prints it.

Everything here reads plain JSON from disk — no live registry needed —
so the report works on a run dir copied off another machine.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.obs import METRICS_FILE, PROFILE_FILE, TRACE_JSONL_FILE
from repro.obs.timeseries import HISTORY_FILE

#: Slowest ``serve.http`` spans listed in the slow-request section.
SLOW_REQUEST_ROWS = 5

#: The runner's serialized DataQualityReport (written by the CLI).
QUALITY_FILE = "quality.json"
META_FILE = "meta.json"


def _read_json(run_dir: Path, name: str) -> Optional[Dict[str, Any]]:
    path = run_dir / name
    if not path.exists():
        return None
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, OSError):
        return None


def _read_jsonl(run_dir: Path, name: str) -> Optional[List[Dict[str, Any]]]:
    path = run_dir / name
    if not path.exists():
        return None
    records = []
    try:
        for line in path.read_text(encoding="utf-8").splitlines():
            if line.strip():
                records.append(json.loads(line))
    except (json.JSONDecodeError, OSError):
        return None
    return records


def load_run_artifacts(run_dir: Union[str, Path]) -> Dict[str, Any]:
    """Every telemetry artifact the run dir has, keyed by kind."""
    run_dir = Path(run_dir)
    return {
        "meta": _read_json(run_dir, META_FILE),
        "metrics": _read_json(run_dir, METRICS_FILE),
        "profile": _read_json(run_dir, PROFILE_FILE),
        "quality": _read_json(run_dir, QUALITY_FILE),
        "trace": _read_jsonl(run_dir, TRACE_JSONL_FILE),
        "history": _read_jsonl(run_dir, HISTORY_FILE),
    }


def _metric_series(
    metrics: Optional[Dict[str, Any]], name: str
) -> List[Dict[str, Any]]:
    if not metrics:
        return []
    family = metrics.get("metrics", {}).get(name)
    return family.get("series", []) if family else []


def _metric_total(metrics: Optional[Dict[str, Any]], name: str,
                  **labels: str) -> float:
    """Sum of a family's series values matching the given labels."""
    total = 0.0
    for series in _metric_series(metrics, name):
        got = series.get("labels", {})
        if all(got.get(k) == v for k, v in labels.items()):
            total += series.get("value", 0)
    return total


def _fmt_count(value: float) -> str:
    return str(int(value)) if float(value).is_integer() else f"{value:.2f}"


def render_flight_report(run_dir: Union[str, Path]) -> str:
    """The post-run summary table (sections appear as artifacts allow)."""
    run_dir = Path(run_dir)
    art = load_run_artifacts(run_dir)
    meta, metrics = art["meta"], art["metrics"]
    profile, quality, trace = art["profile"], art["quality"], art["trace"]
    if not any((metrics, profile, quality, trace)):
        return (
            f"=== Flight report: {run_dir} ===\n"
            "no telemetry artifacts found "
            "(run with --run-dir and --metrics to produce them)"
        )
    lines: List[str] = [f"=== Flight report: {run_dir} ==="]
    if meta:
        lines.append(
            "run: "
            + ", ".join(
                f"{key}={meta[key]}"
                for key in ("command", "preset", "seed", "workers", "shards")
                if meta.get(key) is not None
            )
        )
    lines.append("")

    # -- stages: status/attempts from quality, cost from profile ------------
    profiles_by_stage: Dict[str, Dict[str, Any]] = {}
    shard_counts: Dict[str, int] = {}
    for entry in (profile or {}).get("profiles", []):
        if entry.get("shard"):
            shard_counts[entry["stage"]] = (
                shard_counts.get(entry["stage"], 0) + 1
            )
        else:
            profiles_by_stage[entry["stage"]] = entry
    stage_rows = (quality or {}).get("stages", [])
    if stage_rows or profiles_by_stage:
        lines.append(
            f"{'stage':<12} {'status':<9} {'attempts':>8} {'wall_s':>8} "
            f"{'cpu_s':>8} {'peak_mb':>8} {'events':>9} {'ev/s':>10}"
        )
        names = [row["name"] for row in stage_rows] or sorted(
            profiles_by_stage
        )
        rows_by_name = {row["name"]: row for row in stage_rows}
        for name in names:
            row = rows_by_name.get(name, {})
            prof = profiles_by_stage.get(name, {})
            wall = prof.get("wall_s", row.get("elapsed", 0.0)) or 0.0
            rendered = (
                f"{name:<12} {row.get('status', '-'):<9} "
                f"{row.get('attempts', 0):>8} {wall:>8.3f} "
                f"{prof.get('cpu_s', 0.0):>8.3f} "
                f"{prof.get('peak_rss_kb', 0) / 1024:>8.1f} "
                f"{prof.get('events', 0):>9} "
                f"{prof.get('events_per_s', 0.0):>10.1f}"
            )
            if shard_counts.get(name):
                rendered += f"  [{shard_counts[name]} shard(s)]"
            lines.append(rendered)
        lines.append("")

    # -- supervision: retries, breaker trips, worker kills -------------------
    supervision: List[str] = []
    retries = _metric_total(metrics, "pipeline_stage_attempt_failures_total")
    if metrics is not None:
        supervision.append(f"  failed stage attempts (retried): "
                           f"{_fmt_count(retries)}")
    trips = _metric_series(metrics, "breaker_transitions_total")
    opened = sum(
        s["value"] for s in trips
        if s.get("labels", {}).get("to_state") == "open"
    )
    if trips or metrics is not None:
        supervision.append(f"  breaker trips (-> open): {_fmt_count(opened)}")
    refused = _metric_total(metrics, "breaker_refusals_total")
    if refused:
        supervision.append(f"  attempts refused by breakers: "
                           f"{_fmt_count(refused)}")
    kills = _metric_total(metrics, "exec_workers_killed_total")
    crashes = _metric_total(
        metrics, "exec_task_outcomes_total", status="crashed"
    )
    if metrics is not None:
        supervision.append(f"  workers killed by watchdog: "
                           f"{_fmt_count(kills)}")
        supervision.append(f"  worker crashes detected: "
                           f"{_fmt_count(crashes)}")
    if supervision:
        lines.append("supervision:")
        lines.extend(supervision)
        lines.append("")

    # -- data loss: feed drops + quarantine ----------------------------------
    feeds = (quality or {}).get("feeds", [])
    drops = _metric_series(metrics, "records_quarantined_total")
    if feeds or drops:
        lines.append("data loss:")
        for feed in feeds:
            lines.append(
                f"  {feed['feed']:<10} {feed['status']:<9} "
                f"dropped={feed['events_dropped']} "
                f"observed={feed['events_observed']}"
            )
        for series in drops:
            labels = series.get("labels", {})
            lines.append(
                f"  quarantine {labels.get('feed') or '(unnamed)'} "
                f"[{labels.get('reason')}]: "
                f"{_fmt_count(series['value'])} record(s)"
            )
        lines.append("")

    # -- cross-run stage cache ------------------------------------------------
    cache_hits = _metric_total(metrics, "stage_cache_hits_total")
    cache_misses = _metric_total(metrics, "stage_cache_misses_total")
    if cache_hits or cache_misses:
        read_mb = _metric_total(
            metrics, "stage_cache_bytes_read_total"
        ) / 1e6
        written_mb = _metric_total(
            metrics, "stage_cache_bytes_written_total"
        ) / 1e6
        hit_stages = sorted(
            s.get("labels", {}).get("stage", "?")
            for s in _metric_series(metrics, "stage_cache_hits_total")
            if s.get("value")
        )
        line = (
            f"stage cache: {_fmt_count(cache_hits)} hit(s), "
            f"{_fmt_count(cache_misses)} miss(es), "
            f"{read_mb:.2f} MB read, {written_mb:.2f} MB written"
        )
        if hit_stages:
            line += f" [{', '.join(hit_stages)}]"
        lines.append(line)

    # -- storage and streaming ----------------------------------------------
    saves = _metric_total(metrics, "checkpoint_saves_total")
    if saves:
        mb = _metric_total(metrics, "checkpoint_bytes_written_total") / 1e6
        fsyncs = _metric_total(metrics, "store_fsyncs_total")
        lines.append(
            f"checkpoints: {_fmt_count(saves)} saved, {mb:.2f} MB written, "
            f"{_fmt_count(fsyncs)} fsync(s)"
        )
    backpressure = _metric_total(
        metrics, "stream_backpressure_waits_total"
    )
    ingested = _metric_total(metrics, "stream_events_ingested_total")
    if ingested:
        lines.append(
            f"streaming: {_fmt_count(ingested)} events ingested, "
            f"{_fmt_count(backpressure)} backpressure wait(s)"
        )

    # -- live service (serve data dirs double as run dirs) -------------------
    admitted = _metric_total(metrics, "serve_admitted_total")
    wal_appends = _metric_total(metrics, "serve_wal_appends_total")
    if admitted or wal_appends:
        applied = _metric_total(metrics, "serve_applied_total")
        shed = _metric_total(metrics, "serve_shed_total")
        rejected = _metric_total(metrics, "serve_rejected_total")
        lines.append("live service:")
        lines.append(
            f"  admitted {_fmt_count(admitted)}, applied "
            f"{_fmt_count(applied)}, shed {_fmt_count(shed)}, "
            f"rejected {_fmt_count(rejected)}"
        )
        by_feed = {
            s.get("labels", {}).get("feed", "?"): s.get("value", 0)
            for s in _metric_series(metrics, "serve_admitted_total")
        }
        if by_feed:
            lines.append(
                "  admitted by feed: "
                + ", ".join(
                    f"{feed}={_fmt_count(count)}"
                    for feed, count in sorted(by_feed.items())
                )
            )
        depth = _metric_total(metrics, "serve_queue_depth")
        shedding = _metric_total(metrics, "serve_shedding")
        lines.append(
            f"  queue depth at export: {_fmt_count(depth)} "
            f"(shed mode: {'on' if shedding else 'off'})"
        )
        snapshots = _metric_total(metrics, "serve_snapshots_total")
        snapshot_age = _metric_total(metrics, "serve_snapshot_age_seconds")
        wal_mb = _metric_total(metrics, "serve_wal_bytes_total") / 1e6
        fsyncs = _metric_total(metrics, "serve_wal_fsyncs_total")
        lines.append(
            f"  durability: {_fmt_count(snapshots)} snapshot(s) "
            f"(newest {snapshot_age:.1f}s old), "
            f"{_fmt_count(wal_appends)} WAL append(s), "
            f"{wal_mb:.2f} MB, {_fmt_count(fsyncs)} fsync(s)"
        )
        replayed = _metric_total(metrics, "serve_recovery_replayed")
        recovery_s = _metric_total(
            metrics, "serve_recovery_duration_seconds"
        )
        discarded = _metric_total(
            metrics, "serve_snapshots_discarded_total"
        )
        line = (
            f"  last recovery: {_fmt_count(replayed)} WAL record(s) "
            f"replayed in {recovery_s:.3f}s"
        )
        if discarded:
            line += f", {_fmt_count(discarded)} corrupt snapshot(s) skipped"
        lines.append(line)
        stalls = _metric_total(metrics, "serve_watchdog_stalls_total")
        if stalls:
            lines.append(
                f"  watchdog stalls: {_fmt_count(stalls)}"
            )
        lines.append("")

    # -- replication / cluster -----------------------------------------------
    if _metric_series(metrics, "serve_role"):
        role_code = int(_metric_total(metrics, "serve_role"))
        role = {0: "primary", 1: "replica", 2: "fenced"}.get(role_code, "?")
        epoch = int(_metric_total(metrics, "serve_epoch"))
        lines.append("cluster:")
        line = f"  role {role}, epoch {epoch}"
        promotions = _metric_total(metrics, "serve_promotions_total")
        fences = _metric_total(metrics, "serve_fences_total")
        if promotions or fences:
            line += (
                f", {_fmt_count(promotions)} promotion(s), "
                f"{_fmt_count(fences)} fence(s)"
            )
        lines.append(line)
        if _metric_series(metrics, "serve_replication_state"):
            state_code = int(
                _metric_total(metrics, "serve_replication_state")
            )
            state = {
                0: "init", 1: "streaming", 2: "bootstrapping", 3: "error",
            }.get(state_code, "?")
            committed = _metric_total(
                metrics, "serve_replication_committed_seq"
            )
            lag = _metric_total(metrics, "serve_replication_lag_records")
            lines.append(
                f"  shipper: {state}, committed seq "
                f"{_fmt_count(committed)}, lag {_fmt_count(lag)} record(s)"
            )
            polls = _metric_total(metrics, "serve_replication_polls_total")
            errors = _metric_total(metrics, "serve_replication_errors_total")
            fetch_mb = _metric_total(
                metrics, "serve_replication_fetch_bytes_total"
            ) / 1e6
            bootstraps = _metric_total(
                metrics, "serve_replication_bootstraps_total"
            )
            line = (
                f"  {_fmt_count(polls)} poll(s), {_fmt_count(errors)} "
                f"error(s), {fetch_mb:.2f} MB fetched"
            )
            if bootstraps:
                line += f", {_fmt_count(bootstraps)} snapshot bootstrap(s)"
            lines.append(line)
        follower_lags = _metric_series(
            metrics, "serve_replication_follower_lag"
        )
        if follower_lags:
            lines.append(
                "  followers: "
                + ", ".join(
                    f"{s.get('labels', {}).get('follower', '?')} lag "
                    f"{_fmt_count(s.get('value', 0))}"
                    for s in sorted(
                        follower_lags,
                        key=lambda s: s.get("labels", {}).get("follower", ""),
                    )
                )
            )
        sync_refused = _metric_total(metrics, "serve_sync_refused_total")
        if sync_refused:
            lines.append(
                f"  sync-ack refused: {_fmt_count(sync_refused)} record(s)"
            )
        lines.append("")

    # -- cluster health (the flight recorder's telemetry) --------------------
    health: List[str] = []
    wal_segments = _metric_total(metrics, "serve_wal_segments")
    if wal_segments:
        wal_disk_mb = _metric_total(metrics, "serve_wal_disk_bytes") / 1e6
        health.append(
            f"  WAL on disk: {_fmt_count(wal_segments)} segment(s), "
            f"{wal_disk_mb:.2f} MB"
        )
    lag_bytes = _metric_series(metrics, "serve_replication_lag_bytes")
    if lag_bytes:
        commit_age = _metric_total(
            metrics, "serve_replication_last_commit_age_seconds"
        )
        health.append(
            f"  replication byte lag: "
            f"{_fmt_count(_metric_total(metrics, 'serve_replication_lag_bytes'))} B, "
            f"last commit {commit_age:.1f}s ago"
        )
    follower_ages = _metric_series(
        metrics, "serve_replication_follower_age_seconds"
    )
    if follower_ages:
        health.append(
            "  follower freshness: "
            + ", ".join(
                f"{s.get('labels', {}).get('follower', '?')} reported "
                f"{s.get('value', 0):.1f}s ago"
                for s in sorted(
                    follower_ages,
                    key=lambda s: s.get("labels", {}).get("follower", ""),
                )
            )
        )
    http_series = _metric_series(metrics, "serve_http_request_seconds")
    if http_series:
        count = sum(s.get("count", 0) for s in http_series)
        total_s = sum(s.get("sum", 0.0) for s in http_series)
        mean_ms = (total_s / count * 1000) if count else 0.0
        errors = sum(
            s.get("count", 0)
            for s in http_series
            if str(s.get("labels", {}).get("status", "")).startswith("5")
        )
        health.append(
            f"  HTTP: {_fmt_count(count)} request(s), mean {mean_ms:.1f}ms, "
            f"{_fmt_count(errors)} 5xx"
        )
    history = art["history"]
    if history:
        spanned = history[-1].get("ts", 0.0) - history[0].get("ts", 0.0)
        health.append(
            f"  metrics history: {len(history)} window(s) "
            f"covering {spanned:.1f}s"
        )
    if health:
        lines.append("cluster health:")
        lines.extend(health)
        lines.append("")

    # -- slow requests (from the exported serve.http spans) ------------------
    http_spans = [
        span for span in (trace or [])
        if span.get("name") == "serve.http"
    ]
    if http_spans:
        slowest = sorted(
            http_spans,
            key=lambda s: (
                -float(s.get("duration", 0.0)),
                str(s.get("attrs", {}).get("trace_id", "")),
            ),
        )[:SLOW_REQUEST_ROWS]
        lines.append("slowest requests:")
        for span in slowest:
            attrs = span.get("attrs", {})
            lines.append(
                f"  {span.get('duration', 0.0) * 1000:8.1f}ms "
                f"{attrs.get('method', '?')} {attrs.get('endpoint', '?')} "
                f"status={attrs.get('status', '?')} "
                f"node={attrs.get('node', '?')} "
                f"trace={attrs.get('trace_id', '?')}"
            )
        lines.append("")

    # -- trace summary -------------------------------------------------------
    if trace:
        total = sum(span.get("duration", 0.0) for span in trace)
        roots = [s for s in trace if s.get("parent_id") is None]
        root_wall = sum(span.get("duration", 0.0) for span in roots)
        lines.append(
            f"trace: {len(trace)} span(s), {root_wall:.3f}s in "
            f"{len(roots)} root span(s), {total:.3f}s total span time"
        )
    while lines and not lines[-1]:
        lines.pop()
    return "\n".join(lines)


__all__ = [
    "META_FILE",
    "QUALITY_FILE",
    "load_run_artifacts",
    "render_flight_report",
]
