"""DPS-use detection from DNS snapshots (Jonker et al. IMC'16 methodology).

A Web site is classified as protected by a provider on a given day when its
snapshot records show (in priority order): a CNAME expanding through the
provider's edge, NS delegation to the provider, an A record inside a
provider-announced prefix, or an A record inside a customer prefix the
provider announced on the victim's behalf (BGP diversion, tracked by the
:class:`BGPDiversionLog`).

Scanning every domain every day would repeat identical work; timelines are
piecewise-constant, so the scanner evaluates each domain only on its
hosting-change days, producing identical results to a daily crawl.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.dns.records import DomainTimeline, HostingState, ResourceRecord, RRTYPE_A, RRTYPE_CNAME, RRTYPE_NS
from repro.dns.zone import Zone
from repro.dps.providers import DPSProvider
from repro.net.addressing import Prefix


@dataclass(frozen=True)
class DPSUsage:
    """First observed protection of one Web site."""

    domain: str  # www name
    provider: str
    first_day: int


@dataclass
class BGPDiversionLog:
    """Customer prefixes announced by a DPS from a given day onward."""

    _entries: List[Tuple[Prefix, str, int]] = field(default_factory=list)

    def divert(self, prefix: Prefix, provider: str, from_day: int) -> None:
        self._entries.append((prefix, provider, from_day))

    def provider_for(self, address: int, day: int) -> Optional[str]:
        """Provider diverting *address* on *day*, most-specific match."""
        best: Optional[Tuple[int, str]] = None
        for prefix, provider, from_day in self._entries:
            if day >= from_day and prefix.contains(address):
                if best is None or prefix.length > best[0]:
                    best = (prefix.length, provider)
        return best[1] if best else None

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class DPSUsageDataset:
    """All detected protection usage over the window (the 4th data set)."""

    usages: List[DPSUsage]
    n_days: int

    def first_day_by_domain(self) -> Dict[str, int]:
        result: Dict[str, int] = {}
        for usage in self.usages:
            existing = result.get(usage.domain)
            if existing is None or usage.first_day < existing:
                result[usage.domain] = usage.first_day
        return result

    def provider_site_counts(self) -> Dict[str, int]:
        """Web sites ever associated with each provider (Table 3)."""
        seen: Dict[str, set] = {}
        for usage in self.usages:
            seen.setdefault(usage.provider, set()).add(usage.domain)
        return {provider: len(domains) for provider, domains in seen.items()}


class DPSDetector:
    """Classifies protection from hosting states or raw snapshot records."""

    def __init__(
        self,
        providers: Sequence[DPSProvider],
        diversion_log: Optional[BGPDiversionLog] = None,
    ) -> None:
        if not providers:
            raise ValueError("need at least one provider signature")
        self.providers = list(providers)
        self.diversion_log = diversion_log

    def classify_state(
        self, state: HostingState, day: int = 0
    ) -> Optional[str]:
        """Provider protecting a hosting state, or None."""
        for provider in self.providers:
            if provider.matches_cname(state.cname):
                return provider.name
            if state.ns and provider.matches_ns(state.ns):
                return provider.name
            if provider.matches_address(state.ip):
                return provider.name
        if self.diversion_log is not None:
            return self.diversion_log.provider_for(state.ip, day)
        return None

    def classify_records(
        self, www_name: str, records: Iterable[ResourceRecord], day: int = 0
    ) -> Optional[str]:
        """Classification from raw snapshot rows (the crawl-shaped input)."""
        cname: Optional[str] = None
        address: Optional[int] = None
        ns_names: List[str] = []
        for record in records:
            if record.rtype == RRTYPE_CNAME and record.name == www_name:
                cname = record.value
            elif record.rtype == RRTYPE_A and record.address is not None:
                if record.name == www_name or record.name == cname:
                    address = record.address
            elif record.rtype == RRTYPE_NS:
                ns_names.append(record.value)
        for provider in self.providers:
            if provider.matches_cname(cname):
                return provider.name
            if provider.matches_ns(ns_names):
                return provider.name
            if address is not None and provider.matches_address(address):
                return provider.name
        if self.diversion_log is not None and address is not None:
            return self.diversion_log.provider_for(address, day)
        return None

    def scan(self, zones: Sequence[Zone], n_days: int) -> DPSUsageDataset:
        """Detect first protection for every Web site over the window.

        Evaluates each domain at its hosting-change days only — equivalent
        to, but far cheaper than, classifying all daily snapshots. BGP
        diversions can begin between change days, so when a diversion log is
        present its entry days are also probed.
        """
        probe_days_extra: List[int] = []
        if self.diversion_log is not None:
            probe_days_extra = sorted(
                {day for _, _, day in self.diversion_log._entries}
            )
        usages: List[DPSUsage] = []
        for zone in zones:
            for domain in zone.domains:
                if not domain.has_www:
                    continue
                usage = self._first_usage(domain, n_days, probe_days_extra)
                if usage is not None:
                    usages.append(usage)
        return DPSUsageDataset(usages=usages, n_days=n_days)

    def _first_usage(
        self,
        domain: DomainTimeline,
        n_days: int,
        probe_days_extra: Sequence[int],
    ) -> Optional[DPSUsage]:
        probe_days = sorted(
            set(domain.change_days())
            | {d for d in probe_days_extra if d >= domain.registered_day}
        )
        for day in probe_days:
            if not 0 <= day < n_days:
                continue
            state = domain.state_on(day)
            if state is None:
                continue
            provider = self.classify_state(state, day)
            if provider is not None:
                first_day = max(day, domain.registered_day)
                return DPSUsage(domain.www_name, provider, first_day)
        return None
