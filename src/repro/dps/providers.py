"""The ten DPS providers and their detection signatures.

Each provider diverts customer traffic via DNS (CNAME onto the provider's
edge, or full NS delegation) or via BGP (announcing the customer's — or its
own scrubbing — prefix). Market-share weights derive from Table 3 of the
paper (millions of protected Web sites per provider) and steer which
provider a migrating customer picks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.internet.topology import InternetTopology
from repro.net.addressing import Prefix

METHOD_CNAME = "cname"
METHOD_NS = "ns"
METHOD_BGP = "bgp"

# (name, diversion method, Table 3 share in millions of Web sites).
PROVIDER_TABLE: Sequence[Tuple[str, str, float]] = (
    ("Akamai", METHOD_CNAME, 5.86),
    ("CenturyLink", METHOD_BGP, 0.87),
    ("CloudFlare", METHOD_NS, 4.27),
    ("DOSarrest", METHOD_CNAME, 7.04),
    ("F5 Networks", METHOD_CNAME, 3.58),
    ("Incapsula", METHOD_CNAME, 3.78),
    ("Level3", METHOD_BGP, 0.47),
    ("Neustar", METHOD_NS, 10.78),
    ("Verisign", METHOD_CNAME, 4.34),
    ("VirtualRoad", METHOD_NS, 0.0001),
)


@dataclass(frozen=True)
class DPSProvider:
    """One protection service and the signatures that identify it."""

    name: str
    method: str
    cname_suffix: str
    ns_suffix: str
    prefix: Prefix
    asn: int
    market_share: float

    #: Size of the shared reverse-proxy pool customers resolve to. Keeping
    #: it tiny concentrates protected sites on a few addresses — the paper
    #: found a single DOSarrest-routed IP fronting millions of Web sites.
    EDGE_POOL_SIZE = 2

    def edge_addresses(self) -> List[int]:
        """The provider's shared reverse-proxy addresses."""
        return [self.prefix.network + i for i in range(self.EDGE_POOL_SIZE)]

    def edge_address(self, rng) -> int:
        """A reverse-proxy address for a newly onboarded customer."""
        return self.prefix.network + rng.randrange(self.EDGE_POOL_SIZE)

    def protection_cname(self, domain_name: str) -> Optional[str]:
        """The CNAME a protected customer's `www` expands through."""
        if self.method != METHOD_CNAME:
            return None
        label = domain_name.replace(".", "-")
        return f"{label}{self.cname_suffix}"

    def protection_ns(self) -> Tuple[str, ...]:
        """Name servers a fully delegated customer uses."""
        if self.method != METHOD_NS:
            return ()
        slug = self.ns_suffix.lstrip(".")
        return (f"ns1{self.ns_suffix}", f"ns2{self.ns_suffix}")

    def matches_cname(self, cname: Optional[str]) -> bool:
        return bool(cname) and cname.endswith(self.cname_suffix)

    def matches_ns(self, ns_names: Sequence[str]) -> bool:
        return any(name.endswith(self.ns_suffix) for name in ns_names)

    def matches_address(self, address: int) -> bool:
        return self.prefix.contains(address)


def build_providers(topology: InternetTopology) -> List[DPSProvider]:
    """Instantiate the ten providers over the topology's DPS allocations."""
    providers: List[DPSProvider] = []
    for name, method, share in PROVIDER_TABLE:
        autonomous_system = topology.as_by_name(name)
        if autonomous_system is None or not autonomous_system.prefixes:
            raise ValueError(f"topology lacks an AS for DPS provider {name!r}")
        slug = name.lower().replace(" ", "-")
        providers.append(
            DPSProvider(
                name=name,
                method=method,
                cname_suffix=f".{slug}-shield.example",
                ns_suffix=f".{slug}-dns.example",
                prefix=autonomous_system.prefixes[0],
                asn=autonomous_system.asn,
                market_share=share,
            )
        )
    return providers


def provider_by_name(
    providers: Sequence[DPSProvider], name: str
) -> Optional[DPSProvider]:
    return next((p for p in providers if p.name == name), None)


def choose_provider(providers: Sequence[DPSProvider], rng) -> DPSProvider:
    """Market-share-weighted provider choice for a migrating customer."""
    weights = [p.market_share for p in providers]
    return rng.choices(list(providers), weights=weights, k=1)[0]
