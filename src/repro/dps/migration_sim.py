"""Behavioural model of DPS adoption.

This simulator edits domain hosting timelines so that protection adoption
has the causal structure the paper measures:

* **Preexisting customers** — a tier-dependent fraction of domains is
  protected from registration; big shared platforms (which attract attacks)
  adopt at higher rates, which is why the paper finds 18.6 % preexisting
  customers among attacked sites versus 0.89 % among unattacked ones.
* **Post-attack migration** — each ground-truth attack on a domain's
  current address may trigger migration. The *probability* rises mildly
  with intensity; the *delay* shrinks sharply with intensity (Figure 10's
  urgency effect). Repetition has no direct effect — and because a migrated
  domain stops resolving to its attacked origin, migrating sites naturally
  accumulate fewer attacks (Figure 9's counter-intuitive CDF).
* **Hoster storylines** — platform-level migrations that move every hosted
  site at once, reproducing the paper's Wix-to-Incapsula (one day after a
  ≥4 h attack) and eNom-to-Verisign (101 days) anecdotes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from random import Random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.attacks.attacker import ATTACK_DIRECT, GroundTruthAttack
from repro.dns.records import DomainTimeline, HostingState
from repro.dns.zone import Zone
from repro.dps.detection import BGPDiversionLog
from repro.dps.providers import (
    DPSProvider,
    METHOD_BGP,
    choose_provider,
    provider_by_name,
)
from repro.internet.hosting import (
    HostingEcosystem,
    TIER_GIANT,
    TIER_LARGE,
    TIER_MEDIUM,
    TIER_SELF,
    TIER_SMALL,
)
from repro.net.addressing import Prefix, slash24

DAY = 86400.0


@dataclass(frozen=True)
class HosterStoryline:
    """A scripted platform-level migration.

    The trigger is the first attack meeting *both* thresholds; the Wix
    storyline requires the long, high-intensity wave (the paper's
    November 2016 peak), not just any four-hour attack.
    """

    hoster_name: str
    provider_name: str
    delay_days: int
    min_trigger_duration: float = 0.0  # e.g. 4 h for the Wix storyline
    min_trigger_rate: float = 0.0  # e.g. spike-level rates only
    label: str = ""


DEFAULT_STORYLINES: Tuple[HosterStoryline, ...] = (
    HosterStoryline(
        "Wix", "Incapsula", 1, 4 * 3600.0, 20_000.0, "Wix -> Incapsula"
    ),
    HosterStoryline("eNom", "Verisign", 101, 0.0, 0.0, "eNom -> Verisign"),
)


@dataclass(frozen=True)
class MigrationConfig:
    """Behavioural parameters."""

    seed: int = 8
    preexisting_by_tier: Dict[str, float] = field(
        default_factory=lambda: {
            TIER_GIANT: 0.15,
            TIER_LARGE: 0.11,
            TIER_MEDIUM: 0.07,
            TIER_SMALL: 0.045,
            TIER_SELF: 0.004,
        }
    )
    # Per-attack migration probabilities.
    migrate_prob_self_hosted: float = 0.015
    migrate_prob_shared: float = 0.0018
    # A site owner seriously considers outsourcing protection only the
    # first few times they are hit; after that they have visibly decided to
    # ride attacks out. This hardening is what keeps attack *repetition*
    # from driving migration (Figure 9).
    max_migration_trials: int = 4
    # Probability scales exponentially with standardized intensity: intense
    # attacks are what actually push owners to buy protection, which in turn
    # makes the *observed* top-intensity classes migrate fastest (Fig. 10).
    intensity_prob_slope: float = 1.1
    intensity_prob_cap: float = 8.0
    # Background DPS adoption unrelated to (observed) attacks — the paper's
    # "no attack observed / migrating" branch (3.32 %). Shared-hosting
    # customers adopt independently far less often (their platform decides).
    ambient_migration_prob: float = 0.06
    ambient_shared_factor: float = 0.35
    # Delay model: log-normal days, shifted down by standardized intensity.
    delay_mu: float = math.log(12.0)
    delay_sigma: float = 1.0
    delay_intensity_slope: float = 0.95
    straggler_probability: float = 0.15
    straggler_multiplier: Tuple[float, float] = (3.0, 9.0)
    max_delay_days: int = 180
    # Standardization of ground-truth rates (matches generator defaults).
    direct_rate_mu: float = math.log(256.0)
    direct_rate_sigma: float = 2.6
    reflection_rate_mu: float = math.log(77.0)
    reflection_rate_sigma: float = 1.8
    storylines: Tuple[HosterStoryline, ...] = DEFAULT_STORYLINES


@dataclass(frozen=True)
class MigrationRecord:
    """Ground truth of one migration decision (for validation)."""

    domain: str
    migration_day: int
    provider: str
    trigger_attack_id: Optional[int]
    trigger_day: Optional[int]
    delay_days: int
    storyline: Optional[str] = None


@dataclass
class MigrationLedger:
    """All behavioural outcomes of the simulation."""

    preexisting: List[Tuple[str, str]] = field(default_factory=list)
    migrations: List[MigrationRecord] = field(default_factory=list)

    @property
    def migrated_domains(self) -> Dict[str, MigrationRecord]:
        return {record.domain: record for record in self.migrations}


class MigrationSimulator:
    """Applies the behavioural model to zones, in place."""

    def __init__(
        self,
        zones: Sequence[Zone],
        providers: Sequence[DPSProvider],
        ecosystem: HostingEcosystem,
        config: MigrationConfig = MigrationConfig(),
        diversion_log: Optional[BGPDiversionLog] = None,
    ) -> None:
        self.zones = list(zones)
        self.providers = list(providers)
        self.ecosystem = ecosystem
        self.config = config
        self.diversion_log = diversion_log if diversion_log is not None else BGPDiversionLog()
        self._rng = Random(config.seed)
        self._ledger = MigrationLedger()
        # domain name -> scheduled (day, provider, record); blocks re-migration.
        self._scheduled: Dict[str, Tuple[int, DPSProvider, MigrationRecord]] = {}

    def run(
        self, attacks: Sequence[GroundTruthAttack], n_days: int
    ) -> MigrationLedger:
        """Assign preexisting customers, react to attacks, apply timelines."""
        self._assign_preexisting()
        index = self._build_ip_index()
        ordered = sorted(attacks, key=lambda a: a.start)
        self._apply_storylines(ordered, index, n_days)
        self._react_to_attacks(ordered, index, n_days)
        self._ambient_adoption(n_days)
        self._apply_scheduled()
        return self._ledger

    # -- ambient adoption -----------------------------------------------------

    def _ambient_adoption(self, n_days: int) -> None:
        """Background DPS uptake not driven by any attack we generated.

        In the real data some "no attack observed" sites still migrate
        (3.32 %) — they react to attacks outside the observation window or
        adopt protection proactively. Attack-triggered decisions already
        made take precedence (``_scheduled`` wins on conflict).
        """
        rng, cfg = self._rng, self.config
        if cfg.ambient_migration_prob <= 0:
            return
        for domain in self._all_web_domains():
            if domain.www_name in self._scheduled:
                continue
            state = domain.states()[0]
            if state.dps_provider is not None:
                continue
            probability = cfg.ambient_migration_prob
            if state.hoster is not None:
                probability *= cfg.ambient_shared_factor
            if rng.random() >= probability:
                continue
            first_possible = max(1, domain.registered_day + 1)
            if first_possible >= n_days:
                continue
            day = rng.randrange(first_possible, n_days)
            provider = self._choose_provider_for(state)
            record = MigrationRecord(
                domain=domain.www_name,
                migration_day=day,
                provider=provider.name,
                trigger_attack_id=None,
                trigger_day=None,
                delay_days=0,
                storyline="ambient",
            )
            self._scheduled[domain.www_name] = (day, provider, record)

    # -- preexisting customers ----------------------------------------------

    def _assign_preexisting(self) -> None:
        rng, cfg = self._rng, self.config
        for domain in self._all_web_domains():
            tier = self._tier_of(domain)
            if rng.random() >= cfg.preexisting_by_tier.get(tier, 0.0):
                continue
            state = domain.states()[0]
            # _choose_provider_for keeps BGP providers away from
            # shared-hosting customers: diverting a shared /24 would
            # otherwise "protect" every co-hosted site at once.
            provider = self._choose_provider_for(state)
            protected = self._protected_state(domain, state, provider, day=domain.registered_day)
            domain.set_state(domain.registered_day, protected)
            self._ledger.preexisting.append((domain.www_name, provider.name))

    # -- per-attack migration -----------------------------------------------

    def _react_to_attacks(
        self,
        attacks: Sequence[GroundTruthAttack],
        index: Dict[int, List[DomainTimeline]],
        n_days: int,
    ) -> None:
        rng, cfg = self._rng, self.config
        trials: Dict[str, int] = {}
        for attack in attacks:
            domains = index.get(attack.target)
            if not domains:
                continue
            day = int(attack.start // DAY)
            z = self._standardized_intensity(attack)
            prob_scale = min(
                cfg.intensity_prob_cap,
                math.exp(cfg.intensity_prob_slope * max(0.0, z)),
            )
            for domain in domains:
                name = domain.www_name
                if name in self._scheduled:
                    continue
                if trials.get(name, 0) >= cfg.max_migration_trials:
                    continue
                state = domain.state_on(day)
                if state is None or state.dps_provider is not None:
                    continue
                trials[name] = trials.get(name, 0) + 1
                base = (
                    cfg.migrate_prob_self_hosted
                    if state.hoster is None
                    else cfg.migrate_prob_shared
                )
                if rng.random() >= min(0.9, base * prob_scale):
                    continue
                delay = self._draw_delay(z)
                migration_day = day + delay
                if migration_day >= n_days:
                    continue
                provider = self._choose_provider_for(state)
                record = MigrationRecord(
                    domain=domain.www_name,
                    migration_day=migration_day,
                    provider=provider.name,
                    trigger_attack_id=attack.attack_id,
                    trigger_day=day,
                    delay_days=delay,
                )
                self._scheduled[domain.www_name] = (migration_day, provider, record)

    def _standardized_intensity(self, attack: GroundTruthAttack) -> float:
        cfg = self.config
        if attack.kind == ATTACK_DIRECT:
            return (math.log(attack.rate) - cfg.direct_rate_mu) / cfg.direct_rate_sigma
        return (
            math.log(attack.rate) - cfg.reflection_rate_mu
        ) / cfg.reflection_rate_sigma

    def _draw_delay(self, z: float) -> int:
        rng, cfg = self._rng, self.config
        mu = cfg.delay_mu - cfg.delay_intensity_slope * z
        delay = rng.lognormvariate(mu, cfg.delay_sigma)
        if rng.random() < cfg.straggler_probability:
            delay *= rng.uniform(*cfg.straggler_multiplier)
        return max(1, min(cfg.max_delay_days, int(round(delay))))

    def _choose_provider_for(self, state: HostingState) -> DPSProvider:
        """Shared-hosting customers cannot use BGP diversion (no prefix of
        their own), so re-draw until a DNS-method provider comes up."""
        provider = choose_provider(self.providers, self._rng)
        if state.hoster is not None:
            while provider.method == METHOD_BGP:
                provider = choose_provider(self.providers, self._rng)
        return provider

    # -- storylines -----------------------------------------------------------

    def _apply_storylines(
        self,
        attacks: Sequence[GroundTruthAttack],
        index: Dict[int, List[DomainTimeline]],
        n_days: int,
    ) -> None:
        for storyline in self.config.storylines:
            hoster = self.ecosystem.hoster_by_name(storyline.hoster_name)
            provider = provider_by_name(self.providers, storyline.provider_name)
            if hoster is None or provider is None:
                continue
            hoster_ips = set(hoster.ips)
            trigger = next(
                (
                    a
                    for a in attacks
                    if a.target in hoster_ips
                    and a.duration >= storyline.min_trigger_duration
                    and a.rate >= storyline.min_trigger_rate
                ),
                None,
            )
            if trigger is None:
                continue
            trigger_day = int(trigger.start // DAY)
            migration_day = trigger_day + storyline.delay_days
            if migration_day >= n_days:
                continue
            for ip in hoster_ips:
                for domain in index.get(ip, ()):  # all platform customers
                    if domain.www_name in self._scheduled:
                        continue
                    state = domain.state_on(trigger_day)
                    if state is None or state.dps_provider is not None:
                        continue
                    record = MigrationRecord(
                        domain=domain.www_name,
                        migration_day=migration_day,
                        provider=provider.name,
                        trigger_attack_id=trigger.attack_id,
                        trigger_day=trigger_day,
                        delay_days=storyline.delay_days,
                        storyline=storyline.label,
                    )
                    self._scheduled[domain.www_name] = (
                        migration_day,
                        provider,
                        record,
                    )

    # -- apply ---------------------------------------------------------------

    def _apply_scheduled(self) -> None:
        by_name = {d.www_name: d for d in self._all_web_domains()}
        for www_name, (day, provider, record) in sorted(self._scheduled.items()):
            domain = by_name[www_name]
            state = domain.state_on(day)
            if state is None:
                state = domain.states()[-1]
            protected = self._protected_state(domain, state, provider, day)
            domain.set_state(day, protected)
            self._ledger.migrations.append(record)

    def _protected_state(
        self,
        domain: DomainTimeline,
        state: HostingState,
        provider: DPSProvider,
        day: int,
    ) -> HostingState:
        """The DNS configuration after onboarding with *provider*."""
        if provider.method == METHOD_BGP:
            # The provider announces the customer's /24; records unchanged.
            self.diversion_log.divert(
                Prefix(slash24(state.ip), 24), provider.name, day
            )
            return HostingState(
                ip=state.ip,
                hoster=state.hoster,
                cname=state.cname,
                ns=state.ns,
                mx_ip=state.mx_ip,
                dps_provider=provider.name,
            )
        edge_ip = provider.edge_address(self._rng)
        cname = provider.protection_cname(domain.name)
        ns = provider.protection_ns() or state.ns
        return HostingState(
            ip=edge_ip,
            hoster=state.hoster,
            cname=cname,
            ns=ns,
            mx_ip=state.mx_ip,
            dps_provider=provider.name,
        )

    # -- helpers ---------------------------------------------------------------

    def _all_web_domains(self) -> List[DomainTimeline]:
        return [d for zone in self.zones for d in zone.domains if d.has_www]

    def _tier_of(self, domain: DomainTimeline) -> str:
        state = domain.states()[0]
        if state.hoster is None:
            return TIER_SELF
        hoster = self.ecosystem.hoster_by_name(state.hoster)
        return hoster.tier if hoster else TIER_SELF

    def _build_ip_index(self) -> Dict[int, List[DomainTimeline]]:
        """Initial-state IP -> domains (decisions react to origin attacks)."""
        index: Dict[int, List[DomainTimeline]] = {}
        for domain in self._all_web_domains():
            state = domain.states()[0]
            index.setdefault(state.ip, []).append(domain)
        return index
