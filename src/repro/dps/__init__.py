"""DDoS Protection Services: providers, detection, and migration behaviour.

Mirrors the paper's fourth data set: DNS-derived adoption of ten protection
services (nine commercial leaders plus VirtualRoad). Detection follows the
Jonker et al. IMC'16 methodology — CNAME signatures, NS signatures, and
A records falling in provider-announced (BGP-diverted) prefixes. The
behavioural migration simulator edits domain hosting timelines so that
protection adoption *follows attacks* with intensity-dependent urgency,
which the analysis layer then rediscovers independently from DNS snapshots.
"""

from repro.dps.providers import DPSProvider, build_providers, PROVIDER_TABLE
from repro.dps.detection import (
    BGPDiversionLog,
    DPSDetector,
    DPSUsage,
    DPSUsageDataset,
)
from repro.dps.migration_sim import (
    HosterStoryline,
    MigrationConfig,
    MigrationLedger,
    MigrationSimulator,
)

__all__ = [
    "DPSProvider",
    "build_providers",
    "PROVIDER_TABLE",
    "BGPDiversionLog",
    "DPSDetector",
    "DPSUsage",
    "DPSUsageDataset",
    "HosterStoryline",
    "MigrationConfig",
    "MigrationLedger",
    "MigrationSimulator",
]
