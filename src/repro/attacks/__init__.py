"""Attacker ecosystem: ground-truth DoS attacks over the observation window.

The measurement substrates (telescope, honeypots) never see this package's
output directly — they *observe* the attacks it generates, with all the loss
and bias of the real infrastructures. Ground truth exists so tests can check
detection fidelity and so the analysis results are emergent rather than
hard-coded.
"""

from repro.attacks.attacker import (
    ATTACK_DIRECT,
    ATTACK_REFLECTION,
    GroundTruthAttack,
)
from repro.attacks.direct import DirectAttackConfig, DirectAttackGenerator
from repro.attacks.reflection import (
    ReflectionAttackConfig,
    ReflectionAttackGenerator,
)
from repro.attacks.schedule import AttackSchedule, ScheduleConfig, TargetPools

__all__ = [
    "ATTACK_DIRECT",
    "ATTACK_REFLECTION",
    "GroundTruthAttack",
    "DirectAttackConfig",
    "DirectAttackGenerator",
    "ReflectionAttackConfig",
    "ReflectionAttackGenerator",
    "AttackSchedule",
    "ScheduleConfig",
    "TargetPools",
]
