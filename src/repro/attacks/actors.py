"""The attacker population: booters, botnets, and skilled attackers.

The paper's introduction attributes the explosion of DoS to the
DoS-as-a-Service phenomenon (booters), and Section 4 infers a class of
"serious attackers" who combine randomly spoofed and reflection attacks
against one victim. The actor population gives the schedule's
``attacker_id`` those semantics:

* **booters** — the bulk of attacks; activity is Zipf-distributed, so a
  few popular services launch most of the volume (as Santanna et al.
  observed across real booters);
* **botnets** — direct floods from real bot addresses, i.e. the unspoofed
  attacks invisible to both measurement infrastructures;
* **skilled attackers** — the joint-attack perpetrators.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Dict, List, Sequence

ACTOR_BOOTER = "booter"
ACTOR_BOTNET = "botnet"
ACTOR_SKILLED = "skilled"


@dataclass(frozen=True)
class Actor:
    """One attacking entity."""

    actor_id: int
    kind: str
    name: str
    activity: float  # relative launch-rate weight within its kind

    def __post_init__(self) -> None:
        if self.kind not in (ACTOR_BOOTER, ACTOR_BOTNET, ACTOR_SKILLED):
            raise ValueError(f"unknown actor kind: {self.kind!r}")
        if self.activity <= 0:
            raise ValueError("actor activity must be positive")


@dataclass(frozen=True)
class ActorPopulationConfig:
    """Size and skew of the attacker population."""

    seed: int = 10
    n_booters: int = 140
    n_botnets: int = 30
    n_skilled: int = 20
    # Zipf exponent for booter popularity (a few services dominate).
    booter_zipf: float = 1.1


class ActorPopulation:
    """All actors, with weighted draws per kind."""

    def __init__(self, actors: Sequence[Actor]) -> None:
        if not actors:
            raise ValueError("actor population must not be empty")
        self.actors = list(actors)
        self._by_id: Dict[int, Actor] = {a.actor_id: a for a in self.actors}
        self._by_kind: Dict[str, List[Actor]] = {}
        for actor in self.actors:
            self._by_kind.setdefault(actor.kind, []).append(actor)
        self._weights: Dict[str, List[float]] = {
            kind: [a.activity for a in members]
            for kind, members in self._by_kind.items()
        }

    def __len__(self) -> int:
        return len(self.actors)

    def by_id(self, actor_id: int) -> Actor:
        return self._by_id[actor_id]

    def of_kind(self, kind: str) -> List[Actor]:
        return list(self._by_kind.get(kind, ()))

    def draw(self, kind: str, rng: Random) -> Actor:
        """Weighted draw of an actor of *kind*."""
        members = self._by_kind.get(kind)
        if not members:
            raise ValueError(f"no actors of kind {kind!r}")
        return rng.choices(members, weights=self._weights[kind], k=1)[0]

    @classmethod
    def generate(
        cls, config: ActorPopulationConfig = ActorPopulationConfig()
    ) -> "ActorPopulation":
        rng = Random(config.seed)
        actors: List[Actor] = []
        next_id = 1
        for rank in range(config.n_booters):
            actors.append(
                Actor(
                    actor_id=next_id,
                    kind=ACTOR_BOOTER,
                    name=f"booter-{rank:03d}",
                    activity=1.0 / (rank + 1) ** config.booter_zipf,
                )
            )
            next_id += 1
        for rank in range(config.n_botnets):
            actors.append(
                Actor(
                    actor_id=next_id,
                    kind=ACTOR_BOTNET,
                    name=f"botnet-{rank:03d}",
                    activity=rng.uniform(0.5, 2.0),
                )
            )
            next_id += 1
        for rank in range(config.n_skilled):
            actors.append(
                Actor(
                    actor_id=next_id,
                    kind=ACTOR_SKILLED,
                    name=f"attacker-{rank:03d}",
                    activity=rng.uniform(0.5, 2.0),
                )
            )
            next_id += 1
        return cls(actors)


def attacks_per_actor(attacks, population: ActorPopulation) -> Dict[str, int]:
    """Ground-truth launch counts per actor name (heavy-tailed for booters)."""
    counts: Dict[str, int] = {}
    for attack in attacks:
        actor = population.by_id(attack.attacker_id)
        counts[actor.name] = counts.get(actor.name, 0) + 1
    return counts
