"""Two-year attack schedule generation.

This module decides *who gets attacked when*: daily attack volumes with
jitter and a mild growth trend, repeat-victimization (the telescope data set
shows ~5 events per target, the honeypot data ~2), country-level targeting
bias (the paper's Table 4 anomalies: Japan under-attacked relative to its
address space, Russia and France — via OVH — over-attacked), joint
direct+reflection attacks against the same victim, and scripted spike days
reproducing the hoster-targeting peaks of Figure 7.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from random import Random
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.attacks.actors import (
    ACTOR_BOOTER,
    ACTOR_BOTNET,
    ACTOR_SKILLED,
    ActorPopulation,
    ActorPopulationConfig,
)
from repro.attacks.attacker import GroundTruthAttack
from repro.attacks.direct import DirectAttackConfig, DirectAttackGenerator
from repro.attacks.reflection import (
    ReflectionAttackConfig,
    ReflectionAttackGenerator,
)
from repro.internet.hosting import HostingEcosystem
from repro.internet.topology import AS_KIND_ISP, InternetTopology
from repro.net.geo import GeoDatabase
from repro.net.packet import PROTO_TCP, PROTO_UDP

DAY = 86400.0

# Target categories.
CAT_WEB_SHARED = "web-shared"
CAT_WEB_SELF = "web-self"
CAT_EYEBALL = "eyeball"
CAT_MAIL = "mail"
CAT_DPS_INFRA = "dps-infra"


@dataclass(frozen=True)
class SpikeEvent:
    """A scripted attack wave against named hosting platforms.

    ``day_fraction`` positions the spike within the window so the same
    storyline scales to any simulated duration. The four defaults mirror the
    peaks the paper investigates in Section 5 (GoDaddy/WordPress,
    Squarespace/OVH/AWS-reseller, GoDaddy/Wix high-intensity, and the
    multi-hoster wave at the end of the window).
    """

    day_fraction: float
    hoster_names: Tuple[str, ...]
    n_attacks: int
    intensity_multiplier: float = 1.0
    joint: bool = False
    min_duration: float = 0.0
    label: str = ""


DEFAULT_SPIKES: Tuple[SpikeEvent, ...] = (
    SpikeEvent(0.016, ("GoDaddy", "Automattic"), 60, 1.5, joint=True,
               label="peak-1 GoDaddy/WordPress"),
    SpikeEvent(0.30, ("Squarespace", "OVH", "AWS reseller"), 45, 1.2,
               label="peak-2 Squarespace/OVH"),
    SpikeEvent(0.84, ("GoDaddy", "Wix", "Squarespace"), 70, 300.0, joint=True,
               min_duration=4.5 * 3600.0, label="peak-3 GoDaddy/Wix intense"),
    SpikeEvent(0.995, ("GoDaddy", "OVH", "Network Solutions", "EIG"), 55, 1.4,
               label="peak-4 multi-hoster"),
)


@dataclass(frozen=True)
class ScheduleConfig:
    """Volume, repetition and bias parameters of the schedule."""

    seed: int = 3
    n_days: int = 120
    direct_per_day: float = 40.0
    reflection_per_day: float = 27.0
    daily_jitter: float = 0.25
    growth: float = 0.35  # relative volume growth start -> end of window
    # Joint attacks: fraction of reflection attacks paired with a
    # simultaneous direct attack on the same victim.
    joint_fraction: float = 0.035
    # In a joint pair, the direct component is single-port more often and
    # biased toward 27015/UDP and HTTP (Section 4).
    joint_single_port: float = 0.771
    joint_udp_27015: float = 0.53
    # Fraction of direct attacks launched without source spoofing (botnets
    # revealing bot addresses). Invisible to both measurement
    # infrastructures — the coverage gap of Section 3.1.3.
    unspoofed_fraction: float = 0.12
    # Repeat victimization (drives events-per-target ratios).
    repeat_prob_direct: float = 0.80
    repeat_prob_reflection: float = 0.50
    cross_repeat_prob: float = 0.03  # reflection re-hits a telescope victim
    hot_pool_size: int = 4000
    # Fresh-target category mix.
    category_weights: Dict[str, float] = field(
        default_factory=lambda: {
            CAT_WEB_SHARED: 13.0,
            CAT_WEB_SELF: 29.0,
            CAT_EYEBALL: 47.0,
            CAT_MAIL: 3.0,
            # DPS scrubbing infrastructure is itself a popular target (the
            # paper found DOSarrest- and CenturyLink-routed IPs attacked);
            # this is also what pulls preexisting customers into the
            # "attack observed" branch of Figure 8.
            CAT_DPS_INFRA: 8.0,
        }
    )
    # Country acceptance multipliers (rejection sampling on fresh targets).
    country_bias: Dict[str, float] = field(
        default_factory=lambda: {"JP": 0.18, "RU": 1.9, "FR": 1.4, "GB": 1.3}
    )
    spikes: Tuple[SpikeEvent, ...] = DEFAULT_SPIKES


class TargetPools:
    """Candidate victim addresses, organized by category."""

    def __init__(
        self,
        web_shared: Sequence[Tuple[int, float]],
        web_self: Sequence[int],
        mail: Sequence[int],
        dps_infra: Sequence[int],
        topology: InternetTopology,
        named_hoster_ips: Dict[str, Sequence[int]],
    ) -> None:
        if not web_shared:
            raise ValueError("web_shared pool must not be empty")
        self.web_shared = list(web_shared)
        self.web_self = list(web_self)
        self.mail = list(mail)
        self.dps_infra = list(dps_infra)
        self.named_hoster_ips = {k: list(v) for k, v in named_hoster_ips.items()}
        self._topology = topology
        self._eyeball_ases = topology.ases_of_kind(AS_KIND_ISP)
        if not self._eyeball_ases:
            raise ValueError("topology has no ISP space for eyeball targets")
        # Space-weighted AS selection: eyeball victims are distributed like
        # address-space usage, which is what makes the per-country rankings
        # track space-usage statistics (paper Section 4).
        self._eyeball_weights = [a.address_count for a in self._eyeball_ases]
        self._shared_ips = [ip for ip, _ in self.web_shared]
        self._shared_weights = [w for _, w in self.web_shared]

    @classmethod
    def build(
        cls,
        topology: InternetTopology,
        ecosystem: HostingEcosystem,
        self_hosted_web_ips: Sequence[int],
        dps_infra_ips: Sequence[int] = (),
    ) -> "TargetPools":
        """Assemble pools from the generated Internet.

        Shared hosting IPs are weighted by their hoster's popularity divided
        by pool size, so attacks land on big platforms' addresses roughly in
        proportion to the Web sites they carry.
        """
        web_shared: List[Tuple[int, float]] = []
        mail: List[int] = []
        named: Dict[str, Sequence[int]] = {}
        for hoster in ecosystem.hosters:
            # Attacks concentrate harder than hosting does: customer
            # placement is Zipf (rank^-1) but attackers aim at the
            # prominent front-end addresses (rank^-2). The tail of each
            # pool therefore hosts sites that are rarely, if ever, attacked
            # — which is what leaves ~a third of the namespace unattacked
            # even over a two-year window (Figure 8's 64 %).
            weights = [w * w for w in hoster.ip_weights()]
            total = sum(weights) or 1.0
            web_shared.extend(
                (ip, hoster.popularity * weight / total)
                for ip, weight in zip(hoster.ips, weights)
            )
            mail.extend(hoster.mail_ips)
            named[hoster.name] = hoster.ips
        return cls(
            web_shared=web_shared,
            web_self=self_hosted_web_ips,
            mail=mail,
            dps_infra=dps_infra_ips,
            topology=topology,
            named_hoster_ips=named,
        )

    def draw(self, category: str, rng: Random) -> int:
        """Draw a target address from one category."""
        if category == CAT_WEB_SHARED:
            return rng.choices(self._shared_ips, weights=self._shared_weights, k=1)[0]
        if category == CAT_WEB_SELF and self.web_self:
            return rng.choice(self.web_self)
        if category == CAT_MAIL and self.mail:
            return rng.choice(self.mail)
        if category == CAT_DPS_INFRA and self.dps_infra:
            return rng.choice(self.dps_infra)
        autonomous_system = rng.choices(
            self._eyeball_ases, weights=self._eyeball_weights, k=1
        )[0]
        return autonomous_system.random_address(rng)


class AttackSchedule:
    """Generates the full ground-truth attack list for a scenario window."""

    def __init__(
        self,
        pools: TargetPools,
        geo: GeoDatabase,
        config: ScheduleConfig = ScheduleConfig(),
        direct_config: DirectAttackConfig = DirectAttackConfig(),
        reflection_config: ReflectionAttackConfig = ReflectionAttackConfig(),
        actors: Optional[ActorPopulation] = None,
    ) -> None:
        self.pools = pools
        self.config = config
        self.actors = actors if actors is not None else ActorPopulation.generate(
            ActorPopulationConfig(seed=config.seed ^ 0xAC70)
        )
        self._geo = geo
        self._rng = Random(config.seed)
        self._direct = DirectAttackGenerator(
            direct_config, Random(config.seed ^ 0xD1CE)
        )
        self._reflection = ReflectionAttackGenerator(
            reflection_config, Random(config.seed ^ 0x3EF1)
        )
        self._next_id = 1
        self._next_joint = 1
        self._recent_direct: Deque[int] = deque(maxlen=config.hot_pool_size)
        self._recent_reflection: Deque[int] = deque(maxlen=config.hot_pool_size)
        self._categories = list(config.category_weights)
        self._category_weights = [
            config.category_weights[c] for c in self._categories
        ]

    def generate(self) -> List[GroundTruthAttack]:
        """Generate all attacks for the window, sorted by start time."""
        attacks: List[GroundTruthAttack] = []
        spike_days = {
            min(self.config.n_days - 1, int(s.day_fraction * self.config.n_days)): s
            for s in self.config.spikes
        }
        for day in range(self.config.n_days):
            attacks.extend(self._generate_day(day))
            spike = spike_days.get(day)
            if spike is not None:
                attacks.extend(self._generate_spike(day, spike))
        attacks.sort(key=lambda a: a.start)
        return attacks

    # -- daily volume ------------------------------------------------------

    def _daily_volume(self, day: int, base: float) -> int:
        rng, cfg = self._rng, self.config
        trend = 1.0 + cfg.growth * (day / max(1, cfg.n_days - 1))
        jitter = rng.uniform(1.0 - cfg.daily_jitter, 1.0 + cfg.daily_jitter)
        lam = base * trend * jitter
        return _poisson(rng, lam)

    def _generate_day(self, day: int) -> List[GroundTruthAttack]:
        rng, cfg = self._rng, self.config
        attacks: List[GroundTruthAttack] = []
        n_reflection = self._daily_volume(day, cfg.reflection_per_day)
        n_direct = self._daily_volume(day, cfg.direct_per_day)

        for _ in range(n_reflection):
            target = self._pick_target(ATTACK_DIRECT_REPEAT_NO)
            start = day * DAY + rng.uniform(0.0, DAY)
            if rng.random() < cfg.joint_fraction:
                attacks.extend(self._generate_joint(target, start))
            else:
                attacks.append(self._make_reflection(target, start))

        for _ in range(n_direct):
            target = self._pick_target(ATTACK_DIRECT_REPEAT_YES)
            start = day * DAY + rng.uniform(0.0, DAY)
            attacks.append(self._make_direct(target, start))
        return attacks

    # -- target selection --------------------------------------------------

    def _pick_target(self, for_direct: bool) -> int:
        """Repeat an earlier victim or draw a fresh, country-biased one."""
        rng, cfg = self._rng, self.config
        if for_direct:
            if self._recent_direct and rng.random() < cfg.repeat_prob_direct:
                return rng.choice(self._recent_direct)
        else:
            if self._recent_reflection and rng.random() < cfg.repeat_prob_reflection:
                return rng.choice(self._recent_reflection)
            if self._recent_direct and rng.random() < cfg.cross_repeat_prob:
                return rng.choice(self._recent_direct)
        for _ in range(64):
            category = rng.choices(
                self._categories, weights=self._category_weights, k=1
            )[0]
            target = self.pools.draw(category, rng)
            bias = cfg.country_bias.get(self._geo.country(target), 1.0)
            if bias >= 1.0 or rng.random() < bias:
                return target
        return target  # bias rejection exhausted; accept the last draw

    # -- attack construction -----------------------------------------------

    def _make_direct(
        self,
        target: int,
        start: float,
        joint_id: Optional[int] = None,
        force_ports: Optional[Tuple[int, ...]] = None,
        force_proto: Optional[int] = None,
    ) -> GroundTruthAttack:
        # Who launches it decides how: skilled attackers run the joint
        # campaigns, botnets flood without spoofing, booters do the rest.
        if joint_id is not None:
            actor = self.actors.draw(ACTOR_SKILLED, self._rng)
        elif self._rng.random() < self.config.unspoofed_fraction:
            actor = self.actors.draw(ACTOR_BOTNET, self._rng)
        else:
            actor = self.actors.draw(ACTOR_BOOTER, self._rng)
        attack = self._direct.generate(
            attack_id=self._take_id(),
            target=target,
            start=start,
            attacker_id=actor.actor_id,
            joint_id=joint_id,
            force_ports=force_ports,
            force_proto=force_proto,
        )
        if actor.kind == ACTOR_BOTNET:
            attack = replace(attack, spoofed=False)
        self._recent_direct.append(target)
        return attack

    def _make_reflection(
        self,
        target: int,
        start: float,
        joint_id: Optional[int] = None,
        force_protocol: Optional[str] = None,
        min_duration: Optional[float] = None,
    ) -> GroundTruthAttack:
        kind = ACTOR_SKILLED if joint_id is not None else ACTOR_BOOTER
        actor = self.actors.draw(kind, self._rng)
        attack = self._reflection.generate(
            attack_id=self._take_id(),
            target=target,
            start=start,
            attacker_id=actor.actor_id,
            joint_id=joint_id,
            force_protocol=force_protocol,
            min_duration=min_duration,
        )
        self._recent_reflection.append(target)
        return attack

    def _generate_joint(
        self, target: int, start: float
    ) -> List[GroundTruthAttack]:
        """A simultaneous direct + reflection pair against one victim.

        Joint attackers favour NTP reflection, single-port floods, the
        27015/UDP game port and HTTP — the distribution shifts the paper
        reports for co-participating attacks.
        """
        rng, cfg = self._rng, self.config
        joint_id = self._next_joint
        self._next_joint += 1
        force_protocol = "NTP" if rng.random() < 0.47 else None
        reflection = self._make_reflection(
            target, start, joint_id=joint_id, force_protocol=force_protocol
        )
        force_ports: Optional[Tuple[int, ...]] = None
        force_proto: Optional[int] = None
        if rng.random() < cfg.joint_single_port:
            # Joint attackers overwhelmingly aim at one specific service.
            if rng.random() < cfg.joint_udp_27015:
                force_ports, force_proto = (27015,), PROTO_UDP
            elif rng.random() < 0.5023:
                force_ports, force_proto = (80,), PROTO_TCP
            else:
                force_ports = (rng.choice((443, 22, 25, 6667, 3306)),)
                force_proto = PROTO_TCP
        offset = rng.uniform(0.0, max(1.0, reflection.duration * 0.5))
        direct = self._make_direct(
            target,
            start + offset,
            joint_id=joint_id,
            force_ports=force_ports,
            force_proto=force_proto,
        )
        return [reflection, direct]

    def _generate_spike(
        self, day: int, spike: SpikeEvent
    ) -> List[GroundTruthAttack]:
        """A scripted wave against named hosters' address space."""
        rng = self._rng
        per_hoster = [
            self.pools.named_hoster_ips[name]
            for name in spike.hoster_names
            if self.pools.named_hoster_ips.get(name)
        ]
        if not per_hoster:
            return []
        attacks: List[GroundTruthAttack] = []
        for index in range(spike.n_attacks):
            # Round-robin across the named hosters so every platform in the
            # storyline is guaranteed to be hit.
            target = rng.choice(per_hoster[index % len(per_hoster)])
            start = day * DAY + rng.uniform(0.0, DAY * 0.8)
            if spike.joint and rng.random() < 0.6:
                wave = self._generate_joint(target, start)
            elif rng.random() < 0.5:
                wave = [
                    self._make_reflection(
                        target,
                        start,
                        force_protocol="NTP",
                        min_duration=spike.min_duration or None,
                    )
                ]
            else:
                wave = [
                    self._make_direct(
                        target, start, force_ports=(80,), force_proto=PROTO_TCP
                    )
                ]
            for attack in wave:
                boosted = replace(
                    attack, rate=attack.rate * spike.intensity_multiplier
                )
                if spike.min_duration and boosted.duration < spike.min_duration:
                    boosted = replace(boosted, duration=spike.min_duration)
                attacks.append(boosted)
        return attacks

    def _take_id(self) -> int:
        attack_id = self._next_id
        self._next_id += 1
        return attack_id


# Readability aliases for _pick_target's boolean parameter.
ATTACK_DIRECT_REPEAT_YES = True
ATTACK_DIRECT_REPEAT_NO = False


def _poisson(rng: Random, lam: float) -> int:
    """Knuth's Poisson sampler (adequate for the daily-volume magnitudes)."""
    if lam <= 0:
        return 0
    if lam > 500:
        # Normal approximation keeps the sampler O(1) for huge volumes.
        return max(0, int(rng.gauss(lam, lam**0.5) + 0.5))
    limit = 2.718281828459045 ** (-lam)
    k, product = 0, 1.0
    while True:
        product *= rng.random()
        if product <= limit:
            return k
        k += 1
