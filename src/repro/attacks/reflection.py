"""Generator for reflection & amplification attacks.

Distribution targets follow the honeypot data set in the paper: a reflector
protocol mix led by NTP (Table 6), log-normal durations with a ~4-minute
median and an 18-minute mean, and a log-normal per-reflector request rate
with median ~77 requests/s. Per-protocol intensity scale factors reproduce
Figure 4's spread (NTP reaching the highest request rates).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from random import Random
from typing import Dict, Optional

from repro.attacks.attacker import ATTACK_REFLECTION, GroundTruthAttack
from repro.net.packet import PROTO_UDP
from repro.net.protocols import REFLECTION_PROTOCOLS


@dataclass(frozen=True)
class ReflectionAttackConfig:
    """Distribution parameters for reflection attacks."""

    # Reflector protocol mix (Table 6 targets).
    protocol_weights: Dict[str, float] = field(
        default_factory=lambda: {
            "NTP": 40.08,
            "DNS": 26.17,
            "CharGen": 22.37,
            "SSDP": 8.38,
            "RIPv1": 2.27,
            "QOTD": 0.30,
            "MSSQL": 0.25,
            "TFTP": 0.18,
        }
    )
    # Duration: log-normal, median ~255 s, mean ~18 min.
    duration_mu: float = math.log(255.0)
    duration_sigma: float = 1.65
    min_duration: float = 15.0
    max_duration: float = 3 * 86400.0  # the honeypot caps at 24 h downstream
    # Per-reflector request rate: log-normal, median 77 req/s.
    rate_mu: float = math.log(77.0)
    rate_sigma: float = 1.8
    min_rate: float = 0.2
    max_rate: float = 5e5
    # Per-protocol intensity multipliers (log-space shifts); NTP attacks use
    # the largest amplifier fleets and reach the highest request rates.
    protocol_rate_shift: Dict[str, float] = field(
        default_factory=lambda: {
            "NTP": math.log(1.8),
            "DNS": 0.0,
            "CharGen": math.log(0.7),
            "SSDP": math.log(0.5),
            "RIPv1": math.log(0.4),
            "QOTD": math.log(0.3),
            "MSSQL": math.log(0.3),
            "TFTP": math.log(0.3),
        }
    )


class ReflectionAttackGenerator:
    """Draws reflection attacks from configured distributions."""

    def __init__(self, config: ReflectionAttackConfig, rng: Random) -> None:
        unknown = set(config.protocol_weights) - set(REFLECTION_PROTOCOLS)
        if unknown:
            raise ValueError(f"unknown reflector protocols: {sorted(unknown)}")
        self.config = config
        self._rng = rng
        self._protocols = list(config.protocol_weights)
        self._weights = [config.protocol_weights[p] for p in self._protocols]

    def generate(
        self,
        attack_id: int,
        target: int,
        start: float,
        attacker_id: int = 0,
        joint_id: Optional[int] = None,
        force_protocol: Optional[str] = None,
        min_duration: Optional[float] = None,
    ) -> GroundTruthAttack:
        """Draw one reflection attack against *target*."""
        rng, cfg = self._rng, self.config
        protocol = force_protocol or rng.choices(
            self._protocols, weights=self._weights, k=1
        )[0]
        duration = rng.lognormvariate(cfg.duration_mu, cfg.duration_sigma)
        duration = min(max(duration, cfg.min_duration), cfg.max_duration)
        if min_duration is not None:
            duration = max(duration, min_duration)
        shift = cfg.protocol_rate_shift.get(protocol, 0.0)
        rate = rng.lognormvariate(cfg.rate_mu + shift, cfg.rate_sigma)
        rate = min(max(rate, cfg.min_rate), cfg.max_rate)
        service_port = REFLECTION_PROTOCOLS[protocol].port
        return GroundTruthAttack(
            attack_id=attack_id,
            kind=ATTACK_REFLECTION,
            target=target,
            start=start,
            duration=duration,
            rate=rate,
            vector=f"reflection-{protocol.lower()}",
            ip_proto=PROTO_UDP,
            ports=(service_port,),
            reflector_protocol=protocol,
            attacker_id=attacker_id,
            joint_id=joint_id,
        )
