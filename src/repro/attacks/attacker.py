"""Ground-truth attack model.

A :class:`GroundTruthAttack` is what an attacker actually launched — not what
any vantage point observed. Direct attacks carry an IP protocol, a flooding
vector and a set of targeted ports; reflection attacks carry the abused
reflector protocol and the per-reflector request rate.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

ATTACK_DIRECT = "direct"
ATTACK_REFLECTION = "reflection"

# Direct-flood vectors and the backscatter they elicit.
VECTOR_SYN_FLOOD = "syn-flood"  # -> TCP SYN/ACK (or RST) backscatter
VECTOR_UDP_FLOOD = "udp-flood"  # -> ICMP dest-unreachable quoting UDP
VECTOR_ICMP_FLOOD = "icmp-flood"  # -> ICMP echo-reply backscatter
VECTOR_OTHER_FLOOD = "other-flood"  # -> ICMP proto-unreachable, other proto


@dataclass(frozen=True)
class GroundTruthAttack:
    """One attack as launched (simulation ground truth).

    ``rate`` is packets/second arriving at the victim for direct attacks and
    average requests/second sent to *each* reflector for reflection attacks.
    ``joint_id`` groups attacks launched together against the same victim
    (e.g. a SYN flood plus an NTP reflection attack).
    """

    attack_id: int
    kind: str
    target: int
    start: float
    duration: float
    rate: float
    vector: str
    ip_proto: int = 0
    ports: Tuple[int, ...] = ()
    reflector_protocol: Optional[str] = None
    attacker_id: int = 0
    joint_id: Optional[int] = None
    # Direct attacks only: whether source addresses are randomly spoofed.
    # Unspoofed floods (e.g. botnets revealing their bots' addresses) send
    # no backscatter into unused space — they are the blind spot the paper
    # notes in Section 3.1.3 (footnote 4).
    spoofed: bool = True

    def __post_init__(self) -> None:
        if self.kind not in (ATTACK_DIRECT, ATTACK_REFLECTION):
            raise ValueError(f"unknown attack kind: {self.kind!r}")
        if self.duration <= 0:
            raise ValueError("attack duration must be positive")
        if self.rate <= 0:
            raise ValueError("attack rate must be positive")
        if self.kind == ATTACK_REFLECTION and not self.reflector_protocol:
            raise ValueError("reflection attack requires a reflector protocol")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def overlaps(self, other: "GroundTruthAttack") -> bool:
        """Whether the two attacks are simultaneous (time intervals meet)."""
        return self.start <= other.end and other.start <= self.end

    def shifted(self, delta: float) -> "GroundTruthAttack":
        """Copy of this attack translated in time by *delta* seconds."""
        return replace(self, start=self.start + delta)
