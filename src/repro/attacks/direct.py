"""Generator for direct, randomly spoofed flooding attacks.

Parameter distributions target the *shapes* the telescope data set exhibits
in the paper: a protocol mix dominated by TCP, a 60/40 single-/multi-port
split, HTTP(S)-heavy single-port TCP targeting, log-normal durations with a
median around 7.5 minutes, and a log-normal victim packet rate whose median
corresponds to ~1 backscatter pps at a /8 telescope. Web-port attacks are
drawn more intense but shorter, reproducing the paper's Section 4 finding.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from random import Random
from typing import Dict, Tuple

from repro.attacks.attacker import (
    ATTACK_DIRECT,
    GroundTruthAttack,
    VECTOR_ICMP_FLOOD,
    VECTOR_OTHER_FLOOD,
    VECTOR_SYN_FLOOD,
    VECTOR_UDP_FLOOD,
)
from repro.net.packet import PROTO_ICMP, PROTO_IGMP, PROTO_TCP, PROTO_UDP


@dataclass(frozen=True)
class DirectAttackConfig:
    """Distribution parameters for direct attacks."""

    # IP protocol mix (Table 5 targets ~79.4/15.9/4.5/0.2).
    proto_weights: Dict[int, float] = field(
        default_factory=lambda: {
            PROTO_TCP: 79.4,
            PROTO_UDP: 15.9,
            PROTO_ICMP: 4.5,
            PROTO_IGMP: 0.2,
        }
    )
    single_port_fraction: float = 0.606  # Table 7
    # Single-port TCP service mix (Table 8a targets).
    tcp_port_weights: Dict[int, float] = field(
        default_factory=lambda: {
            80: 48.68,
            443: 20.68,
            3306: 1.12,
            53: 1.07,
            1723: 0.99,
        }
    )
    tcp_other_weight: float = 27.46
    # Single-port UDP service mix (Table 8b targets).
    udp_port_weights: Dict[int, float] = field(
        default_factory=lambda: {
            27015: 18.54,
            37547: 2.04,
            32124: 1.41,
            28183: 1.39,
            3306: 1.30,
        }
    )
    udp_other_weight: float = 75.32
    # Duration: log-normal, median exp(mu) seconds.
    duration_mu: float = math.log(454.0)
    duration_sigma: float = 1.9
    min_duration: float = 20.0
    max_duration: float = 5 * 86400.0
    # Victim packet rate: log-normal; median 256 pps = 1 pps at a /8.
    rate_mu: float = math.log(256.0)
    rate_sigma: float = 2.6
    min_rate: float = 16.0
    max_rate: float = 5e7
    # Web-port attacks: more intense, shorter (Section 4).
    web_rate_boost: float = math.log(2.5)
    web_duration_mu: float = math.log(240.0)
    web_duration_sigma: float = 1.1
    multi_port_max: int = 12


class DirectAttackGenerator:
    """Draws direct randomly spoofed attacks from configured distributions."""

    def __init__(self, config: DirectAttackConfig, rng: Random) -> None:
        self.config = config
        self._rng = rng
        self._protos = list(config.proto_weights)
        self._proto_weights = [config.proto_weights[p] for p in self._protos]

    def generate(
        self,
        attack_id: int,
        target: int,
        start: float,
        attacker_id: int = 0,
        joint_id: int = None,
        force_ports: Tuple[int, ...] = None,
        force_proto: int = None,
    ) -> GroundTruthAttack:
        """Draw one attack against *target* starting at *start* seconds."""
        rng = self._rng
        proto = force_proto if force_proto is not None else rng.choices(
            self._protos, weights=self._proto_weights, k=1
        )[0]
        if force_ports is not None:
            ports = force_ports
        else:
            ports = self._draw_ports(proto)
        vector = _vector_for_proto(proto)
        is_web = proto == PROTO_TCP and len(ports) == 1 and ports[0] in (80, 443)
        duration = self._draw_duration(is_web)
        rate = self._draw_rate(is_web)
        return GroundTruthAttack(
            attack_id=attack_id,
            kind=ATTACK_DIRECT,
            target=target,
            start=start,
            duration=duration,
            rate=rate,
            vector=vector,
            ip_proto=proto,
            ports=ports,
            attacker_id=attacker_id,
            joint_id=joint_id,
        )

    def _draw_ports(self, proto: int) -> Tuple[int, ...]:
        rng = self._rng
        if proto in (PROTO_ICMP, PROTO_IGMP):
            return ()
        if rng.random() < self.config.single_port_fraction:
            return (self._draw_single_port(proto),)
        n_ports = rng.randint(2, self.config.multi_port_max)
        ports = {rng.randrange(1, 65536) for _ in range(n_ports)}
        while len(ports) < 2:
            ports.add(rng.randrange(1, 65536))
        return tuple(sorted(ports))

    def _draw_single_port(self, proto: int) -> int:
        rng = self._rng
        if proto == PROTO_TCP:
            table, other = self.config.tcp_port_weights, self.config.tcp_other_weight
        else:
            table, other = self.config.udp_port_weights, self.config.udp_other_weight
        ports = list(table)
        weights = [table[p] for p in ports]
        pick = rng.uniform(0.0, sum(weights) + other)
        for port, weight in zip(ports, weights):
            if pick < weight:
                return port
            pick -= weight
        # "Other": spread over the remaining port range, skewed low for TCP
        # (registered services) and uniform for UDP (the paper's long tail).
        if proto == PROTO_TCP:
            return rng.choice(
                (22, 25, 8080, 21, 3389, 6667, 110, 143, 1433, 5222)
            ) if rng.random() < 0.4 else rng.randrange(1, 65536)
        return rng.randrange(1024, 65536)

    def _draw_duration(self, is_web: bool) -> float:
        rng, cfg = self._rng, self.config
        if is_web:
            raw = rng.lognormvariate(cfg.web_duration_mu, cfg.web_duration_sigma)
        else:
            raw = rng.lognormvariate(cfg.duration_mu, cfg.duration_sigma)
        return min(max(raw, cfg.min_duration), cfg.max_duration)

    def _draw_rate(self, is_web: bool) -> float:
        rng, cfg = self._rng, self.config
        mu = cfg.rate_mu + (cfg.web_rate_boost if is_web else 0.0)
        raw = rng.lognormvariate(mu, cfg.rate_sigma)
        return min(max(raw, cfg.min_rate), cfg.max_rate)


def _vector_for_proto(proto: int) -> str:
    if proto == PROTO_TCP:
        return VECTOR_SYN_FLOOD
    if proto == PROTO_UDP:
        return VECTOR_UDP_FLOOD
    if proto == PROTO_ICMP:
        return VECTOR_ICMP_FLOOD
    return VECTOR_OTHER_FLOOD
