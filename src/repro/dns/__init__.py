"""Active DNS measurement substitute (OpenINTEL).

Synthetic registries for `.com`, `.net` and `.org` with realistic hosting
concentration, a daily snapshot engine producing the resource records the
paper's analysis consumes (`www` A records, CNAME chains, NS and MX), and a
resolver that follows CNAME chains the way attribution in Section 5 does.
Domain hosting is a *timeline*: migrations to DDoS Protection Services
change the records a snapshot reports from the migration day onward.
"""

from repro.dns.records import (
    DomainTimeline,
    HostingState,
    ResourceRecord,
    RRTYPE_A,
    RRTYPE_CNAME,
    RRTYPE_MX,
    RRTYPE_NS,
)
from repro.dns.zone import Zone, ZoneConfig, ZoneGenerator
from repro.dns.openintel import OpenIntelDataset, OpenIntelPlatform
from repro.dns.resolver import resolve_www

__all__ = [
    "DomainTimeline",
    "HostingState",
    "ResourceRecord",
    "RRTYPE_A",
    "RRTYPE_CNAME",
    "RRTYPE_MX",
    "RRTYPE_NS",
    "Zone",
    "ZoneConfig",
    "ZoneGenerator",
    "OpenIntelDataset",
    "OpenIntelPlatform",
    "resolve_www",
]
