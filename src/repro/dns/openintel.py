"""The OpenINTEL measurement platform substitute.

OpenINTEL structurally queries every name in a zone once per day and stores
the responses. This module offers the same two views the paper's pipeline
uses:

* :meth:`OpenIntelPlatform.snapshot` — the raw daily crawl: every resource
  record for every `www` label on a given day (plus NS/MX), the shape a
  consumer of the real Parquet data would see;
* :meth:`OpenIntelPlatform.measure` — the compiled two-year data set with
  per-TLD statistics (Table 2) and the hosting intervals that feed the
  IP-to-Web-site index in :mod:`repro.core.webmap`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.dns.records import (
    DomainTimeline,
    HostingState,
    ResourceRecord,
    RRTYPE_A,
    RRTYPE_CNAME,
    RRTYPE_MX,
    RRTYPE_NS,
)
from repro.dns.zone import Zone
from repro.net.addressing import format_ipv4

# Average compressed bytes per stored data point (Table 2: 28.4 TiB for
# 1257.6 G data points ≈ 24.8 bytes each).
BYTES_PER_DATA_POINT = 24.8


@dataclass(frozen=True)
class ZoneStats:
    """Per-TLD measurement statistics (one row of Table 2)."""

    tld: str
    web_sites: int
    data_points: int

    @property
    def size_bytes(self) -> int:
        return int(self.data_points * BYTES_PER_DATA_POINT)


@dataclass
class OpenIntelDataset:
    """Compiled measurement output over the whole window."""

    n_days: int
    zone_stats: List[ZoneStats]
    # (www domain name, ip, start_day, end_day_exclusive) hosting segments.
    hosting_intervals: List[Tuple[str, int, int, int]]
    first_seen: Dict[str, int]
    total_web_sites: int = 0
    # (domain name, mx ip, start_day, end_day_exclusive) mail segments.
    mail_intervals: List[Tuple[str, int, int, int]] = field(
        default_factory=list
    )
    # (domain name, ns ip, start_day, end_day_exclusive) segments; only
    # present when the platform was given a name-server directory.
    ns_intervals: List[Tuple[str, int, int, int]] = field(
        default_factory=list
    )

    def __post_init__(self) -> None:
        if not self.total_web_sites:
            self.total_web_sites = sum(z.web_sites for z in self.zone_stats)

    @property
    def total_data_points(self) -> int:
        return sum(z.data_points for z in self.zone_stats)

    @property
    def total_size_bytes(self) -> int:
        return sum(z.size_bytes for z in self.zone_stats)


class OpenIntelPlatform:
    """Daily active DNS measurement over a set of zones."""

    def __init__(self, zones: Sequence[Zone], n_days: int) -> None:
        if n_days <= 0:
            raise ValueError("measurement window must cover at least one day")
        self.zones = list(zones)
        self.n_days = n_days

    def snapshot(self, day: int) -> Iterator[ResourceRecord]:
        """All records collected on *day* (the raw crawl view)."""
        if not 0 <= day < self.n_days:
            raise ValueError(f"day {day} outside measurement window")
        for zone in self.zones:
            for domain in zone.domains:
                state = domain.state_on(day)
                if state is None:
                    continue
                yield from records_for(domain, state)

    def domain_records(
        self, domain: DomainTimeline, day: int
    ) -> List[ResourceRecord]:
        """Records for one domain on one day (resolver/detection helper)."""
        state = domain.state_on(day)
        if state is None:
            return []
        return list(records_for(domain, state))

    def measure(self, ns_directory=None) -> OpenIntelDataset:
        """Compile the whole window into the analysis-ready data set.

        When a :class:`~repro.dns.nameservers.NameServerDirectory` is
        supplied, NS names are resolved into per-domain name-server hosting
        intervals (the Section 8 "attacks on the DNS itself" extension).
        """
        zone_stats: List[ZoneStats] = []
        intervals: List[Tuple[str, int, int, int]] = []
        mail: List[Tuple[str, int, int, int]] = []
        ns: List[Tuple[str, int, int, int]] = []
        first_seen: Dict[str, int] = {}
        for zone in self.zones:
            web_sites = 0
            data_points = 0
            for domain in zone.domains:
                days_alive = max(0, self.n_days - domain.registered_day)
                if days_alive <= 0:
                    continue
                data_points += days_alive * _records_per_day(domain)
                for start, end, mx_ip in domain.mail_intervals(self.n_days):
                    mail.append((domain.name, mx_ip, start, end))
                if ns_directory is not None:
                    for start, end, name in domain.ns_name_intervals(
                        self.n_days
                    ):
                        address = ns_directory.resolve(name)
                        if address is not None:
                            ns.append((domain.name, address, start, end))
                if not domain.has_www:
                    continue
                web_sites += 1
                first_seen[domain.www_name] = domain.registered_day
                for start, end, ip in domain.hosting_intervals(self.n_days):
                    intervals.append((domain.www_name, ip, start, end))
            zone_stats.append(ZoneStats(zone.tld, web_sites, data_points))
        return OpenIntelDataset(
            n_days=self.n_days,
            zone_stats=zone_stats,
            hosting_intervals=intervals,
            first_seen=first_seen,
            mail_intervals=mail,
            ns_intervals=ns,
        )


def records_for(
    domain: DomainTimeline, state: HostingState
) -> Iterator[ResourceRecord]:
    """Render one domain's records under one hosting state."""
    if domain.has_www:
        if state.cname:
            yield ResourceRecord(domain.www_name, RRTYPE_CNAME, state.cname)
            yield ResourceRecord(
                state.cname, RRTYPE_A, format_ipv4(state.ip), address=state.ip
            )
        else:
            yield ResourceRecord(
                domain.www_name, RRTYPE_A, format_ipv4(state.ip), address=state.ip
            )
    for ns in state.ns:
        yield ResourceRecord(domain.name, RRTYPE_NS, ns)
    if state.mx_ip is not None:
        mx_name = f"mail.{domain.name}"
        yield ResourceRecord(domain.name, RRTYPE_MX, mx_name)
        yield ResourceRecord(
            mx_name, RRTYPE_A, format_ipv4(state.mx_ip), address=state.mx_ip
        )


def _records_per_day(domain: DomainTimeline) -> int:
    """How many data points one daily crawl of *domain* yields."""
    state = domain.states()[0] if domain.states() else None
    if state is None:
        return 1
    count = len(state.ns)
    if domain.has_www:
        count += 2 if state.cname else 1
    if state.mx_ip is not None:
        count += 2
    return max(1, count)
