"""Resource records and per-domain hosting timelines.

A domain's DNS configuration is modelled as a piecewise-constant timeline of
:class:`HostingState` values: where the `www` label points (directly via an
A record or through a CNAME chain), which name servers serve the zone, and
where mail goes. Migrations to a DPS append a new state effective from the
migration day; the snapshot engine renders whichever state is in force.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

RRTYPE_A = "A"
RRTYPE_CNAME = "CNAME"
RRTYPE_NS = "NS"
RRTYPE_MX = "MX"


@dataclass(frozen=True)
class ResourceRecord:
    """One DNS data point, as an OpenINTEL snapshot row."""

    name: str
    rtype: str
    value: str
    address: Optional[int] = None  # set for A records

    def __post_init__(self) -> None:
        if self.rtype == RRTYPE_A and self.address is None:
            raise ValueError("A records must carry an integer address")


@dataclass(frozen=True)
class HostingState:
    """Where a domain's Web presence lives during one timeline segment.

    ``cname`` (when present) is the intermediate name the `www` label
    expands through — this is how cloud-hosted platforms (Wix in AWS) and
    CNAME-based DPS providers are identified even though the A record points
    into someone else's address space.
    """

    ip: int
    hoster: Optional[str] = None
    cname: Optional[str] = None
    ns: Tuple[str, ...] = ()
    mx_ip: Optional[int] = None
    dps_provider: Optional[str] = None


@dataclass
class DomainTimeline:
    """A registered domain and the history of its hosting configuration."""

    name: str
    tld: str
    registered_day: int
    has_www: bool
    _days: List[int] = field(default_factory=list)
    _states: List[HostingState] = field(default_factory=list)

    def __post_init__(self) -> None:
        if "." not in self.name or not self.name.endswith("." + self.tld):
            raise ValueError(f"domain {self.name!r} does not match tld {self.tld!r}")

    @property
    def www_name(self) -> str:
        return f"www.{self.name}"

    def set_state(self, day: int, state: HostingState) -> None:
        """Install *state* effective from *day* (inclusive).

        Appending at or before an existing change day replaces the segment,
        keeping the timeline strictly ordered.
        """
        index = bisect.bisect_left(self._days, day)
        if index < len(self._days) and self._days[index] == day:
            self._states[index] = state
        else:
            self._days.insert(index, day)
            self._states.insert(index, state)
        del self._days[index + 1 :]
        del self._states[index + 1 :]

    def state_on(self, day: int) -> Optional[HostingState]:
        """The hosting state in force on *day*; None before registration."""
        if day < self.registered_day or not self._days:
            return None
        index = bisect.bisect_right(self._days, day) - 1
        if index < 0:
            return None
        return self._states[index]

    def exists_on(self, day: int) -> bool:
        return day >= self.registered_day

    def ip_on(self, day: int) -> Optional[int]:
        state = self.state_on(day)
        return state.ip if state else None

    def change_days(self) -> Tuple[int, ...]:
        """Days on which the hosting state changes (ascending)."""
        return tuple(self._days)

    def states(self) -> Tuple[HostingState, ...]:
        return tuple(self._states)

    def hosting_intervals(self, n_days: int) -> List[Tuple[int, int, int]]:
        """(start_day, end_day_exclusive, ip) segments within [0, n_days).

        Only segments where the domain exists and has a Web presence are
        returned; this is the compiled form the IP-to-site index builds on.
        """
        if not self.has_www or not self._days:
            return []
        intervals: List[Tuple[int, int, int]] = []
        for index, start in enumerate(self._days):
            end = self._days[index + 1] if index + 1 < len(self._days) else n_days
            start = max(start, self.registered_day, 0)
            end = min(end, n_days)
            if start < end:
                intervals.append((start, end, self._states[index].ip))
        return intervals

    def mail_intervals(self, n_days: int) -> List[Tuple[int, int, int]]:
        """(start_day, end_day_exclusive, mx ip) segments within [0, n_days).

        Unlike :meth:`hosting_intervals`, mail presence does not require a
        `www` label — a domain can receive mail without serving a Web site.
        """
        if not self._days:
            return []
        intervals: List[Tuple[int, int, int]] = []
        for index, start in enumerate(self._days):
            state = self._states[index]
            if state.mx_ip is None:
                continue
            end = self._days[index + 1] if index + 1 < len(self._days) else n_days
            start = max(start, self.registered_day, 0)
            end = min(end, n_days)
            if start < end:
                intervals.append((start, end, state.mx_ip))
        return intervals

    def ns_name_intervals(self, n_days: int) -> List[Tuple[int, int, str]]:
        """(start_day, end_day_exclusive, ns name) segments within the window."""
        if not self._days:
            return []
        intervals: List[Tuple[int, int, str]] = []
        for index, start in enumerate(self._days):
            state = self._states[index]
            end = self._days[index + 1] if index + 1 < len(self._days) else n_days
            start = max(start, self.registered_day, 0)
            end = min(end, n_days)
            if start >= end:
                continue
            for ns_name in state.ns:
                intervals.append((start, end, ns_name))
        return intervals

    def first_dps_day(self, n_days: int) -> Optional[int]:
        """First day on which the domain is DPS-protected, if ever."""
        for day, state in zip(self._days, self._states):
            if state.dps_provider is not None and day < n_days:
                return max(day, self.registered_day)
        return None
