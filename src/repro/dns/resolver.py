"""Minimal resolver over snapshot records.

Follows CNAME chains from a `www` label to its A record the way the paper's
attribution does when identifying hosters (and cloud-resident platforms)
behind an address.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.dns.records import ResourceRecord, RRTYPE_A, RRTYPE_CNAME

MAX_CHAIN_LENGTH = 8


class ResolutionError(Exception):
    """The name could not be resolved from the given record set."""


def resolve_www(
    name: str, records: Iterable[ResourceRecord]
) -> Tuple[Optional[int], List[str]]:
    """Resolve *name* to an address, returning (address, cname_chain).

    Returns ``(None, chain)`` when the chain dead-ends (no A record), and
    raises :class:`ResolutionError` on loops or over-long chains — both of
    which indicate a malformed snapshot.
    """
    a_records: Dict[str, int] = {}
    cnames: Dict[str, str] = {}
    for record in records:
        if record.rtype == RRTYPE_A and record.address is not None:
            a_records[record.name] = record.address
        elif record.rtype == RRTYPE_CNAME:
            cnames[record.name] = record.value

    chain: List[str] = []
    current = name
    seen = {current}
    for _ in range(MAX_CHAIN_LENGTH):
        if current in a_records:
            return a_records[current], chain
        if current not in cnames:
            return None, chain
        current = cnames[current]
        chain.append(current)
        if current in seen:
            raise ResolutionError(f"CNAME loop at {current!r}")
        seen.add(current)
    raise ResolutionError(f"CNAME chain too long resolving {name!r}")
