"""Authoritative name-server directory.

The paper's future-work list (Section 8) proposes mapping targeted IP
addresses to authoritative name servers to study the effect of DoS attacks
on the DNS itself. Hosting states carry NS *names*; this directory assigns
each name a stable address inside its operator's network — hoster NS in the
hoster's AS, DPS NS on the provider's prefix, registrar NS in enterprise
space — so attacks on those addresses can be joined against the domains
they serve.
"""

from __future__ import annotations

from random import Random
from typing import Dict, Iterable, List, Optional, Sequence

from repro.dps.providers import DPSProvider
from repro.internet.hosting import HostingEcosystem
from repro.internet.topology import AS_KIND_ENTERPRISE, InternetTopology

#: NS names the zone generator assigns to self-hosted domains.
REGISTRAR_NS = ("ns1.registrar.example", "ns2.registrar.example")


class NameServerDirectory:
    """name server hostname -> address, with reverse lookup."""

    def __init__(self, mapping: Dict[str, int]) -> None:
        self._by_name = dict(mapping)
        self._by_address: Dict[int, List[str]] = {}
        for name, address in self._by_name.items():
            self._by_address.setdefault(address, []).append(name)

    def __len__(self) -> int:
        return len(self._by_name)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def resolve(self, name: str) -> Optional[int]:
        return self._by_name.get(name)

    def names_at(self, address: int) -> List[str]:
        return list(self._by_address.get(address, ()))

    def addresses(self) -> List[int]:
        """All distinct name-server addresses (attack-pool input)."""
        return sorted(self._by_address)

    def resolve_all(self, names: Iterable[str]) -> List[int]:
        """Addresses for the resolvable subset of *names*."""
        resolved = (self.resolve(name) for name in names)
        return [address for address in resolved if address is not None]

    @classmethod
    def build(
        cls,
        ecosystem: HostingEcosystem,
        providers: Sequence[DPSProvider],
        topology: InternetTopology,
        seed: int = 9,
    ) -> "NameServerDirectory":
        """Assign every known NS name an address in its operator's space."""
        rng = Random(seed)
        mapping: Dict[str, int] = {}

        for hoster in ecosystem.hosters:
            home = topology.as_by_asn(hoster.asn)
            for name in hoster.ns_names:
                if home is not None:
                    mapping[name] = home.random_address(rng)

        for provider in providers:
            for name in provider.protection_ns():
                mapping[name] = provider.prefix.random_address(rng)

        enterprise = topology.ases_of_kind(AS_KIND_ENTERPRISE)
        host_space = enterprise or topology.ases
        for name in REGISTRAR_NS:
            mapping[name] = rng.choice(host_space).random_address(rng)

        return cls(mapping)
