"""Zone generation: the synthetic `.com` / `.net` / `.org` registries.

Each generated domain receives a hosting placement from the hosting
ecosystem — a shared platform IP (with the platform's NS, and a
customer-specific CNAME when the platform itself lives in a cloud) or a
dedicated self-hosted address. The resulting per-TLD share and co-hosting
skew are what drive the Web-impact analysis of Section 5.

DPS state (preexisting customers, migrations) is deliberately *not* decided
here: the :mod:`repro.dps.migration_sim` behavioural model edits the
timelines this module produces, keeping DNS and protection concerns layered
the way the real data sets are.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import Dict, Iterator, List, Optional, Sequence

from repro.dns.records import DomainTimeline, HostingState
from repro.internet.hosting import HostingEcosystem

# Paper Table 2: 173.7 M / 21.6 M / 14.7 M Web sites -> shares.
DEFAULT_TLD_SHARES: Dict[str, float] = {"com": 0.827, "net": 0.103, "org": 0.070}


@dataclass(frozen=True)
class ZoneConfig:
    """Scale and composition of the synthetic namespace."""

    seed: int = 7
    n_domains: int = 8000
    n_days: int = 120
    tld_shares: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_TLD_SHARES)
    )
    www_fraction: float = 0.88  # domains with a Web presence
    # Fraction of domains registered during (not before) the window.
    registered_during_window: float = 0.12
    mx_fraction: float = 0.65


@dataclass
class Zone:
    """One TLD's registry."""

    tld: str
    domains: List[DomainTimeline] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.domains)

    def web_domains(self) -> Iterator[DomainTimeline]:
        """Domains with a `www` label (the paper's Web-site criterion)."""
        return (d for d in self.domains if d.has_www)


class ZoneGenerator:
    """Builds all zones on top of a hosting ecosystem."""

    def __init__(
        self, ecosystem: HostingEcosystem, config: ZoneConfig = ZoneConfig()
    ) -> None:
        if config.n_domains <= 0:
            raise ValueError("need at least one domain")
        total_share = sum(config.tld_shares.values())
        if not 0.99 <= total_share <= 1.01:
            raise ValueError("tld shares must sum to ~1")
        self.ecosystem = ecosystem
        self.config = config
        self._rng = Random(config.seed)
        self._self_hosted_ips: List[int] = []

    def generate(self) -> List[Zone]:
        """Generate every TLD's zone deterministically."""
        rng, cfg = self._rng, self.config
        zones = {tld: Zone(tld) for tld in cfg.tld_shares}
        tlds = list(cfg.tld_shares)
        tld_weights = [cfg.tld_shares[t] for t in tlds]
        for index in range(cfg.n_domains):
            tld = rng.choices(tlds, weights=tld_weights, k=1)[0]
            domain = self._generate_domain(index, tld)
            zones[tld].domains.append(domain)
        return [zones[t] for t in tlds]

    def self_hosted_web_ips(self) -> List[int]:
        """Dedicated Web-server addresses allocated so far (target pool)."""
        return list(self._self_hosted_ips)

    def _generate_domain(self, index: int, tld: str) -> DomainTimeline:
        rng, cfg = self._rng, self.config
        name = f"site-{index:06d}.{tld}"
        if rng.random() < cfg.registered_during_window:
            registered_day = rng.randrange(1, max(2, cfg.n_days))
        else:
            registered_day = 0
        has_www = rng.random() < cfg.www_fraction
        domain = DomainTimeline(
            name=name, tld=tld, registered_day=registered_day, has_www=has_www
        )
        domain.set_state(registered_day, self._initial_state(name, rng))
        return domain

    def _initial_state(self, name: str, rng: Random) -> HostingState:
        cfg = self.config
        hoster = self.ecosystem.choose_placement(rng)
        if hoster is None:
            ip = self.ecosystem.allocate_self_hosted_ip(rng)
            self._self_hosted_ips.append(ip)
            return HostingState(
                ip=ip,
                hoster=None,
                cname=None,
                ns=(f"ns1.registrar.example", f"ns2.registrar.example"),
                mx_ip=ip if rng.random() < cfg.mx_fraction else None,
            )
        label = name.split(".", 1)[0]
        cname = f"{label}{hoster.cname_suffix}" if hoster.cname_suffix else None
        mx_ip = None
        if hoster.mail_ips and rng.random() < cfg.mx_fraction:
            mx_ip = rng.choice(hoster.mail_ips)
        return HostingState(
            ip=hoster.pick_ip(rng),
            hoster=hoster.name,
            cname=cname,
            ns=hoster.ns_names,
            mx_ip=mx_ip,
        )


def domains_by_hoster(zones: Sequence[Zone]) -> Dict[Optional[str], List[DomainTimeline]]:
    """Group all domains by the hoster of their *initial* placement."""
    grouped: Dict[Optional[str], List[DomainTimeline]] = {}
    for zone in zones:
        for domain in zone.domains:
            state = domain.states()[0] if domain.states() else None
            key = state.hoster if state else None
            grouped.setdefault(key, []).append(domain)
    return grouped
