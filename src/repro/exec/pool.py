"""A worker pool that assumes its workers will misbehave.

``SupervisedPool`` runs tasks under a watchdog instead of trusting them:

* every task carries a **deadline**; a worker still running past it is
  killed (fork mode) or abandoned (thread mode) and the task reported as
  ``deadline`` instead of blocking the run forever;
* fork workers send a **heartbeat** the moment they start; a worker that
  never heartbeats within ``start_timeout`` is hung at spawn and killed;
* a worker that dies without delivering a result (``os._exit``, signal,
  OOM kill) is reported as ``crashed``, with its exit code;
* an exception inside the task is reported as ``error`` with the message
  — never re-raised across the process boundary.

Fork mode is the default where available (Linux/macOS ``fork``): the
child inherits the parent's memory, so closures over large pipeline
objects cost nothing to dispatch, and only the (small) result is pickled
back through a pipe. Thread mode is the portable fallback; hung threads
cannot be killed, only abandoned, which the outcome records honestly.
Serial mode runs tasks inline with no preemption — the reference
behaviour sharded executions are compared against.

The pool is safe to share between supervisor threads (one per pipeline
stage): a semaphore caps total in-flight workers across all callers.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.log import get_logger
from repro.obs.metrics import get_registry

MODE_AUTO = "auto"
MODE_FORK = "fork"
MODE_THREAD = "thread"
MODE_SERIAL = "serial"
ALL_MODES = (MODE_AUTO, MODE_FORK, MODE_THREAD, MODE_SERIAL)

STATUS_OK = "ok"
STATUS_ERROR = "error"  # task raised; message captured
STATUS_DEADLINE = "deadline"  # hung past its deadline; killed/abandoned
STATUS_CRASHED = "crashed"  # worker died without delivering a result


def resolve_mode(mode: str) -> str:
    """Resolve ``auto`` to the best supported mode on this platform."""
    if mode not in ALL_MODES:
        raise ValueError(f"unknown pool mode: {mode!r} (modes: {ALL_MODES})")
    if mode != MODE_AUTO:
        return mode
    if "fork" in multiprocessing.get_all_start_methods():
        return MODE_FORK
    return MODE_THREAD


@dataclass(frozen=True)
class ExecConfig:
    """How much supervised parallelism a pipeline run gets.

    The defaults describe the historical serial pipeline: one worker, one
    shard per stage, no deadlines. ``shards`` defaults to ``workers`` so
    asking for parallelism automatically shards the work to feed it.
    """

    workers: int = 1
    shards: Optional[int] = None
    mode: str = MODE_AUTO
    #: Per shard-task deadline in seconds (None: no watchdog kill).
    task_deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("need at least one worker")
        if self.shards is not None and self.shards < 1:
            raise ValueError("need at least one shard")
        if self.mode not in ALL_MODES:
            raise ValueError(
                f"unknown pool mode: {self.mode!r} (modes: {ALL_MODES})"
            )
        if self.task_deadline is not None and self.task_deadline <= 0:
            raise ValueError("task deadline must be positive")

    @property
    def n_shards(self) -> int:
        return self.shards if self.shards is not None else self.workers

    @property
    def parallel(self) -> bool:
        """Whether this config changes anything vs. the serial pipeline."""
        return self.workers > 1 or self.n_shards > 1 or (
            self.task_deadline is not None
        )


@dataclass(frozen=True)
class TaskSpec:
    """One unit of supervised work."""

    name: str
    fn: Callable[[], Any]
    deadline: Optional[float] = None


@dataclass
class TaskOutcome:
    """What became of one task."""

    name: str
    status: str
    value: Any = None
    error: Optional[str] = None
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


class _ForkWorker:
    """One forked child computing one task, reporting through a pipe."""

    def __init__(self, spec: TaskSpec) -> None:
        ctx = multiprocessing.get_context("fork")
        self.spec = spec
        self.recv_conn, send_conn = ctx.Pipe(duplex=False)
        self.process = ctx.Process(
            target=_fork_entry, args=(send_conn, spec.fn), daemon=True
        )
        self.started_at = time.monotonic()
        self.heartbeat_seen = False
        self.process.start()
        # The parent's copy of the child's send handle must close so that
        # a dead child reads as EOF instead of a silently open pipe.
        send_conn.close()

    def poll(self) -> Optional[TaskOutcome]:
        """Non-blocking check; an outcome means the task is finished."""
        while self.recv_conn.poll(0):
            try:
                kind, payload = self.recv_conn.recv()
            except (EOFError, OSError):
                break  # child died mid-send; fall through to liveness check
            if kind == "heartbeat":
                self.heartbeat_seen = True
                continue
            status = STATUS_OK if kind == "ok" else STATUS_ERROR
            return self._finish(status, value=payload if kind == "ok" else None,
                                error=None if kind == "ok" else payload)
        if not self.process.is_alive():
            return self._finish(
                STATUS_CRASHED,
                error=f"worker exited with code {self.process.exitcode} "
                      f"before delivering a result",
            )
        return None

    def expired(self, start_timeout: float) -> Optional[str]:
        """Why the watchdog should kill this worker now, if it should."""
        elapsed = time.monotonic() - self.started_at
        if self.spec.deadline is not None and elapsed > self.spec.deadline:
            return f"deadline ({self.spec.deadline:.1f}s) exceeded"
        if not self.heartbeat_seen and elapsed > start_timeout:
            return f"no heartbeat within {start_timeout:.1f}s of spawn"
        return None

    def kill(self, reason: str) -> TaskOutcome:
        self.process.kill()
        self.process.join(timeout=5.0)
        return self._finish(STATUS_DEADLINE, error=f"killed: {reason}")

    def _finish(self, status: str, value: Any = None,
                error: Optional[str] = None) -> TaskOutcome:
        elapsed = time.monotonic() - self.started_at
        self.recv_conn.close()
        if self.process.is_alive():
            # Result delivered but the child lingers; don't leak it.
            self.process.join(timeout=1.0)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=5.0)
        return TaskOutcome(
            self.spec.name, status, value=value, error=error, elapsed=elapsed
        )


def _fork_entry(conn, fn) -> None:
    """Child side: heartbeat, compute, report, exit."""
    try:
        conn.send(("heartbeat", None))
        result = fn()
        conn.send(("ok", result))
    except BaseException as exc:  # noqa: BLE001 - boundary must not leak
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass
        os._exit(0)


@dataclass
class _ThreadWorker:
    """One daemon thread computing one task (abandonable, not killable)."""

    spec: TaskSpec
    started_at: float = field(default_factory=time.monotonic)
    result: Dict[str, Any] = field(default_factory=dict)
    thread: Optional[threading.Thread] = None

    def start(self) -> "_ThreadWorker":
        def _run() -> None:
            try:
                self.result["outcome"] = (STATUS_OK, self.spec.fn(), None)
            except BaseException as exc:  # noqa: BLE001
                self.result["outcome"] = (
                    STATUS_ERROR, None, f"{type(exc).__name__}: {exc}"
                )

        self.thread = threading.Thread(
            target=_run, name=f"repro-exec-{self.spec.name}", daemon=True
        )
        self.thread.start()
        return self

    def poll(self) -> Optional[TaskOutcome]:
        if "outcome" in self.result:
            status, value, error = self.result["outcome"]
            return TaskOutcome(
                self.spec.name, status, value=value, error=error,
                elapsed=time.monotonic() - self.started_at,
            )
        return None

    def expired(self, start_timeout: float) -> Optional[str]:
        elapsed = time.monotonic() - self.started_at
        if self.spec.deadline is not None and elapsed > self.spec.deadline:
            return f"deadline ({self.spec.deadline:.1f}s) exceeded"
        return None

    def kill(self, reason: str) -> TaskOutcome:
        # Threads cannot be killed; the daemon thread is abandoned and its
        # eventual result (if any) discarded. The outcome says so.
        return TaskOutcome(
            self.spec.name,
            STATUS_DEADLINE,
            error=f"abandoned (threads cannot be killed): {reason}",
            elapsed=time.monotonic() - self.started_at,
        )


class SupervisedPool:
    """Deadline-enforcing worker pool shared by the stage supervisors."""

    def __init__(
        self,
        max_workers: int = 1,
        mode: str = MODE_AUTO,
        poll_interval: float = 0.01,
        start_timeout: float = 30.0,
        metrics: Optional[Any] = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError("need at least one worker")
        self.max_workers = max_workers
        self.mode = resolve_mode(mode)
        self.poll_interval = poll_interval
        self.start_timeout = start_timeout
        # Caps in-flight workers across concurrent run() callers.
        self._slots = threading.Semaphore(max_workers)
        # Forking while another supervisor thread forks is safe but
        # serializing spawns keeps the child's inherited state coherent.
        self._spawn_lock = threading.Lock()
        self._log = get_logger("exec")
        registry = metrics if metrics is not None else get_registry()
        self._m_queued = registry.counter(
            "exec_tasks_queued_total", "tasks submitted to the pool"
        )
        self._m_started = registry.counter(
            "exec_tasks_started_total", "tasks that began executing"
        )
        self._m_outcomes = registry.counter(
            "exec_task_outcomes_total",
            "finished tasks by status",
            ("status",),
        )
        self._m_killed = registry.counter(
            "exec_workers_killed_total",
            "workers killed/abandoned by the watchdog",
        )
        self._m_heartbeats = registry.counter(
            "exec_worker_heartbeats_total",
            "first heartbeats received from forked workers",
        )
        self._m_inflight = registry.gauge(
            "exec_inflight_workers", "workers currently running"
        )
        self._m_task_seconds = registry.histogram(
            "exec_task_seconds", "task wall time by status", ("status",)
        )

    @classmethod
    def from_config(
        cls, config: ExecConfig, metrics: Optional[Any] = None
    ) -> "SupervisedPool":
        return cls(
            max_workers=config.workers, mode=config.mode, metrics=metrics
        )

    def run(self, tasks: Sequence[TaskSpec]) -> List[TaskOutcome]:
        """Run tasks under supervision; outcomes in task order."""
        self._m_queued.inc(len(tasks))
        if self.mode == MODE_SERIAL:
            return [self._run_inline(spec) for spec in tasks]
        outcomes: Dict[int, TaskOutcome] = {}
        pending = list(enumerate(tasks))
        active: Dict[int, Any] = {}
        try:
            while pending or active:
                while pending and self._slots.acquire(blocking=not active):
                    index, spec = pending.pop(0)
                    active[index] = self._spawn(spec)
                    self._m_started.inc()
                    self._m_inflight.inc()
                finished = []
                for index, worker in active.items():
                    outcome = worker.poll()
                    if (
                        getattr(worker, "heartbeat_seen", False)
                        and not getattr(worker, "_hb_counted", False)
                    ):
                        worker._hb_counted = True
                        self._m_heartbeats.inc()
                    if outcome is None:
                        reason = worker.expired(self.start_timeout)
                        if reason is not None:
                            outcome = worker.kill(reason)
                            self._m_killed.inc()
                            self._log.warning(
                                "hung worker killed",
                                task=worker.spec.name,
                                reason=reason,
                            )
                    if outcome is not None:
                        finished.append(index)
                        outcomes[index] = outcome
                        self._slots.release()
                        self._m_inflight.dec()
                        self._record_outcome(outcome)
                        if not outcome.ok:
                            self._log.warning(
                                "task failed",
                                task=outcome.name,
                                status=outcome.status,
                                error=outcome.error,
                            )
                for index in finished:
                    del active[index]
                if active and not finished:
                    time.sleep(self.poll_interval)
        finally:
            for worker in active.values():  # unwind on error paths only
                worker.kill("pool shutting down")
                self._slots.release()
                self._m_inflight.dec()
                self._m_killed.inc()
        return [outcomes[index] for index in range(len(tasks))]

    def _record_outcome(self, outcome: TaskOutcome) -> None:
        self._m_outcomes.inc(status=outcome.status)
        self._m_task_seconds.observe(outcome.elapsed, status=outcome.status)

    def _spawn(self, spec: TaskSpec):
        with self._spawn_lock:
            if self.mode == MODE_FORK:
                return _ForkWorker(spec)
            return _ThreadWorker(spec).start()

    def _run_inline(self, spec: TaskSpec) -> TaskOutcome:
        start = time.monotonic()
        self._m_started.inc()
        try:
            value = spec.fn()
        except KeyboardInterrupt:
            raise
        except BaseException as exc:  # noqa: BLE001
            outcome = TaskOutcome(
                spec.name,
                STATUS_ERROR,
                error=f"{type(exc).__name__}: {exc}",
                elapsed=time.monotonic() - start,
            )
            self._record_outcome(outcome)
            return outcome
        outcome = TaskOutcome(
            spec.name, STATUS_OK, value=value,
            elapsed=time.monotonic() - start,
        )
        self._record_outcome(outcome)
        return outcome


__all__ = [
    "ALL_MODES",
    "ExecConfig",
    "MODE_AUTO",
    "MODE_FORK",
    "MODE_SERIAL",
    "MODE_THREAD",
    "STATUS_CRASHED",
    "STATUS_DEADLINE",
    "STATUS_ERROR",
    "STATUS_OK",
    "SupervisedPool",
    "TaskOutcome",
    "TaskSpec",
    "resolve_mode",
]
