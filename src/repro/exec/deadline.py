"""Whole-run deadline: abort cleanly instead of running forever.

``RunDeadline`` is checked at stage and shard boundaries by the pipeline
runner. When it expires the runner raises :class:`RunDeadlineExceeded`,
which the CLI turns into a *clean* abort: checkpoints already persisted
stay on disk, the run directory stays resumable, and the process exits
with a dedicated code (124, after the ``timeout(1)`` convention) that is
distinct from a crash.

The clock is injectable so tests can drive expiry without sleeping.
"""

from __future__ import annotations

import time
from typing import Callable, Optional


class RunDeadlineExceeded(RuntimeError):
    """The run-level deadline passed; the run aborted at a safe boundary."""

    def __init__(self, message: str, completed_stage: Optional[str] = None):
        super().__init__(message)
        self.completed_stage = completed_stage


class RunDeadline:
    """A monotonic countdown for one pipeline run."""

    def __init__(
        self,
        seconds: Optional[float],
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if seconds is not None and seconds <= 0:
            raise ValueError("deadline must be positive")
        self.seconds = seconds
        self._clock = clock
        self._started_at = clock()

    @property
    def active(self) -> bool:
        return self.seconds is not None

    def elapsed(self) -> float:
        return self._clock() - self._started_at

    def remaining(self) -> Optional[float]:
        """Seconds left, or ``None`` when no deadline is set."""
        if self.seconds is None:
            return None
        return self.seconds - self.elapsed()

    def expired(self) -> bool:
        remaining = self.remaining()
        return remaining is not None and remaining <= 0

    def check(self, where: str) -> None:
        """Raise :class:`RunDeadlineExceeded` if the deadline has passed.

        ``where`` names the boundary being crossed (e.g. the stage about
        to start) so the abort message says how far the run got.
        """
        if self.expired():
            raise RunDeadlineExceeded(
                f"run deadline of {self.seconds:.1f}s exceeded "
                f"after {self.elapsed():.1f}s (at {where}); "
                f"run directory is resumable"
            )


__all__ = ["RunDeadline", "RunDeadlineExceeded"]
