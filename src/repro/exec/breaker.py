"""Per-feed circuit breakers: stop hammering a feed that keeps failing.

Retry-with-backoff (PR 1) is the right reflex for a transient fault and
the wrong one for a persistent outage: every retry of a down feed burns
a full attempt's wall time, and with deadlines attached (this PR) that
means paying the whole deadline per retry. A :class:`CircuitBreaker`
caps the damage with the classic three states:

* **closed** — healthy; failures are counted;
* **open** — ``failure_threshold`` consecutive failures tripped it;
  attempts are refused outright until ``cooldown`` seconds pass, at
  which point the breaker moves to half-open;
* **half-open** — exactly one probe attempt is allowed through; success
  closes the breaker (and resets the failure count), failure re-opens it
  for another cooldown.

The clock is injectable so state transitions are unit-testable without
sleeping, and every transition is recorded without wall-clock content so
a :class:`~repro.pipeline.quality.DataQualityReport` carrying breaker
history renders deterministically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.log import get_logger
from repro.obs.metrics import get_registry

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"

#: Numeric encoding of breaker states for the ``breaker_state`` gauge.
BREAKER_STATE_CODES = {
    BREAKER_CLOSED: 0,
    BREAKER_OPEN: 1,
    BREAKER_HALF_OPEN: 2,
}


@dataclass(frozen=True)
class BreakerTransition:
    """One recorded state change (deterministic: no timestamps)."""

    from_state: str
    to_state: str
    reason: str

    def to_dict(self) -> dict:
        return {
            "from_state": self.from_state,
            "to_state": self.to_state,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BreakerTransition":
        return cls(
            from_state=data["from_state"],
            to_state=data["to_state"],
            reason=data["reason"],
        )


@dataclass(frozen=True)
class BreakerReport:
    """Summary of one breaker's life over a run, for the quality report."""

    name: str
    state: str
    failures_seen: int
    refusals: int
    transitions: Tuple[BreakerTransition, ...] = ()

    def describe(self) -> str:
        path = " -> ".join(
            [BREAKER_CLOSED] + [t.to_state for t in self.transitions]
        )
        return (
            f"{self.name}: {self.state} ({self.failures_seen} failure(s), "
            f"{self.refusals} refused attempt(s); {path})"
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "state": self.state,
            "failures_seen": self.failures_seen,
            "refusals": self.refusals,
            "transitions": [t.to_dict() for t in self.transitions],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BreakerReport":
        return cls(
            name=data["name"],
            state=data["state"],
            failures_seen=data["failures_seen"],
            refusals=data["refusals"],
            transitions=tuple(
                BreakerTransition.from_dict(t)
                for t in data.get("transitions", ())
            ),
        )


class CircuitBreaker:
    """Closed → open → half-open breaker with an injectable clock."""

    def __init__(
        self,
        name: str,
        failure_threshold: int = 2,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        metrics: Optional[object] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure threshold must be at least 1")
        if cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        self.name = name
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock
        self._state = BREAKER_CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self.failures_seen = 0
        self.refusals = 0
        self.transitions: List[BreakerTransition] = []
        self._log = get_logger("exec.breaker")
        registry = metrics if metrics is not None else get_registry()
        self._m_state = registry.gauge(
            "breaker_state",
            "breaker state (0 closed, 1 open, 2 half-open)",
            ("breaker",),
        )
        self._m_transitions = registry.counter(
            "breaker_transitions_total",
            "breaker state changes",
            ("breaker", "to_state"),
        )
        self._m_failures = registry.counter(
            "breaker_failures_total",
            "failures recorded against the breaker",
            ("breaker",),
        )
        self._m_refusals = registry.counter(
            "breaker_refusals_total",
            "attempts refused while open/half-open",
            ("breaker",),
        )
        self._m_state.set(BREAKER_STATE_CODES[self._state], breaker=name)

    @property
    def state(self) -> str:
        return self._state

    def allow(self) -> bool:
        """Whether the caller may attempt the protected operation now.

        An open breaker whose cooldown has elapsed transitions to
        half-open and lets exactly this one probe through.
        """
        if self._state == BREAKER_CLOSED:
            return True
        if self._state == BREAKER_OPEN:
            if self._clock() - self._opened_at >= self.cooldown:
                self._transition(BREAKER_HALF_OPEN, "cooldown elapsed")
                return True
            self.refusals += 1
            self._m_refusals.inc(breaker=self.name)
            return False
        # Half-open: the single probe is in flight; further attempts wait.
        self.refusals += 1
        self._m_refusals.inc(breaker=self.name)
        return False

    def record_success(self) -> None:
        self._consecutive_failures = 0
        if self._state != BREAKER_CLOSED:
            self._transition(BREAKER_CLOSED, "probe succeeded")

    def record_failure(self, reason: str = "") -> None:
        self.failures_seen += 1
        self._consecutive_failures += 1
        self._m_failures.inc(breaker=self.name)
        if self._state == BREAKER_HALF_OPEN:
            self._reopen(f"probe failed{': ' + reason if reason else ''}")
        elif (
            self._state == BREAKER_CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._reopen(
                f"{self._consecutive_failures} consecutive failure(s)"
                + (f": {reason}" if reason else "")
            )

    def _reopen(self, reason: str) -> None:
        self._opened_at = self._clock()
        self._transition(BREAKER_OPEN, reason)

    def _transition(self, to_state: str, reason: str) -> None:
        self.transitions.append(
            BreakerTransition(self._state, to_state, reason)
        )
        self._m_transitions.inc(breaker=self.name, to_state=to_state)
        self._m_state.set(BREAKER_STATE_CODES[to_state], breaker=self.name)
        level = self._log.info if to_state == BREAKER_CLOSED else self._log.warning
        level(
            "circuit breaker transition",
            breaker=self.name,
            from_state=self._state,
            to_state=to_state,
            reason=reason,
        )
        self._state = to_state

    def report(self) -> BreakerReport:
        return BreakerReport(
            name=self.name,
            state=self._state,
            failures_seen=self.failures_seen,
            refusals=self.refusals,
            transitions=tuple(self.transitions),
        )


__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "BREAKER_STATE_CODES",
    "BreakerReport",
    "BreakerTransition",
    "CircuitBreaker",
]
