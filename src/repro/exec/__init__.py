"""Supervised parallel execution: worker pools, breakers, deadlines, shards.

The pipeline's three observation stages (telescope, honeypot, DNS
measurement) are mutually independent, and parts of each stage are
internally shardable, so the natural execution model is a supervised
fan-out — which is also exactly the shape of workload that hangs or dies
partway when one feed misbehaves. This package provides the supervision:

* :mod:`repro.exec.pool` — a worker pool (forked processes where the
  platform allows, threads otherwise) with per-task deadlines and a
  heartbeat watchdog that detects and kills hung workers;
* :mod:`repro.exec.breaker` — per-feed circuit breakers (closed → open →
  half-open) that stop retrying a persistently failing feed;
* :mod:`repro.exec.shard` — deterministic shard planning and the
  checkpoint naming that lets a sharded stage resume mid-stage;
* :mod:`repro.exec.deadline` — a whole-run deadline that aborts cleanly,
  leaving a resumable run directory.

Everything here is policy-free about *what* runs: stage-specific shard
functions and their byte-identical merges live with the stages in
:mod:`repro.pipeline.simulation`.
"""

from repro.exec.breaker import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    BreakerReport,
    BreakerTransition,
    CircuitBreaker,
)
from repro.exec.deadline import RunDeadline, RunDeadlineExceeded
from repro.exec.pool import (
    ExecConfig,
    MODE_AUTO,
    MODE_FORK,
    MODE_SERIAL,
    MODE_THREAD,
    STATUS_CRASHED,
    STATUS_DEADLINE,
    STATUS_ERROR,
    STATUS_OK,
    SupervisedPool,
    TaskOutcome,
    TaskSpec,
)
from repro.exec.shard import ShardPlan, shard_checkpoint_name, split_even

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "BreakerReport",
    "BreakerTransition",
    "CircuitBreaker",
    "ExecConfig",
    "MODE_AUTO",
    "MODE_FORK",
    "MODE_SERIAL",
    "MODE_THREAD",
    "RunDeadline",
    "RunDeadlineExceeded",
    "STATUS_CRASHED",
    "STATUS_DEADLINE",
    "STATUS_ERROR",
    "STATUS_OK",
    "ShardPlan",
    "SupervisedPool",
    "TaskOutcome",
    "TaskSpec",
    "shard_checkpoint_name",
    "split_even",
]
