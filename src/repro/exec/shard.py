"""Deterministic shard planning and per-shard checkpoint naming.

A stage that shards must come back together byte-identically, so shard
boundaries are pure functions of (work size, shard count) — never of
worker timing. :func:`split_even` produces the canonical contiguous
chunking; stages that partition by key (e.g. by victim address) instead
use ``key % n_shards`` directly and only need :class:`ShardPlan` for the
count and the checkpoint names.

Per-shard checkpoints are ordinary :mod:`repro.store` checkpoints under
a ``{stage}.shard{i}of{n}`` name. The shard count is baked into the name
on purpose: a resume with a different ``--shards`` must not reuse
partial results computed under a different partition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple, TypeVar

T = TypeVar("T")

SHARD_SEP = ".shard"


def shard_checkpoint_name(stage: str, index: int, n_shards: int) -> str:
    """Checkpoint name for shard ``index`` of ``n_shards`` of ``stage``."""
    if not 0 <= index < n_shards:
        raise ValueError(f"shard index {index} out of range for {n_shards}")
    return f"{stage}{SHARD_SEP}{index}of{n_shards}"


def is_shard_checkpoint(name: str) -> bool:
    return SHARD_SEP in name


def split_even(items: Sequence[T], n_shards: int) -> List[Sequence[T]]:
    """Split into ``n_shards`` contiguous chunks, sizes differing by ≤ 1.

    Deterministic in (len(items), n_shards); empty chunks are kept so
    shard indices stay aligned with the plan even when there is less
    work than shards.
    """
    if n_shards < 1:
        raise ValueError("need at least one shard")
    base, extra = divmod(len(items), n_shards)
    chunks: List[Sequence[T]] = []
    start = 0
    for index in range(n_shards):
        size = base + (1 if index < extra else 0)
        chunks.append(items[start:start + size])
        start += size
    return chunks


@dataclass(frozen=True)
class ShardPlan:
    """The sharding of one stage: how many pieces, and what they're called."""

    stage: str
    n_shards: int

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError("need at least one shard")

    @property
    def sharded(self) -> bool:
        return self.n_shards > 1

    def checkpoint_names(self) -> Tuple[str, ...]:
        return tuple(
            shard_checkpoint_name(self.stage, i, self.n_shards)
            for i in range(self.n_shards)
        )

    def task_name(self, index: int) -> str:
        return f"{self.stage}[{index}/{self.n_shards}]"


__all__ = [
    "ShardPlan",
    "is_shard_checkpoint",
    "shard_checkpoint_name",
    "split_even",
]
