"""Signal-driven clean abort: Ctrl-C without a corrupted run directory.

Python's default SIGINT behavior raises :class:`KeyboardInterrupt` at an
arbitrary bytecode boundary — possibly halfway through a stage, between
a checkpoint payload write and its manifest. The atomic-write layer
means that can never corrupt a file, but it *can* abandon work the stage
had nearly finished and it exits through an exception traceback rather
than a deliberate path.

:class:`InterruptGuard` converts the first SIGINT/SIGTERM into a flag
the pipeline polls at the same safe boundaries as the run deadline:
the in-progress stage either finalizes its checkpoint or is abandoned
whole, the run directory stays resumable, and the process exits with
the shell convention code ``128 + signum`` (130 for SIGINT, 143 for
SIGTERM) — distinct from a deadline abort (124) and a crash drill
(137). A *second* signal restores the default disposition and re-raises
immediately, so a genuinely stuck run can still be killed from the
keyboard.
"""

from __future__ import annotations

import os
import signal
import threading
from typing import Optional, Tuple

from repro.log import get_logger

log = get_logger("exec.interrupt")

#: Shell convention: a process terminated by signal N exits 128 + N.
SIGNAL_EXIT_BASE = 128


class RunInterrupted(RuntimeError):
    """The run stopped at a safe boundary because a signal arrived."""

    def __init__(self, message: str, signum: int) -> None:
        super().__init__(message)
        self.signum = signum

    @property
    def exit_code(self) -> int:
        return SIGNAL_EXIT_BASE + self.signum


class InterruptGuard:
    """Deferred signal handling, checked at stage boundaries.

    Inactive until :meth:`install` registers the handlers, so library
    code can unconditionally call :meth:`check` on a default-constructed
    guard (it is a no-op). Thread-safe: signals land in the main thread,
    checks may run in stage-supervision threads.
    """

    def __init__(
        self, signals: Tuple[int, ...] = (signal.SIGINT, signal.SIGTERM)
    ) -> None:
        self.signals = signals
        self._received: Optional[int] = None
        self._previous: dict = {}
        self._installed = False
        self._lock = threading.Lock()

    def install(self) -> "InterruptGuard":
        """Register handlers (main thread only, like any signal.signal)."""
        for signum in self.signals:
            self._previous[signum] = signal.signal(signum, self._handle)
        self._installed = True
        return self

    def restore(self) -> None:
        """Put back whatever dispositions install() displaced."""
        if not self._installed:
            return
        for signum, previous in self._previous.items():
            signal.signal(signum, previous)
        self._previous.clear()
        self._installed = False

    def _handle(self, signum, frame) -> None:
        with self._lock:
            first = self._received is None
            if first:
                self._received = signum
        if first:
            log.warning(
                "interrupt received; stopping at the next stage boundary "
                "(signal again to stop immediately)",
                signal=signum,
            )
            return
        # Second signal: the user insists. Restore the default disposition
        # and re-deliver so the process dies the ordinary way.
        signal.signal(signum, self._previous.get(signum, signal.SIG_DFL))
        os.kill(os.getpid(), signum)

    def trigger(self, signum: int = signal.SIGINT) -> None:
        """Set the flag without a real signal (tests)."""
        with self._lock:
            if self._received is None:
                self._received = signum

    @property
    def triggered(self) -> Optional[int]:
        with self._lock:
            return self._received

    def check(self, where: str) -> None:
        """Raise :class:`RunInterrupted` if a signal has arrived."""
        signum = self.triggered
        if signum is not None:
            raise RunInterrupted(
                f"interrupted by signal {signum} (at {where}); "
                f"run directory is resumable",
                signum=signum,
            )


__all__ = [
    "InterruptGuard",
    "RunInterrupted",
    "SIGNAL_EXIT_BASE",
]
