"""Accuracy harness: sketch tier vs exact reference on seeded workloads.

Replays one scenario's captures through both the exact (columnar) and
sketch detection tiers and reports per-quantity error distributions:

* **count relative error** — per-victim backscatter packets (telescope)
  and per-(victim, protocol) requests (honeypot), sketch estimate vs
  exact column sums, over the exact top-N keys;
* **cardinality error** — HyperLogLog distinct-victim estimate vs the
  exact distinct count;
* **heavy-hitter precision/recall** — sketch top-K key set vs exact
  top-K, plus a :class:`~repro.sketch.spacesaving.SpaceSaving` pass over
  /24 victim prefixes and victim ASes;
* **event-level recall/precision** — victims (telescope) and
  (victim, protocol) pairs (honeypot) surfaced by sketch events vs the
  exact tier's events.

Run as a module for the JSON report and CI gates::

    PYTHONPATH=src python -m repro.sketch.accuracy --preset small \\
        --seed 42 --out accuracy.json \\
        --min-recall 0.95 --max-count-error 0.05

Exit code 1 when a gate fails, so CI can assert the ISSUE thresholds
(heavy-hitter recall >= 0.95, count relative error <= 5%) directly.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Sequence, Tuple

from repro.honeypot.detection import (
    detect_columns as detect_honeypot_columns,
    detect_sketch as detect_honeypot_sketch,
)
from repro.pipeline.config import ScenarioConfig
from repro.pipeline.simulation import (
    build_internet,
    honeypot_capture,
    schedule_attacks,
    telescope_capture,
)
from repro.sketch.spacesaving import SpaceSaving
from repro.telescope.rsdos import (
    detect_columns as detect_telescope_columns,
    detect_sketch as detect_telescope_sketch,
)

PRESETS = {
    "small": ScenarioConfig.small,
    "default": ScenarioConfig.default,
    "paper": ScenarioConfig.paper,
}


def _relative_errors(
    exact: Dict[int, int],
    estimate,
    top_n: int,
) -> Dict[str, float]:
    """Error stats for the exact top-``top_n`` keys (largest true counts)."""
    ranked = sorted(exact.items(), key=lambda kv: (-kv[1], kv[0]))[:top_n]
    errors = [
        abs(estimate(key) - true) / true for key, true in ranked if true > 0
    ]
    if not errors:
        return {"keys": 0, "mean": 0.0, "p95": 0.0, "max": 0.0}
    errors.sort()
    return {
        "keys": len(errors),
        "mean": sum(errors) / len(errors),
        "p95": errors[min(len(errors) - 1, int(0.95 * len(errors)))],
        "max": errors[-1],
    }


def _set_quality(
    reference: set, candidate: set
) -> Dict[str, float]:
    hit = len(reference & candidate)
    return {
        "reference": len(reference),
        "candidate": len(candidate),
        "recall": hit / len(reference) if reference else 1.0,
        "precision": hit / len(candidate) if candidate else 1.0,
    }


def _top_keys(counts: Dict[int, int], k: int) -> set:
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    return {key for key, _ in ranked[:k]}


def _spacesaving_quality(
    keys: Sequence[int],
    counts: Sequence[int],
    capacity: int,
    top_k: int,
) -> Dict[str, float]:
    """Top-k precision/recall of a SpaceSaving pass vs exact aggregation."""
    exact: Dict[int, int] = {}
    for key, count in zip(keys, counts):
        exact[key] = exact.get(key, 0) + count
    summary = SpaceSaving(capacity=capacity)
    summary.update_columns(keys, counts)
    sketch_top = {key for key, _, _ in summary.top(top_k)}
    return _set_quality(_top_keys(exact, top_k), sketch_top)


def evaluate_telescope(
    config: ScenarioConfig, capture, top_n: int, top_k: int, asn_of=None
) -> Dict:
    """Sketch-vs-exact report for one telescope capture (PacketColumns).

    ``asn_of`` (an address -> origin-ASN callable, e.g.
    ``topology.routing.origin_asn``) enables the AS-level SpaceSaving
    heavy-hitter pass; without it only /24 prefixes are ranked.
    """
    rsdos = config.rsdos_config()
    exact_events = detect_telescope_columns(rsdos, capture)
    summary = detect_telescope_sketch(
        rsdos, capture, sketch_config=config.sketch_config()
    )
    sketch_events = summary.events()

    exact_counts: Dict[int, int] = {}
    backscatter_victims: List[int] = []
    backscatter_packets: List[int] = []
    for is_backscatter, victim, count in zip(
        capture.backscatter, capture.srcs, capture.counts
    ):
        if not is_backscatter:
            continue
        exact_counts[victim] = exact_counts.get(victim, 0) + count
        backscatter_victims.append(victim)
        backscatter_packets.append(count)

    true_cardinality = len(exact_counts)
    est_cardinality = summary.cardinality()
    report = {
        "events": {"exact": len(exact_events), "sketch": len(sketch_events)},
        "count_relative_error": _relative_errors(
            exact_counts, summary.estimate, top_n
        ),
        "cardinality": {
            "exact": true_cardinality,
            "estimate": est_cardinality,
            "relative_error": (
                abs(est_cardinality - true_cardinality) / true_cardinality
                if true_cardinality
                else 0.0
            ),
        },
        "heavy_hitters": _set_quality(
            _top_keys(exact_counts, top_k),
            {victim for victim, _ in summary.top_victims(top_k)},
        ),
        "event_victims": _set_quality(
            {event.victim for event in exact_events},
            {event.victim for event in sketch_events},
        ),
        "spacesaving_prefixes": _spacesaving_quality(
            [victim >> 8 for victim in backscatter_victims],
            backscatter_packets,
            capacity=max(top_k * 8, 256),
            top_k=top_k,
        ),
        "evictions": summary.sketch.evictions,
    }
    if asn_of is not None:
        report["spacesaving_asns"] = _spacesaving_quality(
            [asn_of(victim) or 0 for victim in backscatter_victims],
            backscatter_packets,
            capacity=max(top_k * 8, 256),
            top_k=top_k,
        )
    return report


def evaluate_honeypot(
    config: ScenarioConfig, request_log, top_n: int, top_k: int
) -> Dict:
    """Sketch-vs-exact report for one request log (RequestColumns)."""
    detection = config.honeypot_detection_config()
    exact_events = detect_honeypot_columns(detection, request_log)
    summary = detect_honeypot_sketch(
        detection, request_log, sketch_config=config.sketch_config()
    )
    sketch_events = summary.events()

    n_protocols = max(1, len(request_log.protocols))
    exact_counts: Dict[int, int] = {}
    for victim, protocol_id, count in zip(
        request_log.victims, request_log.protocol_ids, request_log.counts
    ):
        key = victim * n_protocols + protocol_id
        exact_counts[key] = exact_counts.get(key, 0) + count

    true_cardinality = len(exact_counts)
    est_cardinality = summary.cardinality()
    return {
        "events": {"exact": len(exact_events), "sketch": len(sketch_events)},
        "count_relative_error": _relative_errors(
            exact_counts, summary.sketch.estimate, top_n
        ),
        "cardinality": {
            "exact": true_cardinality,
            "estimate": est_cardinality,
            "relative_error": (
                abs(est_cardinality - true_cardinality) / true_cardinality
                if true_cardinality
                else 0.0
            ),
        },
        "heavy_hitters": _set_quality(
            _top_keys(exact_counts, top_k),
            _top_keys(
                {
                    key: summary.sketch.estimate(key)
                    for key in summary.sketch.heavy
                },
                top_k,
            ),
        ),
        "event_pairs": _set_quality(
            {(event.victim, event.protocol) for event in exact_events},
            {(event.victim, event.protocol) for event in sketch_events},
        ),
        "evictions": summary.sketch.evictions,
    }


def run_harness(
    preset: str = "small",
    seed: int = 42,
    top_n: int = 200,
    top_k: int = 100,
) -> Dict:
    """Full accuracy report for one seeded scenario."""
    config = PRESETS[preset]().with_seed(seed)
    internet = build_internet(config)
    ground_truth = schedule_attacks(config, internet)
    telescope = evaluate_telescope(
        config,
        telescope_capture(config, ground_truth, codec="columnar"),
        top_n,
        top_k,
        asn_of=internet.topology.routing.origin_asn,
    )
    honeypot = evaluate_honeypot(
        config,
        honeypot_capture(config, ground_truth, codec="columnar"),
        top_n,
        top_k,
    )
    return {
        "schema": 1,
        "params": {
            "preset": preset,
            "seed": seed,
            "top_n": top_n,
            "top_k": top_k,
        },
        "telescope": telescope,
        "honeypot": honeypot,
    }


def check_gates(
    report: Dict, min_recall: float, max_count_error: float
) -> List[str]:
    """Return human-readable failures for the ISSUE acceptance gates."""
    failures = []
    for feed in ("telescope", "honeypot"):
        section = report[feed]
        recall = section["heavy_hitters"]["recall"]
        if recall < min_recall:
            failures.append(
                f"{feed}: heavy-hitter recall {recall:.3f} < {min_recall}"
            )
        count_error = section["count_relative_error"]["max"]
        if count_error > max_count_error:
            failures.append(
                f"{feed}: count relative error {count_error:.4f} "
                f"> {max_count_error}"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="sketch-tier accuracy harness (sketch vs exact replay)"
    )
    parser.add_argument(
        "--preset", choices=sorted(PRESETS), default="small",
        help="scenario scale (default: small)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--top-n", type=int, default=200,
        help="exact top-N keys scored for count relative error",
    )
    parser.add_argument(
        "--top-k", type=int, default=100,
        help="top-K set size for heavy-hitter precision/recall",
    )
    parser.add_argument(
        "--out", type=str, default=None,
        help="write the JSON report here (default: stdout only)",
    )
    parser.add_argument(
        "--min-recall", type=float, default=None,
        help="gate: fail if heavy-hitter recall drops below this",
    )
    parser.add_argument(
        "--max-count-error", type=float, default=None,
        help="gate: fail if max count relative error exceeds this",
    )
    args = parser.parse_args(argv)

    report = run_harness(
        preset=args.preset, seed=args.seed, top_n=args.top_n, top_k=args.top_k
    )
    rendered = json.dumps(report, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
    print(rendered)

    if args.min_recall is not None or args.max_count_error is not None:
        failures = check_gates(
            report,
            min_recall=args.min_recall if args.min_recall is not None else 0.0,
            max_count_error=(
                args.max_count_error
                if args.max_count_error is not None
                else float("inf")
            ),
        )
        for failure in failures:
            print(f"GATE FAIL {failure}", file=sys.stderr)
        if failures:
            return 1
        print("accuracy gates passed", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
