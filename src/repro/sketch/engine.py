"""FlowSketch: the composite summary behind the sketch detection tier.

Layout borrowed from Elastic Sketch (Yang et al., SIGCOMM'18): a
"heavy" exact table maps each tracked victim to a mutable stat record
(first/last timestamp, packets, bytes, ...), and two probabilistic
structures back it up —

* a :class:`~repro.sketch.countmin.CountMinSketch` **spillover** that
  absorbs the counts of evicted records, so estimates for keys that
  passed through the heavy table stay upper-bounded instead of lost;
* a :class:`~repro.sketch.hll.HyperLogLog` fed at **admission** time,
  so the distinct-victim cardinality survives any number of evictions.

The split keeps the per-row hot path — run by the detectors, not this
class — a single ``dict`` hit plus in-place list mutation; sketch
arithmetic is only paid on the rare admission/eviction path. Eviction
follows the space-saving discipline (smallest count out, deterministic
key tiebreak) via a lazy heap that tolerates counts growing behind its
back.

Partition invariance: with victim-disjoint shards every key's rows land
in exactly one shard, HLL and plain count-min merges are exact, and the
heavy-table union equals the single-shard table whenever no shard
evicted. Default capacities are sized so shipped workloads never evict;
the invariant degrades gracefully (upper bounds, not losses) when a
hostile workload overflows them.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from operator import itemgetter
from typing import Any, Callable, Dict, Iterable, List, Tuple, Union

from repro.obs import get_registry
from repro.sketch.countmin import CountMinSketch
from repro.sketch.hll import HyperLogLog

# Slot 0 of every heavy record is reserved by convention for the
# detectors' first_ts; the eviction count reader is configurable — one
# index, a tuple of indices whose values sum to the count, or any
# picklable callable with value-based equality (e.g. the telescope tier
# packs all its counters into one integer slot and supplies a decoder).


@dataclass(frozen=True)
class SketchConfig:
    """Geometry knobs for one :class:`FlowSketch`.

    ``capacity`` bounds the heavy table *per shard*. The default is
    generous on purpose: staying above the distinct-key count of
    shipped workloads makes sharded detection result-identical to
    single-shard detection (no eviction, so the heavy union is exact).
    Shrink it to trade accuracy for memory; the accuracy harness
    quantifies the cost.
    """

    capacity: int = 1 << 16
    cms_width: int = 4096
    cms_depth: int = 4
    hll_p: int = 12
    seed: int = 1

    def spill_sketch(self) -> CountMinSketch:
        # Plain (non-conservative) update: the only distributive variant,
        # required for shard-merge identity.
        return CountMinSketch(
            width=self.cms_width, depth=self.cms_depth, seed=self.seed
        )

    def cardinality_sketch(self) -> HyperLogLog:
        return HyperLogLog(p=self.hll_p, seed=self.seed)


class _SlotSum:
    """Picklable count reader summing several record slots.

    ``operator.itemgetter`` covers the single-slot case; this covers
    split-count layouts, and stays a plain module-level class so
    :class:`FlowSketch` instances survive the pickle hop between
    supervised pool shards.
    """

    __slots__ = ("slots",)

    def __init__(self, slots: Tuple[int, ...]) -> None:
        self.slots = slots

    def __call__(self, record: List[Any]) -> int:
        total = 0
        for slot in self.slots:
            total += record[slot]
        return total


class FlowSketch:
    """Heavy table + spillover CMS + admission HLL for one feed shard."""

    __slots__ = (
        "config",
        "count_slot",
        "heavy",
        "spill",
        "hll",
        "rows",
        "evictions",
        "_heap",
        "_count_of",
        "_capacity",
        "_hll_backlog",
    )

    def __init__(
        self,
        config: SketchConfig,
        count_slot: Union[int, Tuple[int, ...], Callable[[List[Any]], int]] = 2,
    ) -> None:
        self.config = config
        self.count_slot = count_slot
        if isinstance(count_slot, tuple):
            self._count_of = _SlotSum(count_slot)
        elif callable(count_slot):
            self._count_of = count_slot
        else:
            self._count_of = itemgetter(count_slot)
        self.heavy: Dict[int, List[Any]] = {}
        self.spill = config.spill_sketch()
        self.hll = config.cardinality_sketch()
        self.rows = 0
        self.evictions = 0
        self._capacity = config.capacity
        # Built lazily on the first eviction: below capacity the heap is
        # pure overhead on every admission.
        self._heap: Any = None
        # Admitted keys not yet folded into the HLL; hashing is deferred
        # to the first cardinality observation so admissions stay cheap.
        self._hll_backlog: List[int] = []

    # -- admission / eviction (miss path only) ------------------------------

    def admit(self, key: int, record: List[Any]) -> None:
        """Insert a fresh record for ``key``, evicting if at capacity.

        Detectors call this from their hot loop's miss branch; hits
        mutate ``self.heavy[key]`` directly and never touch the sketch.
        """
        heavy = self.heavy
        if len(heavy) >= self._capacity:
            self._evict_min()
        heavy[key] = record
        self._hll_backlog.append(key)
        if self._heap is not None:
            heapq.heappush(self._heap, (self._count_of(record), key))

    def _flush_hll(self) -> None:
        """Fold deferred admissions into the HLL (query/merge time)."""
        backlog = self._hll_backlog
        if backlog:
            add = self.hll.add
            for key in backlog:
                add(key)
            backlog.clear()

    def _evict_min(self) -> None:
        """Fold the smallest-count record into the spillover sketch."""
        heavy = self.heavy
        count_of = self._count_of
        heap = self._heap
        if heap is None:
            heap = self._heap = [
                (count_of(record), key) for key, record in heavy.items()
            ]
            heapq.heapify(heap)
        while True:
            count, key = heapq.heappop(heap)
            record = heavy.get(key)
            if record is None:
                continue  # ghost: evicted in an earlier round
            current = count_of(record)
            if current != count:
                heapq.heappush(heap, (current, key))  # stale: grew since push
                continue
            del heavy[key]
            self.spill.update(key, count)
            self.evictions += 1
            return

    # -- queries ------------------------------------------------------------

    def estimate(self, key: int) -> int:
        """Upper-bound count for ``key`` across heavy table and spillover."""
        record = self.heavy.get(key)
        tracked = self._count_of(record) if record is not None else 0
        if self.evictions:
            return tracked + self.spill.estimate(key)
        return tracked

    def cardinality(self) -> float:
        """Distinct keys ever admitted (survives evictions)."""
        self._flush_hll()
        return self.hll.cardinality()

    def heavy_fill_ratio(self) -> float:
        return len(self.heavy) / self.config.capacity

    # -- composition --------------------------------------------------------

    def merge(
        self,
        other: "FlowSketch",
        combine: Callable[[List[Any], List[Any]], None],
    ) -> "FlowSketch":
        """Absorb ``other`` into ``self``; ``combine`` folds overlapping records.

        ``combine(mine, theirs)`` mutates ``mine`` in place — the
        detectors supply the slot-wise rule (min first_ts, max last_ts,
        sum counters, union bitmasks).
        """
        if self.config != other.config:
            raise ValueError(
                f"cannot merge flow sketches with different configs: "
                f"{self.config} vs {other.config}"
            )
        if self.count_slot != other.count_slot:
            raise ValueError(
                f"cannot merge flow sketches with different count slots: "
                f"{self.count_slot} != {other.count_slot}"
            )
        heavy = self.heavy
        for key, record in other.heavy.items():
            mine = heavy.get(key)
            if mine is None:
                heavy[key] = record
            else:
                combine(mine, record)
        self.spill.merge(other.spill)
        self._flush_hll()
        other._flush_hll()
        self.hll.merge(other.hll)
        self.rows += other.rows
        self.evictions += other.evictions
        # Invalidate the heap; a rebuild happens lazily if the merged
        # table ever needs to evict.
        self._heap = None
        while len(heavy) > self._capacity:
            self._evict_min()
        return self


def export_sketch_metrics(feed: str, sketch: FlowSketch) -> None:
    """Publish fill and error-bound gauges for one merged feed summary.

    No-ops (null registry) when telemetry is disabled.
    """
    sketch._flush_hll()  # gauges read HLL registers directly
    registry = get_registry()
    fill = registry.gauge(
        "sketch_fill_ratio",
        "occupancy of each sketch structure, by feed",
        ("feed", "structure"),
    )
    fill.set(sketch.heavy_fill_ratio(), feed=feed, structure="heavy")
    fill.set(sketch.spill.fill_ratio(), feed=feed, structure="countmin")
    fill.set(sketch.hll.fill_ratio(), feed=feed, structure="hll")
    bound = registry.gauge(
        "sketch_error_bound",
        "count-min additive / HLL relative error bounds, by feed",
        ("feed", "structure"),
    )
    bound.set(sketch.spill.error_bound(), feed=feed, structure="countmin")
    bound.set(sketch.hll.error_bound(), feed=feed, structure="hll")
    volume = registry.gauge(
        "sketch_rows_ingested",
        "rows consumed by the sketch tier, by feed",
        ("feed",),
    )
    volume.set(sketch.rows, feed=feed)
    evictions = registry.gauge(
        "sketch_evictions",
        "heavy-table records spilled to count-min, by feed",
        ("feed",),
    )
    evictions.set(sketch.evictions, feed=feed)


def merge_flow_sketches(
    sketches: Iterable[FlowSketch],
    combine: Callable[[List[Any], List[Any]], None],
) -> FlowSketch:
    """Fold an iterable of shard sketches into the first one."""
    merged = None
    for sketch in sketches:
        merged = sketch if merged is None else merged.merge(sketch, combine)
    if merged is None:
        raise ValueError("merge_flow_sketches needs at least one sketch")
    return merged
