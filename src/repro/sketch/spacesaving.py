"""Space-saving heavy hitters: exact-capacity top-k tracking.

Metwally et al.'s stream-summary: track at most ``capacity`` keys; when
a new key arrives at a full table, the minimum-count entry is evicted
and the newcomer inherits its count (recorded as the entry's ``error``,
the maximum possible overcount). Guarantees: every key with true count
above ``total / capacity`` is tracked, and each tracked count satisfies
``true <= count <= true + error``.

The minimum is found through a lazy heap: entries are pushed on every
update and stale heap records (counts only grow) are refreshed on pop,
giving O(log capacity) eviction without touching the per-update hit
path. Ties — eviction victims and ``top()`` ordering — break on the
smaller key, so the structure is fully deterministic.

``merge()`` uses the standard union rule: keys missing from one summary
are assumed to have that summary's minimum count there (its maximum
undetected mass), then the union is re-truncated to capacity. Exact —
identical to single-stream ingestion — whenever neither input evicted;
an upper-bound approximation otherwise. The classic eviction race makes
an *evicting* SpaceSaving order-dependent, which is exactly why the
pipeline's :class:`~repro.sketch.engine.FlowSketch` sizes its heavy
table to avoid eviction on shipped workloads.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Sequence, Tuple


class SpaceSaving:
    """Deterministic space-saving counter over integer keys."""

    __slots__ = ("capacity", "total", "_entries", "_heap")

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"space-saving capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.total = 0
        # key -> [count, error]
        self._entries: Dict[int, List[int]] = {}
        # lazy heap of (count, key); stale counts refreshed on pop
        self._heap: List[Tuple[int, int]] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: int) -> bool:
        return key in self._entries

    # -- updates ------------------------------------------------------------

    def _pop_min(self) -> Tuple[int, int]:
        """Pop the entry with the smallest (count, key), refreshing stale heap rows."""
        entries = self._entries
        heap = self._heap
        while True:
            count, key = heapq.heappop(heap)
            entry = entries.get(key)
            if entry is None:
                continue  # evicted earlier; heap row is a ghost
            if entry[0] != count:
                heapq.heappush(heap, (entry[0], key))  # stale: count grew
                continue
            return count, key

    def update(self, key: int, count: int = 1) -> None:
        """Add ``count`` occurrences of ``key``."""
        self.total += count
        entries = self._entries
        entry = entries.get(key)
        if entry is not None:
            entry[0] += count
            heapq.heappush(self._heap, (entry[0], key))
            return
        if len(entries) < self.capacity:
            entries[key] = [count, 0]
            heapq.heappush(self._heap, (count, key))
            return
        floor, victim = self._pop_min()
        del entries[victim]
        entries[key] = [floor + count, floor]
        heapq.heappush(self._heap, (floor + count, key))

    def update_columns(self, keys: Sequence[int], counts: Sequence[int]) -> None:
        """Batch update from parallel key/count arrays (columnar fast path)."""
        if len(keys) != len(counts):
            raise ValueError(
                f"keys/counts length mismatch: {len(keys)} != {len(counts)}"
            )
        update = self.update
        for key, count in zip(keys, counts):
            update(key, count)

    # -- queries ------------------------------------------------------------

    def estimate(self, key: int) -> int:
        """Upper-bound count for ``key`` (its minimum count if untracked)."""
        entry = self._entries.get(key)
        if entry is not None:
            return entry[0]
        return self._min_count()

    def error(self, key: int) -> int:
        """Maximum overcount baked into ``key``'s estimate."""
        entry = self._entries.get(key)
        if entry is not None:
            return entry[1]
        return self._min_count()

    def _min_count(self) -> int:
        """Smallest tracked count — the ceiling on any untracked key's count."""
        if len(self._entries) < self.capacity:
            return 0
        count, key = self._pop_min()
        heapq.heappush(self._heap, (count, key))
        return count

    def top(self, k: int) -> List[Tuple[int, int, int]]:
        """Top-``k`` as ``(key, count, error)``, count-descending, key tiebreak."""
        ranked = sorted(
            self._entries.items(), key=lambda item: (-item[1][0], item[0])
        )
        return [(key, entry[0], entry[1]) for key, entry in ranked[:k]]

    # -- composition --------------------------------------------------------

    def merge(self, other: "SpaceSaving") -> "SpaceSaving":
        """Union ``other`` into ``self`` and return ``self``.

        Keys absent from one side are credited that side's minimum count
        (their maximum possible undetected mass) as both count and
        error, then the union is trimmed back to capacity.
        """
        if self.capacity != other.capacity:
            raise ValueError(
                f"cannot merge space-saving summaries with different "
                f"capacities: {self.capacity} != {other.capacity}"
            )
        mine_floor = self._min_count()
        other_floor = other._min_count()
        merged: Dict[int, List[int]] = {}
        for key, (count, error) in self._entries.items():
            merged[key] = [count + other_floor, error + other_floor]
        for key, (count, error) in other._entries.items():
            entry = merged.get(key)
            if entry is not None:
                # was credited other_floor above; replace with the real count
                entry[0] += count - other_floor
                entry[1] += error - other_floor
            else:
                merged[key] = [count + mine_floor, error + mine_floor]
        if len(merged) > self.capacity:
            ranked = sorted(merged.items(), key=lambda item: (-item[1][0], item[0]))
            merged = dict(ranked[: self.capacity])
        self._entries = merged
        self._heap = [(entry[0], key) for key, entry in merged.items()]
        heapq.heapify(self._heap)
        self.total += other.total
        return self

    @classmethod
    def merge_all(cls, summaries: Iterable["SpaceSaving"]) -> "SpaceSaving":
        merged = None
        for summary in summaries:
            merged = summary if merged is None else merged.merge(summary)
        if merged is None:
            raise ValueError("merge_all needs at least one summary")
        return merged
