"""Streaming-sketch engine: approximate detection in bounded space.

The third detection tier. Where the exact tier keeps one object per
flow and the columnar tier one list per live victim, the sketch tier
bounds memory with three classic summaries, each seeded, mergeable, and
fed straight from the columnar arrays:

* :class:`CountMinSketch` — per-key packet/request counts (plain and
  conservative-update variants).
* :class:`HyperLogLog` — distinct-key cardinality (how many victims the
  telescope saw, the paper's "millions of targets" headline).
* :class:`SpaceSaving` — heavy hitters: top victims, /24 prefixes, ASes.

:class:`FlowSketch` composes them into the structure the detectors use:
an exact "heavy" table for tracked victims with space-saving eviction
into a count-min spillover, plus a HyperLogLog over every admitted key —
the Elastic-Sketch layout, which keeps the per-row hot path a single
dict operation.

Determinism contract: every structure hashes with the same seeded
64-bit mixer, and ``merge()`` over victim-disjoint shards reproduces the
single-shard result exactly as long as no shard evicted (the pipeline's
default capacities are sized so shipped workloads never do).
"""

from repro.sketch.countmin import CountMinSketch
from repro.sketch.engine import FlowSketch, SketchConfig, export_sketch_metrics
from repro.sketch.hashing import mix64
from repro.sketch.hll import HyperLogLog
from repro.sketch.spacesaving import SpaceSaving

__all__ = [
    "CountMinSketch",
    "FlowSketch",
    "HyperLogLog",
    "SketchConfig",
    "SpaceSaving",
    "export_sketch_metrics",
    "mix64",
]
