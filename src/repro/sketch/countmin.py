"""Count-min sketch: approximate per-key counts in fixed space.

Classic Cormode–Muthukrishnan structure: ``depth`` rows of ``width``
counters; a key increments one counter per row, and its estimate is the
minimum over its cells — an overestimate whose additive error is bounded
by ``e / width * total`` with probability ``1 - e^-depth``.

Two update disciplines:

* **plain** (default) — increment every cell. Distributive: merging
  per-shard sketches cell-wise is *identical* to sketching the combined
  stream in any order. This is the variant the pipeline uses, because
  the shard-merge identity gate demands partition invariance.
* **conservative** — increment only the cells that equal the current
  minimum (Estan–Varghese). Tighter point estimates, still never an
  underestimate, but **not** distributive: a merged conservative sketch
  is a valid upper bound yet can differ from single-stream ingestion.
  Exercised by the accuracy harness to quantify the gap.

Row placement uses Kirsch–Mitzenmacher double hashing over one seeded
:func:`~repro.sketch.hashing.mix64` call per key, so a single mix feeds
all ``depth`` rows.
"""

from __future__ import annotations

from array import array
from typing import Iterable, List, Sequence

from repro.sketch.hashing import mix64, seed_tweak

_LOW32 = 0xFFFFFFFF


def _pow2_width(width: int) -> int:
    if width < 2:
        raise ValueError(f"count-min width must be >= 2, got {width}")
    return 1 << (width - 1).bit_length()


class CountMinSketch:
    """Seeded count-min sketch over integer keys.

    ``width`` is rounded up to a power of two so row indexing is a mask
    instead of a modulo.
    """

    __slots__ = ("width", "depth", "seed", "conservative", "total", "_tweak", "rows")

    def __init__(
        self,
        width: int = 2048,
        depth: int = 4,
        seed: int = 0,
        conservative: bool = False,
    ) -> None:
        if depth < 1:
            raise ValueError(f"count-min depth must be >= 1, got {depth}")
        self.width = _pow2_width(width)
        self.depth = depth
        self.seed = seed
        self.conservative = conservative
        self.total = 0
        self._tweak = seed_tweak(seed)
        self.rows: List[array] = [array("Q", bytes(8 * self.width)) for _ in range(depth)]

    # -- updates ------------------------------------------------------------

    def _cells(self, key: int) -> List[int]:
        digest = mix64(key, self._tweak)
        base = digest & _LOW32
        step = (digest >> 32) | 1
        mask = self.width - 1
        return [(base + i * step) & mask for i in range(self.depth)]

    def update(self, key: int, count: int = 1) -> None:
        """Add ``count`` occurrences of ``key``."""
        self.total += count
        cells = self._cells(key)
        rows = self.rows
        if self.conservative:
            floor = min(row[cell] for row, cell in zip(rows, cells))
            target = floor + count
            for row, cell in zip(rows, cells):
                if row[cell] < target:
                    row[cell] = target
        else:
            for row, cell in zip(rows, cells):
                row[cell] += count

    def update_columns(self, keys: Sequence[int], counts: Sequence[int]) -> None:
        """Batch update from parallel key/count arrays (columnar fast path)."""
        if len(keys) != len(counts):
            raise ValueError(
                f"keys/counts length mismatch: {len(keys)} != {len(counts)}"
            )
        update = self.update
        for key, count in zip(keys, counts):
            update(key, count)

    # -- queries ------------------------------------------------------------

    def estimate(self, key: int) -> int:
        """Upper-bound estimate of the count of ``key``."""
        return min(row[cell] for row, cell in zip(self.rows, self._cells(key)))

    def fill_ratio(self) -> float:
        """Mean fraction of non-zero counters across rows (load gauge)."""
        if not self.width:
            return 0.0
        occupied = sum(
            sum(1 for cell in row if cell) for row in self.rows
        )
        return occupied / (self.width * self.depth)

    def error_bound(self) -> float:
        """Expected additive overcount: ``e / width * total`` (plain variant)."""
        import math

        return math.e / self.width * self.total

    # -- composition --------------------------------------------------------

    def merge(self, other: "CountMinSketch") -> "CountMinSketch":
        """Cell-wise sum ``other`` into ``self`` and return ``self``.

        Exact for the plain variant (partition invariant). For the
        conservative variant the merged sketch remains a valid upper
        bound but is not guaranteed identical to single-stream order.
        """
        if (self.width, self.depth, self.seed) != (other.width, other.depth, other.seed):
            raise ValueError(
                "cannot merge count-min sketches with different geometry: "
                f"({self.width}x{self.depth} seed={self.seed}) vs "
                f"({other.width}x{other.depth} seed={other.seed})"
            )
        for mine, theirs in zip(self.rows, other.rows):
            for i, value in enumerate(theirs):
                if value:
                    mine[i] += value
        self.total += other.total
        return self

    @classmethod
    def merge_all(cls, sketches: Iterable["CountMinSketch"]) -> "CountMinSketch":
        merged = None
        for sketch in sketches:
            merged = sketch if merged is None else merged.merge(sketch)
        if merged is None:
            raise ValueError("merge_all needs at least one sketch")
        return merged
