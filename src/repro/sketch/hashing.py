"""Seeded deterministic hashing shared by every sketch structure.

Python's builtin ``hash()`` is salted per process (``PYTHONHASHSEED``)
and identity on small ints, so it is unusable for sketches that must
produce identical register states across processes, shards, and runs.
This module provides a splitmix64-style finalizer over integer keys: two
multiply-xorshift rounds, full 64-bit avalanche, pure stdlib arithmetic.

All sketch keys in this codebase are already integers (victim addresses,
``victim * n_protocols + protocol`` composites, prefix ids), so the
mixer takes ints directly; callers with other key types hash them to an
int first.
"""

from __future__ import annotations

MASK64 = (1 << 64) - 1

# splitmix64 finalizer constants (Steele et al., "Fast splittable
# pseudorandom number generators").
_C1 = 0xBF58476D1CE4E5B9
_C2 = 0x94D049BB133111EB
_GOLDEN = 0x9E3779B97F4A7C15


def seed_tweak(seed: int) -> int:
    """Expand a small seed into a full-width xor tweak for :func:`mix64`."""
    value = (seed & MASK64) * _GOLDEN & MASK64
    value ^= value >> 31
    return value or _GOLDEN


def mix64(key: int, tweak: int = 0) -> int:
    """Avalanche an integer key into a uniform 64-bit hash."""
    value = (key ^ tweak) & MASK64
    value = (value ^ (value >> 30)) * _C1 & MASK64
    value = (value ^ (value >> 27)) * _C2 & MASK64
    return value ^ (value >> 31)
