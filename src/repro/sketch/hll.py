"""HyperLogLog: distinct-count estimation in ``2^p`` bytes.

Flajolet et al.'s estimator with the standard small-range correction:
each key's seeded 64-bit hash selects one of ``m = 2^p`` registers with
its low ``p`` bits and contributes the position of the first set bit of
the remaining 64-p bits; cardinality is recovered from the harmonic mean
of register values. Relative standard error is ``1.04 / sqrt(m)`` —
about 1.6% at the default ``p = 12`` (4096 one-byte registers).

``merge()`` takes the element-wise register maximum, which is exactly
the state the union stream would have produced: HLL is fully
order- and partition-invariant, so sharded ingestion is *identical* to
single-stream ingestion, evictions or not.
"""

from __future__ import annotations

import math
from array import array
from typing import Iterable, Sequence

from repro.sketch.hashing import mix64, seed_tweak


def _alpha(m: int) -> float:
    if m <= 16:
        return 0.673
    if m <= 32:
        return 0.697
    if m <= 64:
        return 0.709
    return 0.7213 / (1.0 + 1.079 / m)


class HyperLogLog:
    """Seeded HyperLogLog over integer keys."""

    __slots__ = ("p", "seed", "_tweak", "registers")

    def __init__(self, p: int = 12, seed: int = 0) -> None:
        if not 4 <= p <= 18:
            raise ValueError(f"hll precision must be in [4, 18], got {p}")
        self.p = p
        self.seed = seed
        self._tweak = seed_tweak(seed)
        self.registers = array("B", bytes(1 << p))

    # -- updates ------------------------------------------------------------

    def add(self, key: int) -> None:
        """Observe one key (idempotent per distinct key)."""
        digest = mix64(key, self._tweak)
        index = digest & ((1 << self.p) - 1)
        rest = digest >> self.p
        # rank = position of the leftmost 1-bit among the top 64-p bits.
        rank = (64 - self.p) - rest.bit_length() + 1
        if rank > self.registers[index]:
            self.registers[index] = rank

    def update_columns(self, keys: Sequence[int]) -> None:
        """Batch-observe a key column."""
        add = self.add
        for key in keys:
            add(key)

    # -- queries ------------------------------------------------------------

    def cardinality(self) -> float:
        """Bias-corrected distinct-count estimate."""
        m = 1 << self.p
        registers = self.registers
        harmonic = 0.0
        zeros = 0
        for value in registers:
            if value:
                harmonic += 2.0 ** -value
            else:
                harmonic += 1.0
                zeros += 1
        estimate = _alpha(m) * m * m / harmonic
        if estimate <= 2.5 * m and zeros:
            return m * math.log(m / zeros)
        return estimate

    def fill_ratio(self) -> float:
        """Fraction of registers touched at least once."""
        occupied = sum(1 for value in self.registers if value)
        return occupied / len(self.registers)

    def error_bound(self) -> float:
        """Relative standard error: ``1.04 / sqrt(m)``."""
        return 1.04 / math.sqrt(1 << self.p)

    # -- composition --------------------------------------------------------

    def merge(self, other: "HyperLogLog") -> "HyperLogLog":
        """Register-wise max of ``other`` into ``self``; returns ``self``."""
        if (self.p, self.seed) != (other.p, other.seed):
            raise ValueError(
                "cannot merge HLLs with different geometry: "
                f"(p={self.p} seed={self.seed}) vs (p={other.p} seed={other.seed})"
            )
        mine = self.registers
        for i, value in enumerate(other.registers):
            if value > mine[i]:
                mine[i] = value
        return self

    @classmethod
    def merge_all(cls, sketches: Iterable["HyperLogLog"]) -> "HyperLogLog":
        merged = None
        for sketch in sketches:
            merged = sketch if merged is None else merged.merge(sketch)
        if merged is None:
            raise ValueError("merge_all needs at least one sketch")
        return merged
