"""Intensity normalization and thresholds (Figure 5, Table 9).

Intensities from the two data sets live on incomparable scales (backscatter
pps vs. per-reflector request rate), so cross-source comparisons use
*normalized* intensity: min-max scaling within each source, landing every
event in [0, 1]. The "medium or higher" intensity class of Figure 5 uses
the paper's rule — intensity at least the mean of its own data set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.core.events import AttackEvent


@dataclass(frozen=True)
class SourceScale:
    """Min/max/mean of one source's raw intensity values."""

    minimum: float
    maximum: float
    mean: float

    def normalize(self, value: float) -> float:
        if self.maximum <= self.minimum:
            return 0.0
        scaled = (value - self.minimum) / (self.maximum - self.minimum)
        return min(1.0, max(0.0, scaled))


class IntensityModel:
    """Per-source scales computed once over the fused data."""

    def __init__(self, events: Iterable[AttackEvent]) -> None:
        by_source: Dict[str, List[float]] = {}
        for event in events:
            by_source.setdefault(event.source, []).append(event.intensity)
        if not by_source:
            raise ValueError("cannot build an intensity model with no events")
        self.scales: Dict[str, SourceScale] = {
            source: SourceScale(
                minimum=float(min(values)),
                maximum=float(max(values)),
                mean=float(np.mean(values)),
            )
            for source, values in by_source.items()
        }

    def normalized(self, event: AttackEvent) -> float:
        """The event's intensity scaled into [0, 1] within its source."""
        return self.scales[event.source].normalize(event.intensity)

    def is_medium_or_higher(self, event: AttackEvent) -> bool:
        """The paper's Figure 5 rule: at least the mean of its data set."""
        return event.intensity >= self.scales[event.source].mean

    def medium_plus(self, events: Iterable[AttackEvent]) -> List[AttackEvent]:
        return [e for e in events if self.is_medium_or_higher(e)]


# Percentiles reported in Table 9.
TABLE9_PERCENTILES = (11.1, 95.0, 97.5, 99.0, 99.9, 100.0)


def intensity_percentile_table(
    site_intensities: Iterable[float],
    percentiles: Sequence[float] = TABLE9_PERCENTILES,
) -> List[Tuple[float, float]]:
    """Table 9: normalized intensity value at selected site percentiles.

    *site_intensities* is the per-Web-site maximum normalized intensity
    (a site hit by several — possibly simultaneous — attacks contributes
    its highest value).
    """
    values = np.sort(np.fromiter(site_intensities, dtype=float))
    if values.size == 0:
        return []
    rows: List[Tuple[float, float]] = []
    for percentile in percentiles:
        rows.append(
            (percentile, float(np.percentile(values, percentile, method="lower")))
        )
    return rows


def top_fraction_threshold(
    values: Iterable[float], top_fraction: float
) -> float:
    """The intensity value separating the top *top_fraction* of values.

    Used by the migration analysis to slice Figure 10's top-5 %/1 %/0.1 %
    classes.
    """
    if not 0.0 < top_fraction <= 1.0:
        raise ValueError("top_fraction must be in (0, 1]")
    array = np.fromiter(values, dtype=float)
    if array.size == 0:
        raise ValueError("no values to threshold")
    return float(np.quantile(array, 1.0 - top_fraction))
