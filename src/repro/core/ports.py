"""Target-port analysis of randomly spoofed attacks (Tables 7 and 8).

Single-port attacks are mapped to services via the IANA-style registry in
:mod:`repro.net.protocols`; the Web-port subset gets the paper's intensity
and duration comparison (more intense, shorter).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, List

import numpy as np

from repro.core.events import AttackEvent, SOURCE_TELESCOPE
from repro.core.rankings import RankedEntry
from repro.net.packet import PROTO_TCP
from repro.net.protocols import is_web_port, service_for_port


@dataclass(frozen=True)
class PortCardinality:
    """Table 7: single- vs multi-port attack counts."""

    single_port: int
    multi_port: int

    @property
    def total(self) -> int:
        return self.single_port + self.multi_port

    @property
    def single_fraction(self) -> float:
        return self.single_port / self.total if self.total else 0.0


def port_cardinality(events: Iterable[AttackEvent]) -> PortCardinality:
    """Count single- vs multi-port telescope events.

    Portless events (ICMP floods) count as single-port: they target the
    host as a whole, not a spread of services.
    """
    single = multi = 0
    for event in events:
        if event.source != SOURCE_TELESCOPE:
            continue
        if event.single_port:
            single += 1
        else:
            multi += 1
    return PortCardinality(single_port=single, multi_port=multi)


def service_table(
    events: Iterable[AttackEvent], ip_proto: int, top_n: int = 5
) -> List[RankedEntry]:
    """Table 8: top targeted services among single-port attacks.

    Only telescope events using *ip_proto* with exactly one target port are
    considered; the final row aggregates everything outside the top *top_n*.
    """
    counts: Counter = Counter()
    for event in events:
        if event.source != SOURCE_TELESCOPE or event.ip_proto != ip_proto:
            continue
        if len(event.ports) != 1:
            continue
        counts[service_for_port(ip_proto, event.ports[0])] += 1
    total = sum(counts.values())
    if total == 0:
        return []
    ranked = [
        RankedEntry(service, count, count / total)
        for service, count in counts.most_common(top_n)
    ]
    covered = sum(entry.count for entry in ranked)
    ranked.append(
        RankedEntry("Other", total - covered, (total - covered) / total)
    )
    return ranked


def web_infrastructure_share(events: Iterable[AttackEvent]) -> float:
    """Fraction of single-port TCP events aimed at Web ports (80/443)."""
    web = total = 0
    for event in events:
        if event.source != SOURCE_TELESCOPE or event.ip_proto != PROTO_TCP:
            continue
        if len(event.ports) != 1:
            continue
        total += 1
        if is_web_port(event.ports[0]):
            web += 1
    return web / total if total else 0.0


@dataclass(frozen=True)
class WebPortComparison:
    """Section 4: Web-port attacks vs all randomly spoofed attacks."""

    mean_intensity_web: float
    mean_intensity_all: float
    median_intensity_web: float
    median_intensity_all: float
    mean_duration_web: float
    mean_duration_all: float
    median_duration_web: float
    median_duration_all: float

    @property
    def web_more_intense(self) -> bool:
        """Web-port attacks rank higher in intensity.

        The median is the robust signal at simulation scale: the mean is
        dominated by a handful of capacity-capped extreme events whose port
        mix varies run to run.
        """
        return (
            self.median_intensity_web > self.median_intensity_all
            or self.mean_intensity_web > self.mean_intensity_all
        )

    @property
    def web_shorter(self) -> bool:
        return self.mean_duration_web < self.mean_duration_all


def web_port_comparison(events: Iterable[AttackEvent]) -> WebPortComparison:
    """Compare intensity/duration stats of Web-port events to the overall."""
    all_intensity: List[float] = []
    all_duration: List[float] = []
    web_intensity: List[float] = []
    web_duration: List[float] = []
    for event in events:
        if event.source != SOURCE_TELESCOPE:
            continue
        all_intensity.append(event.intensity)
        all_duration.append(event.duration)
        if len(event.ports) == 1 and is_web_port(event.ports[0]):
            web_intensity.append(event.intensity)
            web_duration.append(event.duration)
    if not all_intensity or not web_intensity:
        raise ValueError("need both overall and Web-port telescope events")
    return WebPortComparison(
        mean_intensity_web=float(np.mean(web_intensity)),
        mean_intensity_all=float(np.mean(all_intensity)),
        median_intensity_web=float(np.median(web_intensity)),
        median_intensity_all=float(np.median(all_intensity)),
        mean_duration_web=float(np.mean(web_duration)),
        mean_duration_all=float(np.mean(all_duration)),
        median_duration_web=float(np.median(web_duration)),
        median_duration_all=float(np.median(all_duration)),
    )
