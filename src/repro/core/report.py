"""Textual renderers for every table and figure in the paper.

Each ``render_*`` function takes analysis outputs and returns an aligned
ASCII block mirroring the corresponding table or (for figures) the key
series/CDF values the paper annotates. The benchmark harness prints these
so a run regenerates the paper's evaluation section end to end.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.cohosting import CoHostingBin
from repro.core.distributions import (
    DURATION_POINTS,
    EmpiricalCDF,
    INTENSITY_POINTS,
)
from repro.core.rankings import RankedEntry
from repro.core.taxonomy import TaxonomyCounts
from repro.core.timeseries import DailySeries


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), max((len(r[i]) for r in cells), default=0))
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _pct(value: float) -> str:
    return f"{100.0 * value:.2f}%"


def render_table1(summary_rows: Sequence[dict]) -> str:
    """Table 1: attack events per source."""
    rows = [
        [
            r["source"],
            r["events"],
            r["targets"],
            r["slash24s"],
            r["slash16s"],
            r["asns"],
        ]
        for r in summary_rows
    ]
    return render_table(
        ["source", "#events", "#targets", "#/24s", "#/16s", "#ASNs"],
        rows,
        title="Table 1: DoS attack events data",
    )


def render_table2(zone_stats, total_sites: int, total_points: int) -> str:
    """Table 2: active DNS data set."""
    rows = [
        [f".{z.tld}", z.web_sites, z.data_points, f"{z.size_bytes / 2**30:.2f} GiB"]
        for z in zone_stats
    ]
    rows.append(["Combined", total_sites, total_points, ""])
    return render_table(
        ["source", "#Web sites", "#data points", "size"],
        rows,
        title="Table 2: Active DNS data set",
    )


def render_table3(site_counts: Dict[str, int]) -> str:
    """Table 3: Web sites per DPS provider."""
    rows = [
        [provider, count]
        for provider, count in sorted(site_counts.items())
    ]
    return render_table(
        ["provider", "#Web sites"],
        rows,
        title="Table 3: DDoS Protection Service use",
    )


def render_table4(entries: Sequence[RankedEntry], label: str) -> str:
    """Table 4: per-country target ranking for one data set."""
    rows = [[e.key, e.count, _pct(e.share)] for e in entries]
    return render_table(
        ["country", "#targets", "%"],
        rows,
        title=f"Table 4 ({label}): targets per country",
    )


def render_table5(distribution: Dict[str, float]) -> str:
    """Table 5: IP protocol distribution."""
    order = sorted(distribution.items(), key=lambda kv: kv[1], reverse=True)
    rows = [[name, _pct(share)] for name, share in order]
    return render_table(
        ["IP protocol", "events (%)"],
        rows,
        title="Table 5: IP protocol distribution (telescope)",
    )


def render_table6(entries: Sequence[RankedEntry]) -> str:
    """Table 6: reflection protocol distribution."""
    rows = [[e.key, e.count, _pct(e.share)] for e in entries]
    return render_table(
        ["type", "#events", "%"],
        rows,
        title="Table 6: Reflection protocol distribution (honeypot)",
    )


def render_table7(cardinality) -> str:
    """Table 7: single- vs multi-port attacks."""
    rows = [
        ["single-port", cardinality.single_port, _pct(cardinality.single_fraction)],
        [
            "multi-port",
            cardinality.multi_port,
            _pct(1.0 - cardinality.single_fraction),
        ],
    ]
    return render_table(
        ["type", "#events", "%"],
        rows,
        title="Table 7: Number of target ports distribution (telescope)",
    )


def render_table8(
    tcp_entries: Sequence[RankedEntry], udp_entries: Sequence[RankedEntry]
) -> str:
    """Table 8: top targeted services for TCP and UDP."""
    tcp = render_table(
        ["type", "#events", "%"],
        [[e.key, e.count, _pct(e.share)] for e in tcp_entries],
        title="Table 8a: top targeted services, single-port TCP",
    )
    udp = render_table(
        ["type", "#events", "%"],
        [[e.key, e.count, _pct(e.share)] for e in udp_entries],
        title="Table 8b: top targeted services, single-port UDP",
    )
    return tcp + "\n\n" + udp


def render_table9(rows: Sequence[Tuple[float, float]]) -> str:
    """Table 9: normalized attack intensity over Web sites."""
    return render_table(
        ["Web sites (%)", "Intensity (<=)"],
        [[f"{p:.1f}", f"{v:.2f}"] for p, v in rows],
        title="Table 9: attack intensity distribution over Web sites",
    )


def render_series_summary(series: DailySeries) -> str:
    """Figure 1 (one panel): daily statistics summary."""
    rows = [
        ["attacks/day (mean)", f"{series.mean_daily_attacks():.1f}"],
        ["attacks/day (max)", int(series.attacks.max()) if series.n_days else 0],
        ["targets/day (mean)", f"{series.unique_targets.mean():.1f}"],
        ["/16s/day (mean)", f"{series.targeted_slash16s.mean():.1f}"],
        ["ASNs/day (mean)", f"{series.targeted_asns.mean():.1f}"],
        ["peak day", series.peak_day()],
    ]
    return render_table(
        ["statistic", "value"],
        rows,
        title=f"Figure 1 ({series.label}): daily attack statistics",
    )


def render_duration_cdf(cdf: EmpiricalCDF, label: str) -> str:
    """Figure 2 (one panel): duration CDF at the paper's x positions."""
    rows = [
        [_format_seconds(x), _pct(cdf.fraction_at_or_below(x))]
        for x in DURATION_POINTS
    ]
    rows.append(["mean", _format_seconds(cdf.mean)])
    rows.append(["median", _format_seconds(cdf.median)])
    return render_table(
        ["duration <=", "CDF"],
        rows,
        title=f"Figure 2 ({label}): attack duration CDF",
    )


def render_intensity_cdf(cdf: EmpiricalCDF, label: str) -> str:
    """Figures 3/4: intensity CDF at log-decade positions."""
    rows = [
        [str(x), _pct(cdf.fraction_at_or_below(x))] for x in INTENSITY_POINTS
    ]
    rows.append(["mean", f"{cdf.mean:.1f}"])
    rows.append(["median", f"{cdf.median:.1f}"])
    return render_table(
        ["intensity <=", "CDF"],
        rows,
        title=f"Intensity CDF ({label})",
    )


def render_cohosting(bins: Sequence[CoHostingBin]) -> str:
    """Figure 6: co-hosting group histogram."""
    rows = [[b.label, b.target_ips] for b in bins]
    return render_table(
        ["co-hosted sites", "target IPs"],
        rows,
        title="Figure 6: Web site associations per targeted IP",
    )


def render_taxonomy(counts: TaxonomyCounts) -> str:
    """Figure 8: the Web-site taxonomy tree."""
    def node(label: str, value: int, parent: int) -> str:
        share = f" ({_pct(value / parent)})" if parent else ""
        return f"{label}: {value}{share}"

    lines = [
        "Figure 8: Web site taxonomy",
        node("all Web sites", counts.total, 0),
        "  " + node("attack observed", counts.attacked, counts.total),
        "    " + node("preexisting", counts.attacked_preexisting, counts.attacked),
        "    " + node("migrating", counts.attacked_migrating, counts.attacked),
        "    "
        + node("non-migrating", counts.attacked_non_migrating, counts.attacked),
        "  " + node("no attack observed", counts.not_attacked, counts.total),
        "    "
        + node(
            "preexisting", counts.unattacked_preexisting, counts.not_attacked
        ),
        "    "
        + node("migrating", counts.unattacked_migrating, counts.not_attacked),
        "    "
        + node(
            "non-migrating",
            counts.unattacked_non_migrating,
            counts.not_attacked,
        ),
    ]
    return "\n".join(lines)


def render_delay_cdf(
    cdfs: Dict[str, EmpiricalCDF], days: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8, 16)
) -> str:
    """Figures 10/11: days-to-migration CDFs for labelled populations."""
    headers = ["days <="] + list(cdfs.keys())
    rows = []
    for day in days:
        rows.append(
            [day] + [_pct(cdf.fraction_at_or_below(day)) for cdf in cdfs.values()]
        )
    return render_table(headers, rows, title="Migration delay CDFs")


def _format_seconds(seconds: float) -> str:
    if seconds < 120:
        return f"{seconds:.0f}s"
    if seconds < 7200:
        return f"{seconds / 60:.1f}m"
    return f"{seconds / 3600:.1f}h"
