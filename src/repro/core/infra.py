"""Infrastructure impact: attacks on mail and authoritative DNS.

The paper's Section 8 outlines two extensions this module implements:

* **Mail impact** — Section 5 already observed that MX-referenced addresses
  (e.g. GoDaddy's mail servers, used by tens of millions of domains) are
  frequently attacked. Joining attack events against the MX hosting
  intervals quantifies how many domains' mail delivery was potentially
  affected.
* **DNS impact** — mapping targeted addresses to authoritative name
  servers shows attacks on the DNS itself: a hit on a hoster's NS pair
  potentially affects resolution for every domain it serves, and a
  protected domain's migration onto DPS name servers changes its exposure.

Both analyses reuse the generic interval index from :mod:`repro.core.webmap`
— the machinery is identical, only the record type differs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Set, Tuple

from repro.core.events import AttackEvent
from repro.core.webmap import WebHostingIndex, WebImpactAnalysis


@dataclass(frozen=True)
class InfrastructureImpact:
    """Aggregate impact of attacks on one infrastructure class."""

    label: str
    attacked_infrastructure_ips: int
    affected_domains: int
    total_domains: int
    events_with_impact: int

    @property
    def affected_fraction(self) -> float:
        if not self.total_domains:
            return 0.0
        return self.affected_domains / self.total_domains


def build_infra_index(
    intervals: Iterable[Tuple[str, int, int, int]]
) -> WebHostingIndex:
    """An interval index over (domain, ip, start, end) records.

    Works for mail (MX address) and name-server intervals alike; the
    resulting index answers "which domains depended on this address on
    this day?".
    """
    return WebHostingIndex(intervals)


def infrastructure_impact(
    events: Iterable[AttackEvent],
    intervals: Iterable[Tuple[str, int, int, int]],
    label: str,
) -> InfrastructureImpact:
    """Join attack events against one infrastructure interval set."""
    index = build_infra_index(intervals)
    analysis = WebImpactAnalysis(index)
    event_list = list(events)
    associations = analysis.associate(event_list)
    affected = analysis.unique_affected_sites(event_list)
    return InfrastructureImpact(
        label=label,
        attacked_infrastructure_ips=len(
            {a.event.target for a in associations if a.site_count > 0}
        ),
        affected_domains=len(affected),
        total_domains=len(index.all_domains()),
        events_with_impact=sum(1 for a in associations if a.site_count > 0),
    )


def mail_impact(
    events: Iterable[AttackEvent],
    mail_intervals: Iterable[Tuple[str, int, int, int]],
) -> InfrastructureImpact:
    """Impact of attacks on mail-exchanger addresses."""
    return infrastructure_impact(events, mail_intervals, "mail")


def dns_impact(
    events: Iterable[AttackEvent],
    ns_intervals: Iterable[Tuple[str, int, int, int]],
) -> InfrastructureImpact:
    """Impact of attacks on authoritative name servers."""
    return infrastructure_impact(events, ns_intervals, "dns")


def shared_fate_domains(
    events: Iterable[AttackEvent],
    web_index: WebHostingIndex,
    ns_intervals: Iterable[Tuple[str, int, int, int]],
) -> Dict[str, Set[str]]:
    """Split affected domains by *how* they were exposed.

    Returns {"web": ..., "dns": ..., "both": ...} — domains whose Web
    hosting was attacked, whose authoritative DNS was attacked, and those
    hit through both dependencies (compound risk the paper's future-work
    discussion motivates).
    """
    event_list = list(events)
    web_affected = WebImpactAnalysis(web_index).unique_affected_sites(
        event_list
    )
    # Web domains are keyed by their www name; strip for comparison.
    web_bare = {name[4:] if name.startswith("www.") else name
                for name in web_affected}
    dns_index = build_infra_index(ns_intervals)
    dns_affected = WebImpactAnalysis(dns_index).unique_affected_sites(
        event_list
    )
    return {
        "web": web_bare - dns_affected,
        "dns": dns_affected - web_bare,
        "both": web_bare & dns_affected,
    }
