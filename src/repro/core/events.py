"""Unified attack-event model and per-source data sets.

Telescope and honeypot detections have different native schemas and
intensity semantics (max backscatter pps vs. average per-reflector request
rate). The fusion framework lifts both into :class:`AttackEvent`, keeping
the source tag so intensity normalization and per-source statistics remain
well-defined, and annotates events with geolocation and origin-AS metadata
the way the paper does with NetAcuity and Routeviews.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, List, Optional, Set, Tuple

from repro.honeypot.detection import AmpPotEvent
from repro.net.addressing import slash16, slash24
from repro.net.geo import GeoDatabase, UNKNOWN_COUNTRY
from repro.net.routing import RoutingTable
from repro.telescope.rsdos import TelescopeEvent

SOURCE_TELESCOPE = "telescope"
SOURCE_HONEYPOT = "honeypot"

DAY = 86400.0

#: Version of the serialized AttackEvent record schema (JSONL feeds).
EVENT_SCHEMA_VERSION = 1

MAX_IPV4 = 2**32 - 1
MAX_PORT = 65535

#: Required serialized fields and their accepted types. Booleans are
#: excluded from the numeric fields: JSON ``true`` is not a timestamp.
_REQUIRED_FIELDS = (
    ("source", str),
    ("target", int),
    ("start_ts", (int, float)),
    ("end_ts", (int, float)),
    ("intensity", (int, float)),
)


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_event_dict(data) -> Optional[str]:
    """Validate one deserialized record against the AttackEvent schema.

    Returns ``None`` for a valid record, else a stable reason code
    (``missing-field:target``, ``out-of-range:start_ts``, ...) suitable
    for quarantine accounting. Validation is untrusted-input hardening:
    it never raises, whatever shape *data* has.
    """
    if not isinstance(data, dict):
        return "not-an-object"
    for name, types in _REQUIRED_FIELDS:
        if name not in data:
            return f"missing-field:{name}"
        value = data[name]
        if isinstance(value, bool) or not isinstance(value, types):
            return f"bad-type:{name}"
    if data["source"] not in (SOURCE_TELESCOPE, SOURCE_HONEYPOT):
        return "unknown-source"
    if not 0 <= data["target"] <= MAX_IPV4:
        return "out-of-range:target"
    if data["start_ts"] < 0:
        return "out-of-range:start_ts"
    if data["end_ts"] < data["start_ts"]:
        return "out-of-range:end_ts"
    if data["intensity"] < 0:
        return "out-of-range:intensity"
    ports = data.get("ports", ())
    if not isinstance(ports, (list, tuple)):
        return "bad-type:ports"
    for port in ports:
        if isinstance(port, bool) or not isinstance(port, int):
            return "bad-type:ports"
        if not 0 <= port <= MAX_PORT:
            return "out-of-range:ports"
    if "ip_proto" in data:
        value = data["ip_proto"]
        if isinstance(value, bool) or not isinstance(value, int):
            return "bad-type:ip_proto"
        if not 0 <= value <= 255:
            return "out-of-range:ip_proto"
    if "packets" in data:
        value = data["packets"]
        if isinstance(value, bool) or not isinstance(value, int):
            return "bad-type:packets"
        if value < 0:
            return "out-of-range:packets"
    if "reflector_protocol" in data:
        value = data["reflector_protocol"]
        if value is not None and not isinstance(value, str):
            return "bad-type:reflector_protocol"
    if "country" in data and not isinstance(data["country"], str):
        return "bad-type:country"
    if "asn" in data:
        value = data["asn"]
        if value is not None and (
            isinstance(value, bool) or not isinstance(value, int)
        ):
            return "bad-type:asn"
    return None


@dataclass(frozen=True)
class AttackEvent:
    """One attack event in the unified schema."""

    source: str
    target: int
    start_ts: float
    end_ts: float
    intensity: float
    ip_proto: int = 0
    ports: Tuple[int, ...] = ()
    reflector_protocol: Optional[str] = None
    packets: int = 0
    country: str = UNKNOWN_COUNTRY
    asn: Optional[int] = None

    def __post_init__(self) -> None:
        if self.source not in (SOURCE_TELESCOPE, SOURCE_HONEYPOT):
            raise ValueError(f"unknown event source: {self.source!r}")
        if self.end_ts < self.start_ts:
            raise ValueError("event ends before it starts")

    @property
    def duration(self) -> float:
        return self.end_ts - self.start_ts

    @property
    def start_day(self) -> int:
        """Day index the attack started on; multi-day attacks count here."""
        return int(self.start_ts // DAY)

    @property
    def single_port(self) -> bool:
        return len(self.ports) <= 1

    def overlaps(self, other: "AttackEvent") -> bool:
        return self.start_ts <= other.end_ts and other.start_ts <= self.end_ts

    @classmethod
    def from_telescope(cls, event: TelescopeEvent) -> "AttackEvent":
        return cls(
            source=SOURCE_TELESCOPE,
            target=event.victim,
            start_ts=event.start_ts,
            end_ts=event.end_ts,
            intensity=event.max_pps,
            ip_proto=event.ip_proto,
            ports=event.ports,
            packets=event.packets,
        )

    @classmethod
    def from_honeypot(cls, event: AmpPotEvent) -> "AttackEvent":
        return cls(
            source=SOURCE_HONEYPOT,
            target=event.victim,
            start_ts=event.start_ts,
            end_ts=event.end_ts,
            intensity=event.avg_rps,
            reflector_protocol=event.protocol,
            packets=event.requests,
        )

    def annotated(
        self, geo: GeoDatabase, routing: RoutingTable
    ) -> "AttackEvent":
        """Copy with country and origin-AS metadata attached."""
        return replace(
            self,
            country=geo.country(self.target),
            asn=routing.origin_asn(self.target),
        )


class AttackDataset:
    """An ordered collection of events from one source (or combined)."""

    def __init__(self, events: Iterable[AttackEvent], label: str = "") -> None:
        self.events: List[AttackEvent] = sorted(
            events, key=lambda e: (e.start_ts, e.target)
        )
        self.label = label

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def unique_targets(self) -> Set[int]:
        return {event.target for event in self.events}

    def unique_slash24s(self) -> Set[int]:
        return {slash24(event.target) for event in self.events}

    def unique_slash16s(self) -> Set[int]:
        return {slash16(event.target) for event in self.events}

    def unique_asns(self) -> Set[int]:
        return {
            event.asn for event in self.events if event.asn is not None
        }

    def summary(self) -> dict:
        """One row of Table 1."""
        return {
            "source": self.label,
            "events": len(self.events),
            "targets": len(self.unique_targets()),
            "slash24s": len(self.unique_slash24s()),
            "slash16s": len(self.unique_slash16s()),
            "asns": len(self.unique_asns()),
        }

    def annotated(
        self, geo: GeoDatabase, routing: RoutingTable
    ) -> "AttackDataset":
        return AttackDataset(
            (event.annotated(geo, routing) for event in self.events),
            label=self.label,
        )

    def filter(self, predicate) -> "AttackDataset":
        return AttackDataset(
            (event for event in self.events if predicate(event)),
            label=self.label,
        )

    def events_per_target(self) -> float:
        """Mean number of events per unique target (repeat victimization)."""
        targets = self.unique_targets()
        if not targets:
            return 0.0
        return len(self.events) / len(targets)

    @classmethod
    def from_telescope_events(
        cls, events: Iterable[TelescopeEvent], label: str = "Network Telescope"
    ) -> "AttackDataset":
        return cls((AttackEvent.from_telescope(e) for e in events), label)

    @classmethod
    def from_honeypot_events(
        cls, events: Iterable[AmpPotEvent], label: str = "Amplification Honeypot"
    ) -> "AttackDataset":
        return cls((AttackEvent.from_honeypot(e) for e in events), label)
