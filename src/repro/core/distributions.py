"""Empirical distributions: duration and intensity CDFs (Figures 2, 3, 4).

:class:`EmpiricalCDF` is the shared primitive: exact quantiles and
fraction-at-or-below queries over a sorted sample, which is all the paper's
CDF figures need.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.core.events import AttackEvent, SOURCE_HONEYPOT


class EmpiricalCDF:
    """Exact empirical cumulative distribution over a finite sample."""

    def __init__(self, values: Iterable[float]) -> None:
        self._values: List[float] = sorted(float(v) for v in values)
        if not self._values:
            raise ValueError("empirical CDF needs at least one value")

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> Sequence[float]:
        return self._values

    def fraction_at_or_below(self, x: float) -> float:
        """P(X <= x)."""
        return bisect.bisect_right(self._values, x) / len(self._values)

    def quantile(self, q: float) -> float:
        """The q-quantile (0 <= q <= 1), lower-interpolation convention."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        if q == 0.0:
            return self._values[0]
        index = min(len(self._values) - 1, int(np.ceil(q * len(self._values))) - 1)
        return self._values[index]

    @property
    def mean(self) -> float:
        return float(np.mean(self._values))

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    def summary_at(self, points: Sequence[float]) -> Dict[float, float]:
        """CDF values at the given x positions (figure reproduction aid)."""
        return {x: self.fraction_at_or_below(x) for x in points}


# X positions annotated on the paper's duration axis (Figure 2).
DURATION_POINTS = (
    10, 15, 30, 60, 300, 600, 900, 1800, 3600, 7200, 10800, 21600, 43200, 86400
)

# Log-decade positions of the intensity figures (Figures 3 and 4).
INTENSITY_POINTS = (1, 10, 100, 1000, 10_000, 100_000)


def duration_cdf(events: Iterable[AttackEvent]) -> EmpiricalCDF:
    """Distribution of event durations in seconds (Figure 2)."""
    return EmpiricalCDF(event.duration for event in events)


def intensity_cdf(events: Iterable[AttackEvent]) -> EmpiricalCDF:
    """Distribution of event intensities (Figures 3 and 4).

    The metric is source-specific: max pps at the telescope, average
    requests/second per reflector for the honeypot. Mixing sources in one
    CDF is almost always a mistake — pass a single-source event list.
    """
    return EmpiricalCDF(event.intensity for event in events)


def per_protocol_intensity_cdfs(
    events: Iterable[AttackEvent], top_n: int = 5
) -> Dict[str, EmpiricalCDF]:
    """Figure 4: one intensity CDF per top reflector protocol + overall."""
    by_protocol: Dict[str, List[float]] = {}
    all_values: List[float] = []
    for event in events:
        if event.source != SOURCE_HONEYPOT or event.reflector_protocol is None:
            continue
        by_protocol.setdefault(event.reflector_protocol, []).append(
            event.intensity
        )
        all_values.append(event.intensity)
    if not all_values:
        return {}
    top = sorted(by_protocol, key=lambda p: len(by_protocol[p]), reverse=True)
    cdfs: Dict[str, EmpiricalCDF] = {"Overall": EmpiricalCDF(all_values)}
    for protocol in top[:top_n]:
        cdfs[protocol] = EmpiricalCDF(by_protocol[protocol])
    return cdfs
