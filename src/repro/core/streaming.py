"""Near-realtime streaming fusion (the paper's closing challenge).

The conclusions note that while the underlying infrastructures collect in
near-realtime, *fusing* the feeds in near-realtime is the open challenge.
:class:`StreamingFusion` is that component: it consumes unified attack
events in time order, maintains the Table 1 aggregates incrementally, emits
per-day summaries on day rollover, and raises alerts when a day's volume or
Web impact spikes against the trailing baseline (the situational-awareness
output the paper envisions for operators).
"""

from __future__ import annotations

import hashlib
import json
import queue
import threading
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Set

from repro.core.events import AttackEvent, SOURCE_HONEYPOT, SOURCE_TELESCOPE
from repro.core.webmap import WebHostingIndex
from repro.net.addressing import slash16, slash24
from repro.obs.metrics import get_registry

DAY = 86400.0

#: Version of the serialized StreamingFusion state (rolling snapshots).
FUSION_STATE_VERSION = 1


@dataclass(frozen=True)
class DaySummary:
    """Aggregates for one completed day."""

    day: int
    attacks: int
    telescope_attacks: int
    honeypot_attacks: int
    unique_targets: int
    targeted_slash16s: int
    targeted_asns: int
    affected_sites: int


@dataclass(frozen=True)
class Alert:
    """A day whose activity spiked against the trailing baseline.

    Zero-baseline days (e.g. the quiet days following a collection outage)
    are non-alertable by construction — :class:`StreamingFusion` never
    raises an alert against an empty baseline — so a positive baseline is
    an invariant here, and ``factor`` is always finite.
    """

    day: int
    metric: str  # "attacks" or "affected_sites"
    value: int
    baseline: float

    def __post_init__(self) -> None:
        if self.baseline <= 0:
            raise ValueError("alerts require a positive baseline")

    @property
    def factor(self) -> float:
        return self.value / self.baseline


@dataclass
class _DayState:
    day: int
    attacks: int = 0
    telescope: int = 0
    honeypot: int = 0
    targets: Set[int] = field(default_factory=set)
    nets: Set[int] = field(default_factory=set)
    asns: Set[int] = field(default_factory=set)
    sites: Set[str] = field(default_factory=set)


class StreamingFusion:
    """Incremental fusion over a time-ordered unified event stream.

    Events must arrive in non-decreasing start-time order (each source is
    already time-sorted; merging two sorted feeds preserves this). A
    :class:`WebHostingIndex` is optional — without it the Web-impact metric
    stays at zero but everything else works.
    """

    def __init__(
        self,
        web_index: Optional[WebHostingIndex] = None,
        baseline_days: int = 7,
        alert_factor: float = 3.0,
        outage_days: Optional[Iterable[int]] = None,
    ) -> None:
        if baseline_days < 1:
            raise ValueError("baseline needs at least one day")
        if alert_factor <= 1.0:
            raise ValueError("alert factor must exceed 1")
        self.web_index = web_index
        self.baseline_days = baseline_days
        self.alert_factor = alert_factor
        # Days with known collection gaps: excluded from the trailing
        # baseline and never alerted on themselves, so an outage day's
        # artificially low volume cannot make the next healthy day look
        # like a spike (nor itself look like a dip-then-spike).
        self.outage_days: Set[int] = set(outage_days or ())
        self.summaries: List[DaySummary] = []
        self.alerts: List[Alert] = []
        # Running whole-stream aggregates (Table 1, incrementally).
        self.total_events = 0
        self._all_targets: Set[int] = set()
        self._all_slash24s: Set[int] = set()
        self._all_slash16s: Set[int] = set()
        self._all_asns: Set[int] = set()
        self._current: Optional[_DayState] = None
        self._recent_attacks: Deque[int] = deque(maxlen=baseline_days)
        self._recent_sites: Deque[int] = deque(maxlen=baseline_days)
        self._last_ts = float("-inf")

    # -- ingestion -----------------------------------------------------------

    def ingest(self, event: AttackEvent) -> List[DaySummary]:
        """Feed one event; returns any day summaries that just closed."""
        if event.start_ts < self._last_ts - DAY:
            raise ValueError(
                "event stream out of order beyond one-day tolerance"
            )
        self._last_ts = max(self._last_ts, event.start_ts)
        closed = self._roll_to(event.start_day)
        state = self._current
        state.attacks += 1
        if event.source == SOURCE_TELESCOPE:
            state.telescope += 1
        elif event.source == SOURCE_HONEYPOT:
            state.honeypot += 1
        state.targets.add(event.target)
        state.nets.add(slash16(event.target))
        if event.asn is not None:
            state.asns.add(event.asn)
        if self.web_index is not None:
            state.sites.update(
                self.web_index.sites_on(event.target, event.start_day)
            )
        self.total_events += 1
        self._all_targets.add(event.target)
        self._all_slash24s.add(slash24(event.target))
        self._all_slash16s.add(slash16(event.target))
        if event.asn is not None:
            self._all_asns.add(event.asn)
        return closed

    def finish(self) -> List[DaySummary]:
        """Close the stream, flushing the open day."""
        if self._current is None:
            return []
        closed = [self._close_day(self._current)]
        self._current = None
        return closed

    def _roll_to(self, day: int) -> List[DaySummary]:
        if self._current is None:
            self._current = _DayState(day)
            return []
        if day == self._current.day:
            return []
        if day < self._current.day:
            # Tolerated slight disorder: count toward the open day.
            return []
        closed = [self._close_day(self._current)]
        self._current = _DayState(day)
        return closed

    def note_outage(self, day: int) -> None:
        """Mark *day* as a collection gap (may be called mid-stream)."""
        self.outage_days.add(day)

    def _close_day(self, state: _DayState) -> DaySummary:
        summary = DaySummary(
            day=state.day,
            attacks=state.attacks,
            telescope_attacks=state.telescope,
            honeypot_attacks=state.honeypot,
            unique_targets=len(state.targets),
            targeted_slash16s=len(state.nets),
            targeted_asns=len(state.asns),
            affected_sites=len(state.sites),
        )
        self.summaries.append(summary)
        if summary.day in self.outage_days:
            # A gap day: its depressed counts are a measurement artifact,
            # not a quiet Internet — keep it out of the baseline entirely.
            return summary
        self._maybe_alert(summary)
        self._recent_attacks.append(summary.attacks)
        self._recent_sites.append(summary.affected_sites)
        return summary

    def _maybe_alert(self, summary: DaySummary) -> None:
        if len(self._recent_attacks) < self.baseline_days:
            return
        attack_baseline = sum(self._recent_attacks) / len(self._recent_attacks)
        # Zero-baseline days (all-quiet trailing window, e.g. right after
        # an unplanned outage) are non-alertable: there is nothing sane to
        # compare against, and alerting would only ever produce the inf
        # factor the paper's operators could not act on.
        if attack_baseline > 0 and summary.attacks > self.alert_factor * attack_baseline:
            self.alerts.append(
                Alert(summary.day, "attacks", summary.attacks, attack_baseline)
            )
        site_baseline = sum(self._recent_sites) / len(self._recent_sites)
        if site_baseline > 0 and summary.affected_sites > self.alert_factor * site_baseline:
            self.alerts.append(
                Alert(
                    summary.day,
                    "affected_sites",
                    summary.affected_sites,
                    site_baseline,
                )
            )

    # -- running Table 1 ------------------------------------------------------

    def running_summary(self) -> Dict[str, int]:
        """The combined Table 1 row, as of everything ingested so far."""
        return {
            "events": self.total_events,
            "targets": len(self._all_targets),
            "slash24s": len(self._all_slash24s),
            "slash16s": len(self._all_slash16s),
            "asns": len(self._all_asns),
        }

    # -- durable state --------------------------------------------------------

    def state_dict(self) -> Dict:
        """The complete fused state as a canonical JSON-able document.

        Everything mutable is captured (running aggregates, the open day,
        closed summaries, alerts, baselines), with sets rendered as sorted
        lists so two fusions that ingested the same events byte-agree. The
        web index is *configuration*, not state: a restored fusion gets it
        re-attached by the caller.
        """
        current = None
        if self._current is not None:
            current = {
                "day": self._current.day,
                "attacks": self._current.attacks,
                "telescope": self._current.telescope,
                "honeypot": self._current.honeypot,
                "targets": sorted(self._current.targets),
                "nets": sorted(self._current.nets),
                "asns": sorted(self._current.asns),
                "sites": sorted(self._current.sites),
            }
        return {
            "version": FUSION_STATE_VERSION,
            "baseline_days": self.baseline_days,
            "alert_factor": self.alert_factor,
            "outage_days": sorted(self.outage_days),
            "summaries": [asdict(s) for s in self.summaries],
            "alerts": [
                {
                    "day": a.day,
                    "metric": a.metric,
                    "value": a.value,
                    "baseline": a.baseline,
                }
                for a in self.alerts
            ],
            "total_events": self.total_events,
            "all_targets": sorted(self._all_targets),
            "all_slash24s": sorted(self._all_slash24s),
            "all_slash16s": sorted(self._all_slash16s),
            "all_asns": sorted(self._all_asns),
            "current": current,
            "recent_attacks": list(self._recent_attacks),
            "recent_sites": list(self._recent_sites),
            "last_ts": (
                None if self._last_ts == float("-inf") else self._last_ts
            ),
        }

    @classmethod
    def from_state_dict(
        cls, state: Dict, web_index: Optional[WebHostingIndex] = None
    ) -> "StreamingFusion":
        """Rebuild a fusion from :meth:`state_dict` output.

        Raises :class:`ValueError` on a version the build does not read —
        snapshot loaders turn that into a fall-back to an older snapshot.
        """
        version = state.get("version")
        if version != FUSION_STATE_VERSION:
            raise ValueError(
                f"fusion state v{version!r}, this build reads "
                f"v{FUSION_STATE_VERSION}"
            )
        fusion = cls(
            web_index=web_index,
            baseline_days=int(state["baseline_days"]),
            alert_factor=float(state["alert_factor"]),
            outage_days=state.get("outage_days", ()),
        )
        fusion.summaries = [DaySummary(**s) for s in state["summaries"]]
        fusion.alerts = [
            Alert(
                day=a["day"],
                metric=a["metric"],
                value=a["value"],
                baseline=a["baseline"],
            )
            for a in state["alerts"]
        ]
        fusion.total_events = int(state["total_events"])
        fusion._all_targets = set(state["all_targets"])
        fusion._all_slash24s = set(state["all_slash24s"])
        fusion._all_slash16s = set(state["all_slash16s"])
        fusion._all_asns = set(state["all_asns"])
        current = state.get("current")
        if current is not None:
            fusion._current = _DayState(
                day=current["day"],
                attacks=current["attacks"],
                telescope=current["telescope"],
                honeypot=current["honeypot"],
                targets=set(current["targets"]),
                nets=set(current["nets"]),
                asns=set(current["asns"]),
                sites=set(current["sites"]),
            )
        fusion._recent_attacks.extend(state["recent_attacks"])
        fusion._recent_sites.extend(state["recent_sites"])
        last_ts = state.get("last_ts")
        fusion._last_ts = float("-inf") if last_ts is None else last_ts
        return fusion

    def state_digest(self) -> str:
        """SHA-256 over the canonical state — two fusions that ingested
        the same stream (in any interleaving of crash/recover) agree."""
        canonical = json.dumps(
            self.state_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class BoundedStreamingFusion:
    """A :class:`StreamingFusion` behind a bounded queue with backpressure.

    In the near-realtime deployment the producers (the feed collectors)
    and the consumer (the fusion) run at different speeds. An unbounded
    hand-off queue lets a slow consumer grow memory without limit — the
    classic way a streaming pipeline dies hours into an incident, which
    is precisely when the paper's operators need it. Here the hand-off is
    a ``queue.Queue(maxsize=...)``: when the consumer falls behind,
    :meth:`ingest` *blocks* the producer (backpressure) instead of
    buffering, so memory stays bounded at ``maxsize`` events no matter
    how lopsided the speeds are.

    The consumer runs on a daemon thread owned by this object; call
    :meth:`close` to flush and join it. An exception inside the consumer
    (e.g. an out-of-order stream) is captured and re-raised to the
    producer on the next :meth:`ingest`/:meth:`close`, so errors are not
    silently swallowed by the thread boundary.
    """

    _SENTINEL = object()

    def __init__(
        self,
        fusion: Optional[StreamingFusion] = None,
        maxsize: int = 1024,
        metrics=None,
        **fusion_kwargs,
    ) -> None:
        if maxsize < 1:
            raise ValueError("queue bound must be at least one event")
        self.fusion = (
            fusion if fusion is not None else StreamingFusion(**fusion_kwargs)
        )
        self.maxsize = maxsize
        self._queue: "queue.Queue" = queue.Queue(maxsize=maxsize)
        self._error: Optional[BaseException] = None
        self._closed = False
        #: Producer-observed backpressure: ingest calls that had to wait.
        self.blocked_puts = 0
        registry = metrics if metrics is not None else get_registry()
        self._m_ingested = registry.counter(
            "stream_events_ingested_total", "events handed to the fusion queue"
        )
        self._m_blocked = registry.counter(
            "stream_backpressure_waits_total",
            "ingest calls that blocked on a full queue",
        )
        self._m_depth = registry.gauge(
            "stream_queue_depth", "events currently queued for fusion"
        )
        self._consumer = threading.Thread(
            target=self._drain, name="repro-stream-fusion", daemon=True
        )
        self._consumer.start()

    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is self._SENTINEL:
                    self.fusion.finish()
                    return
                if self._error is None:
                    self.fusion.ingest(item)
            except BaseException as exc:  # noqa: BLE001 - re-raised to producer
                self._error = exc
            finally:
                self._queue.task_done()
                self._m_depth.set(self._queue.qsize())

    def _check_error(self) -> None:
        if self._error is not None:
            error, self._error = self._error, None
            raise error

    def ingest(self, event: AttackEvent) -> None:
        """Enqueue one event; blocks when the consumer is ``maxsize`` behind."""
        if self._closed:
            raise RuntimeError("stream already closed")
        self._check_error()
        if self._queue.full():
            self.blocked_puts += 1
            self._m_blocked.inc()
        self._queue.put(event)
        self._m_ingested.inc()
        self._m_depth.set(self._queue.qsize())

    def offer(self, event: AttackEvent) -> bool:
        """Non-blocking ingest: ``False`` when the queue is full.

        The overload-safe alternative to :meth:`ingest` for callers that
        must not block (a network intake answering clients): instead of
        exerting backpressure on the producer thread, a full queue is
        reported to the caller, who decides to shed (and tell the client
        to retry) rather than stall.
        """
        if self._closed:
            raise RuntimeError("stream already closed")
        self._check_error()
        try:
            self._queue.put_nowait(event)
        except queue.Full:
            self.blocked_puts += 1
            self._m_blocked.inc()
            return False
        self._m_ingested.inc()
        self._m_depth.set(self._queue.qsize())
        return True

    def ingest_many(self, events: Iterable[AttackEvent]) -> None:
        for event in events:
            self.ingest(event)

    @property
    def depth(self) -> int:
        """Events currently queued (never exceeds ``maxsize``)."""
        return self._queue.qsize()

    def close(self) -> StreamingFusion:
        """Flush, stop the consumer, and hand back the fused state."""
        if not self._closed:
            self._closed = True
            self._queue.put(self._SENTINEL)
            self._consumer.join()
        self._check_error()
        return self.fusion
