"""Country, protocol and AS rankings (Tables 4, 5 and 6).

Country rankings count *unique target IP addresses* per country, as the
paper does; protocol distributions count *events*.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.core.events import AttackEvent
from repro.net.packet import ip_proto_name


@dataclass(frozen=True)
class RankedEntry:
    """One row of a ranking table."""

    key: str
    count: int
    share: float


def country_ranking(
    events: Iterable[AttackEvent], top_n: int = 5
) -> List[RankedEntry]:
    """Top countries by unique targeted addresses, plus an "Other" row."""
    country_by_target: Dict[int, str] = {}
    for event in events:
        country_by_target.setdefault(event.target, event.country)
    counts = Counter(country_by_target.values())
    total = sum(counts.values())
    if total == 0:
        return []
    ranked = [
        RankedEntry(country, count, count / total)
        for country, count in counts.most_common(top_n)
    ]
    covered = sum(entry.count for entry in ranked)
    ranked.append(RankedEntry("Other", total - covered, (total - covered) / total))
    return ranked


def country_rank_of(
    events: Iterable[AttackEvent], country: str
) -> Optional[int]:
    """1-based rank of *country* by unique targets (None if absent).

    Used to verify the paper's Table 4 anomalies (e.g. Japan ranking far
    below its address-space usage).
    """
    country_by_target: Dict[int, str] = {}
    for event in events:
        country_by_target.setdefault(event.target, event.country)
    counts = Counter(country_by_target.values())
    for rank, (name, _) in enumerate(counts.most_common(), start=1):
        if name == country:
            return rank
    return None


def ip_protocol_distribution(
    events: Iterable[AttackEvent],
) -> Dict[str, float]:
    """Share of events per IP protocol (Table 5); keys are protocol names."""
    counts = Counter(ip_proto_name(event.ip_proto) for event in events)
    total = sum(counts.values())
    if total == 0:
        return {}
    return {name: count / total for name, count in counts.items()}


def reflection_protocol_distribution(
    events: Iterable[AttackEvent],
) -> List[RankedEntry]:
    """Events per reflector protocol, descending (Table 6)."""
    counts = Counter(
        event.reflector_protocol
        for event in events
        if event.reflector_protocol is not None
    )
    total = sum(counts.values())
    if total == 0:
        return []
    return [
        RankedEntry(protocol, count, count / total)
        for protocol, count in counts.most_common()
    ]


def asn_ranking(
    events: Iterable[AttackEvent], top_n: int = 5
) -> List[RankedEntry]:
    """Top origin ASes by unique targeted addresses."""
    asn_by_target: Dict[int, Optional[int]] = {}
    for event in events:
        asn_by_target.setdefault(event.target, event.asn)
    counts = Counter(
        str(asn) for asn in asn_by_target.values() if asn is not None
    )
    total = sum(counts.values())
    if total == 0:
        return []
    return [
        RankedEntry(asn, count, count / total)
        for asn, count in counts.most_common(top_n)
    ]
