"""The characterization framework: fusion and analysis of DoS data sets.

This package is the paper's contribution proper — everything under
:mod:`repro.telescope`, :mod:`repro.honeypot`, :mod:`repro.dns` and
:mod:`repro.dps` produces the four raw data sets; the modules here unify,
correlate and characterize them:

* :mod:`repro.core.events` / :mod:`repro.core.fusion` — the unified attack
  event model, Table 1 summaries, shared-target and joint-attack analysis;
* :mod:`repro.core.timeseries`, :mod:`repro.core.rankings`,
  :mod:`repro.core.distributions`, :mod:`repro.core.ports`,
  :mod:`repro.core.intensity` — Section 4's characterizations;
* :mod:`repro.core.webmap`, :mod:`repro.core.cohosting` — Section 5's
  Web-impact analysis;
* :mod:`repro.core.taxonomy`, :mod:`repro.core.migration` — Section 6's
  DPS-migration study;
* :mod:`repro.core.report` — textual renderers for every table and figure.
"""

from repro.core.events import (
    AttackDataset,
    AttackEvent,
    SOURCE_HONEYPOT,
    SOURCE_TELESCOPE,
)
from repro.core.fusion import FusedDataset, JointAttack

__all__ = [
    "AttackDataset",
    "AttackEvent",
    "SOURCE_HONEYPOT",
    "SOURCE_TELESCOPE",
    "FusedDataset",
    "JointAttack",
]
