"""Boundary-sensitivity analysis (Section 6's validation step).

Because the attack and DPS data sets cover the same range, attacks near the
window edges can be misclassified: an attack overlapping the start may have
already prompted migration (wrongly counted preexisting), and one near the
end may trigger migration after the window (wrongly counted non-migrating).
The paper validates by shortening the attack observation period one month
on each side and re-running the classification; this module implements that
re-analysis and quantifies the drift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.core.events import AttackEvent
from repro.core.taxonomy import TaxonomyCounts, classify_sites, taxonomy_counts
from repro.core.webmap import WebImpactAnalysis

DAY = 86400.0


@dataclass(frozen=True)
class BoundaryDrift:
    """Class-distribution change when the attack window is trimmed."""

    full: TaxonomyCounts
    trimmed: TaxonomyCounts
    trim_days: int

    @property
    def attacked_fraction_drift(self) -> float:
        return abs(
            self.full.attacked_fraction - self.trimmed.attacked_fraction
        )

    @property
    def migrating_fraction_drift(self) -> float:
        return abs(
            self.full.attacked_migrating_fraction
            - self.trimmed.attacked_migrating_fraction
        )

    @property
    def preexisting_fraction_drift(self) -> float:
        return abs(
            self.full.attacked_preexisting_fraction
            - self.trimmed.attacked_preexisting_fraction
        )

    def is_negligible(self, tolerance: float = 0.05) -> bool:
        """The paper's conclusion: trimming has negligible effect."""
        return (
            self.attacked_fraction_drift <= tolerance
            and self.migrating_fraction_drift <= tolerance
            and self.preexisting_fraction_drift <= tolerance
        )


def trim_events(
    events: Iterable[AttackEvent], n_days: int, trim_days: int
) -> List[AttackEvent]:
    """Drop events starting within *trim_days* of either window edge."""
    if trim_days < 0 or 2 * trim_days >= n_days:
        raise ValueError("trim must leave a non-empty window")
    low, high = trim_days, n_days - trim_days
    return [e for e in events if low <= e.start_day < high]


def boundary_sensitivity(
    events: Iterable[AttackEvent],
    impact: WebImpactAnalysis,
    first_seen: Dict[str, int],
    dps_first_day: Dict[str, int],
    n_days: int,
    trim_days: int = 30,
) -> BoundaryDrift:
    """Re-run the Figure 8 classification on a trimmed attack window."""
    event_list = list(events)

    def taxonomy_for(event_subset: List[AttackEvent]) -> TaxonomyCounts:
        histories = impact.site_histories(event_subset)
        first_attack = {
            domain: history.first_attack_day()
            for domain, history in histories.items()
        }
        return taxonomy_counts(
            classify_sites(first_seen, first_attack, dps_first_day)
        )

    full = taxonomy_for(event_list)
    trimmed = taxonomy_for(trim_events(event_list, n_days, trim_days))
    return BoundaryDrift(full=full, trimmed=trimmed, trim_days=trim_days)
