"""Web-site taxonomy (Figure 8).

Classifies every Web site in the measured namespace along the paper's tree:

    all sites
      |- attack observed
      |    |- preexisting customer
      |    |- migrating            (DPS appears after first observed attack)
      |    '- non-migrating
      '- no attack observed
           |- preexisting customer
           |- migrating            (DPS appears after the site is first seen)
           '- non-migrating

"Preexisting" means protected from the beginning of the data set or from
the first day the site appears in the DNS. Sites protected before their
first observed attack (but after first appearing) are counted as
preexisting: they did not migrate *because of* an observed attack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

CLASS_PREEXISTING = "preexisting"
CLASS_MIGRATING = "migrating"
CLASS_NON_MIGRATING = "non-migrating"


@dataclass(frozen=True)
class SiteClassification:
    """One Web site's position in the taxonomy."""

    domain: str
    attacked: bool
    customer_class: str


@dataclass
class TaxonomyCounts:
    """Aggregated Figure 8 node populations."""

    total: int = 0
    attacked: int = 0
    not_attacked: int = 0
    attacked_preexisting: int = 0
    attacked_migrating: int = 0
    attacked_non_migrating: int = 0
    unattacked_preexisting: int = 0
    unattacked_migrating: int = 0
    unattacked_non_migrating: int = 0

    def fraction(self, part: int, whole: int) -> float:
        return part / whole if whole else 0.0

    @property
    def attacked_fraction(self) -> float:
        """The paper's 64 % headline."""
        return self.fraction(self.attacked, self.total)

    @property
    def attacked_migrating_fraction(self) -> float:
        """The paper's 4.31 % (of attacked sites)."""
        return self.fraction(self.attacked_migrating, self.attacked)

    @property
    def unattacked_migrating_fraction(self) -> float:
        """The paper's 3.32 % (of unattacked sites)."""
        return self.fraction(self.unattacked_migrating, self.not_attacked)

    @property
    def attacked_preexisting_fraction(self) -> float:
        return self.fraction(self.attacked_preexisting, self.attacked)

    @property
    def unattacked_preexisting_fraction(self) -> float:
        return self.fraction(self.unattacked_preexisting, self.not_attacked)

    @property
    def attacked_protected_fraction(self) -> float:
        """Preexisting or migrating, among attacked sites (paper: 22.1 %)."""
        return self.fraction(
            self.attacked_preexisting + self.attacked_migrating, self.attacked
        )

    @property
    def unattacked_protected_fraction(self) -> float:
        """Preexisting or migrating, among unattacked sites (paper: 4.2 %)."""
        return self.fraction(
            self.unattacked_preexisting + self.unattacked_migrating,
            self.not_attacked,
        )


def classify_sites(
    first_seen: Dict[str, int],
    first_attack_day: Dict[str, int],
    dps_first_day: Dict[str, int],
) -> List[SiteClassification]:
    """Classify every site in *first_seen* along the Figure 8 tree."""
    classifications: List[SiteClassification] = []
    for domain, seen_day in first_seen.items():
        attack_day = first_attack_day.get(domain)
        dps_day = dps_first_day.get(domain)
        attacked = attack_day is not None
        if dps_day is None:
            customer_class = CLASS_NON_MIGRATING
        elif attacked:
            if dps_day > attack_day:
                customer_class = CLASS_MIGRATING
            else:
                customer_class = CLASS_PREEXISTING
        else:
            if dps_day > seen_day:
                customer_class = CLASS_MIGRATING
            else:
                customer_class = CLASS_PREEXISTING
        classifications.append(
            SiteClassification(domain, attacked, customer_class)
        )
    return classifications


def taxonomy_counts(
    classifications: Iterable[SiteClassification],
) -> TaxonomyCounts:
    counts = TaxonomyCounts()
    for classification in classifications:
        counts.total += 1
        if classification.attacked:
            counts.attacked += 1
            if classification.customer_class == CLASS_PREEXISTING:
                counts.attacked_preexisting += 1
            elif classification.customer_class == CLASS_MIGRATING:
                counts.attacked_migrating += 1
            else:
                counts.attacked_non_migrating += 1
        else:
            counts.not_attacked += 1
            if classification.customer_class == CLASS_PREEXISTING:
                counts.unattacked_preexisting += 1
            elif classification.customer_class == CLASS_MIGRATING:
                counts.unattacked_migrating += 1
            else:
                counts.unattacked_non_migrating += 1
    return counts
