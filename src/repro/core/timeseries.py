"""Daily time series over attack events (Figures 1, 5 and 7's x-axis).

Every series counts multi-day attacks only toward the day on which the
attack started, matching the paper's convention (footnote 15).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set

import numpy as np

from repro.core.events import AttackEvent
from repro.net.addressing import slash16


@dataclass
class DailySeries:
    """Per-day counts for one event collection (one panel of Figure 1)."""

    label: str
    n_days: int
    attacks: np.ndarray
    unique_targets: np.ndarray
    targeted_slash16s: np.ndarray
    targeted_asns: np.ndarray

    def mean_daily_attacks(self) -> float:
        return float(self.attacks.mean()) if self.n_days else 0.0

    def peak_day(self) -> int:
        return int(self.attacks.argmax()) if self.n_days else 0

    def as_dict(self) -> Dict[str, List[int]]:
        return {
            "attacks": self.attacks.tolist(),
            "unique_targets": self.unique_targets.tolist(),
            "targeted_slash16s": self.targeted_slash16s.tolist(),
            "targeted_asns": self.targeted_asns.tolist(),
        }


def daily_series(
    events: Iterable[AttackEvent], n_days: int, label: str = ""
) -> DailySeries:
    """Build the four per-day curves of one Figure 1 panel."""
    if n_days <= 0:
        raise ValueError("n_days must be positive")
    attacks = np.zeros(n_days, dtype=np.int64)
    targets: List[Set[int]] = [set() for _ in range(n_days)]
    nets: List[Set[int]] = [set() for _ in range(n_days)]
    asns: List[Set[int]] = [set() for _ in range(n_days)]
    for event in events:
        day = event.start_day
        if not 0 <= day < n_days:
            continue
        attacks[day] += 1
        targets[day].add(event.target)
        nets[day].add(slash16(event.target))
        if event.asn is not None:
            asns[day].add(event.asn)
    return DailySeries(
        label=label,
        n_days=n_days,
        attacks=attacks,
        unique_targets=np.array([len(s) for s in targets], dtype=np.int64),
        targeted_slash16s=np.array([len(s) for s in nets], dtype=np.int64),
        targeted_asns=np.array([len(s) for s in asns], dtype=np.int64),
    )


def figure1_series(
    fused, n_days: int
) -> Dict[str, DailySeries]:
    """The three panels of Figure 1: telescope, honeypot, combined."""
    return {
        "telescope": daily_series(fused.telescope, n_days, "Telescope"),
        "honeypot": daily_series(fused.honeypot, n_days, "Honeypot"),
        "combined": daily_series(fused.combined, n_days, "Combined"),
    }
