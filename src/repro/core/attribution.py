"""Target attribution: who is behind an attacked IP address?

Section 5 of the paper identifies the large parties behind attacked
addresses using three kinds of evidence, in decreasing specificity:

1. a **common CNAME** the co-hosted sites expand through (this is how
   Wix — hosted inside AWS — is identified even though routing points at
   Amazon);
2. a **common name server** in the sites' NS records;
3. **BGP routing** (the origin AS of the address).

:class:`TargetAttributor` implements the same cascade over the simulated
DNS evidence, with DPS prefixes recognized explicitly (the paper observed
attacks landing on CenturyLink's and DOSarrest's protection
infrastructure).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.events import AttackEvent
from repro.dns.nameservers import REGISTRAR_NS
from repro.dns.records import HostingState
from repro.dns.zone import Zone
from repro.dps.providers import DPSProvider
from repro.internet.topology import InternetTopology

EVIDENCE_CNAME = "cname"
EVIDENCE_NS = "ns"
EVIDENCE_ROUTING = "routing"
EVIDENCE_DPS = "dps-prefix"


@dataclass(frozen=True)
class Attribution:
    """The party identified behind one address, with its evidence type."""

    address: int
    party: str
    evidence: str

    @property
    def is_specific(self) -> bool:
        """CNAME/NS evidence identifies the platform, not just the AS."""
        return self.evidence in (EVIDENCE_CNAME, EVIDENCE_NS)


class TargetAttributor:
    """Attributes addresses using DNS evidence with a routing fallback."""

    def __init__(
        self,
        zones: Sequence[Zone],
        topology: InternetTopology,
        providers: Sequence[DPSProvider] = (),
        ignore_ns: Sequence[str] = REGISTRAR_NS,
    ) -> None:
        self._topology = topology
        self._providers = list(providers)
        # Generic registrar name servers are used by unrelated self-hosted
        # sites; they identify the registrar's DNS service, not the party
        # behind the attacked address, so they are not evidence.
        self._ignore_ns = frozenset(ignore_ns)
        # Evidence per IP: dominant CNAME suffix and dominant NS name among
        # the sites hosted there over the window.
        self._cname_evidence: Dict[int, Counter] = {}
        self._ns_evidence: Dict[int, Counter] = {}
        for zone in zones:
            for domain in zone.domains:
                for state in domain.states():
                    self._record_state(state)

    def _record_state(self, state: HostingState) -> None:
        if state.cname:
            suffix = _cname_suffix(state.cname)
            self._cname_evidence.setdefault(state.ip, Counter())[suffix] += 1
        for ns_name in state.ns:
            if ns_name in self._ignore_ns:
                continue
            self._ns_evidence.setdefault(state.ip, Counter())[ns_name] += 1

    def attribute(self, address: int) -> Attribution:
        """The most specific attribution available for *address*."""
        cnames = self._cname_evidence.get(address)
        if cnames:
            suffix, _ = cnames.most_common(1)[0]
            return Attribution(address, _party_from_label(suffix), EVIDENCE_CNAME)
        ns_names = self._ns_evidence.get(address)
        if ns_names:
            name, _ = ns_names.most_common(1)[0]
            return Attribution(address, _party_from_label(name), EVIDENCE_NS)
        for provider in self._providers:
            if provider.matches_address(address):
                return Attribution(address, provider.name, EVIDENCE_DPS)
        asn = self._topology.routing.origin_asn(address)
        autonomous_system = (
            self._topology.as_by_asn(asn) if asn is not None else None
        )
        party = autonomous_system.name if autonomous_system else "unknown"
        return Attribution(address, party, EVIDENCE_ROUTING)

    def top_attacked_parties(
        self,
        events: Iterable[AttackEvent],
        top_n: int = 5,
        weight_by_events: bool = True,
    ) -> List[Tuple[str, int]]:
        """The most frequently attacked parties (the paper's GoDaddy /
        Google Cloud / Wix finding). Counts events per party by default,
        unique addresses otherwise."""
        counts: Counter = Counter()
        seen = set()
        for event in events:
            if not weight_by_events:
                if event.target in seen:
                    continue
                seen.add(event.target)
            counts[self.attribute(event.target).party] += 1
        return counts.most_common(top_n)


def _cname_suffix(cname: str) -> str:
    """The shared tail of a customer-specific CNAME (drop the first label)."""
    _, _, rest = cname.partition(".")
    return rest or cname


def _party_from_label(label: str) -> str:
    """Human-readable party from a DNS label like 'wix.example' or
    'ns1.godaddy.example'."""
    parts = label.split(".")
    core = parts[-2] if len(parts) >= 2 else parts[0]
    if core.endswith("-dns") or core.endswith("-shield"):
        core = core.rsplit("-", 1)[0]
    return core
