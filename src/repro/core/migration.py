"""Migration correlation analysis (Figures 9, 10, 11).

Joins per-site attack histories with detected DPS adoption days to answer
the paper's three questions:

* Does attack *repetition* drive migration? (Figure 9 — it does not: the
  migrating population's attack-count CDF sits above the overall one.)
* Does attack *intensity* accelerate migration? (Figure 10 — strongly: the
  top-0.1 %-intensity victims migrate almost entirely within days.)
* Does attack *duration* matter? (Figure 11 — only weakly; durations come
  from the honeypot data set because a collapsing victim truncates
  telescope-observed durations.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.distributions import EmpiricalCDF
from repro.core.events import SOURCE_HONEYPOT
from repro.core.intensity import IntensityModel, top_fraction_threshold
from repro.core.webmap import SiteAttackHistory


@dataclass(frozen=True)
class MigrationObservation:
    """One migrating Web site with its triggering-attack attributes.

    ``days_to_migration`` measures from the most intense pre-migration
    attack (the plausible trigger) to the first day the site is seen
    using a DPS.
    """

    domain: str
    migration_day: int
    trigger_day: int
    days_to_migration: int
    trigger_intensity: float  # normalized
    trigger_duration: float
    trigger_source: str
    n_attacks_total: int


class MigrationAnalysis:
    """Builds migration observations and the paper's three figures."""

    def __init__(
        self,
        histories: Dict[str, SiteAttackHistory],
        dps_first_day: Dict[str, int],
        intensity_model: IntensityModel,
    ) -> None:
        self.histories = histories
        self.dps_first_day = dps_first_day
        self.intensity_model = intensity_model
        self.observations = self._build_observations()
        # The paper's Figure 10 classes are percentiles of the *site-level*
        # normalized intensity distribution (Table 9): every attacked site's
        # maximum normalized intensity, migrating or not.
        self.site_intensities: List[float] = [
            max(intensity_model.normalized(e) for e in history.events)
            for history in histories.values()
        ]

    def _build_observations(self) -> List[MigrationObservation]:
        observations: List[MigrationObservation] = []
        for domain, history in self.histories.items():
            dps_day = self.dps_first_day.get(domain)
            if dps_day is None:
                continue
            prior = [e for e in history.events if e.start_day < dps_day]
            if not prior:
                continue  # protected before any observed attack: preexisting
            trigger = max(prior, key=self.intensity_model.normalized)
            observations.append(
                MigrationObservation(
                    domain=domain,
                    migration_day=dps_day,
                    trigger_day=trigger.start_day,
                    days_to_migration=max(1, dps_day - trigger.start_day),
                    trigger_intensity=self.intensity_model.normalized(trigger),
                    trigger_duration=trigger.duration,
                    trigger_source=trigger.source,
                    n_attacks_total=history.n_attacks,
                )
            )
        return observations

    # -- Figure 9 --------------------------------------------------------------

    def attack_frequency_cdf_all(self) -> EmpiricalCDF:
        """Attack-count distribution over all attacked Web sites."""
        return EmpiricalCDF(
            history.n_attacks for history in self.histories.values()
        )

    def attack_frequency_cdf_migrating(self) -> EmpiricalCDF:
        """Attack-count distribution over migrating Web sites only."""
        if not self.observations:
            raise ValueError("no migrating sites observed")
        return EmpiricalCDF(o.n_attacks_total for o in self.observations)

    def repetition_effect(self, threshold: int = 5) -> Tuple[float, float]:
        """(all, migrating) fractions attacked more than *threshold* times.

        The paper reports 7.65 % vs 2.17 % at threshold 5 — repetition does
        not push sites toward protection.
        """
        all_cdf = self.attack_frequency_cdf_all()
        migrating_cdf = self.attack_frequency_cdf_migrating()
        return (
            1.0 - all_cdf.fraction_at_or_below(threshold),
            1.0 - migrating_cdf.fraction_at_or_below(threshold),
        )

    # -- Figure 10 --------------------------------------------------------------

    def delay_cdf(
        self, top_fraction: Optional[float] = None
    ) -> EmpiricalCDF:
        """Days-to-migration CDF, optionally restricted by trigger intensity.

        ``top_fraction=0.01`` keeps migrations whose trigger intensity falls
        in the top 1 % of the *site-level* normalized intensity distribution
        — the Table 9 distribution, exactly as the paper slices Figure 10.
        """
        observations = self.observations
        if not observations:
            raise ValueError("no migrating sites observed")
        if top_fraction is not None:
            threshold = top_fraction_threshold(
                self.site_intensities, top_fraction
            )
            observations = [
                o for o in observations if o.trigger_intensity >= threshold
            ]
            if not observations:
                raise ValueError(
                    f"no migrations in the top {top_fraction:.2%} intensity class"
                )
        return EmpiricalCDF(o.days_to_migration for o in observations)

    def migration_within(
        self, days: int, top_fraction: Optional[float] = None
    ) -> float:
        """Fraction of migrating sites that migrated within *days* days."""
        return self.delay_cdf(top_fraction).fraction_at_or_below(days)

    # -- Figure 11 --------------------------------------------------------------

    def delay_cdf_long_attacks(
        self, min_duration: float = 4 * 3600.0
    ) -> EmpiricalCDF:
        """Days-to-migration for sites whose honeypot-observed attack lasted
        at least *min_duration* seconds before migration."""
        delays: List[int] = []
        for domain, history in self.histories.items():
            dps_day = self.dps_first_day.get(domain)
            if dps_day is None:
                continue
            long_prior = [
                e
                for e in history.events
                if e.source == SOURCE_HONEYPOT
                and e.start_day < dps_day
                and e.duration >= min_duration
            ]
            if not long_prior:
                continue
            trigger = max(long_prior, key=lambda e: e.duration)
            delays.append(max(1, dps_day - trigger.start_day))
        if not delays:
            raise ValueError("no migrations following long attacks")
        return EmpiricalCDF(delays)
