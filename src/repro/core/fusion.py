"""Multi-source data fusion: Table 1, shared targets, joint attacks.

The framework's central correlation primitive: attacks seen by both
infrastructures against the same victim. Targets present in both data sets
are *shared*; pairs of events whose time intervals overlap are *joint
attacks* (e.g. a SYN flood combined with an NTP reflection attack), the
phenomenon Section 4 quantifies at 137 k victims.
"""

from __future__ import annotations

import bisect
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.events import (
    AttackDataset,
    AttackEvent,
)
from repro.net.packet import PROTO_TCP, PROTO_UDP


@dataclass(frozen=True)
class JointAttack:
    """A telescope event and a honeypot event overlapping in time."""

    target: int
    telescope_event: AttackEvent
    honeypot_event: AttackEvent


@dataclass
class JointAnalysis:
    """Distribution shifts among jointly attacking events (Section 4)."""

    n_joint_targets: int
    n_shared_targets: int
    single_port_fraction: float
    udp_27015_fraction: float
    tcp_http_fraction: float
    reflection_protocol_shares: Dict[str, float]
    top_asns: List[Tuple[Optional[int], float]]
    top_countries: List[Tuple[str, float]]


class FusedDataset:
    """The combined view over the telescope and honeypot data sets."""

    def __init__(
        self, telescope: AttackDataset, honeypot: AttackDataset
    ) -> None:
        self.telescope = telescope
        self.honeypot = honeypot
        self.combined = AttackDataset(
            list(telescope.events) + list(honeypot.events), label="Combined"
        )

    # -- Table 1 -------------------------------------------------------------

    def summary_rows(self) -> List[dict]:
        return [
            self.telescope.summary(),
            self.honeypot.summary(),
            self.combined.summary(),
        ]

    # -- shared and joint targets ---------------------------------------------

    def shared_targets(self) -> Set[int]:
        """Victims present in both data sets (not necessarily simultaneous)."""
        return self.telescope.unique_targets() & self.honeypot.unique_targets()

    def joint_attacks(self) -> List[JointAttack]:
        """All (telescope, honeypot) event pairs overlapping in time.

        Uses per-target interval lists with binary search so the pairing
        stays near-linear in the event count.
        """
        shared = self.shared_targets()
        by_target: Dict[int, List[AttackEvent]] = defaultdict(list)
        for event in self.honeypot.events:
            if event.target in shared:
                by_target[event.target].append(event)
        # Honeypot events arrive sorted by start_ts from AttackDataset.
        start_keys = {
            target: [e.start_ts for e in events]
            for target, events in by_target.items()
        }
        joints: List[JointAttack] = []
        for tel_event in self.telescope.events:
            candidates = by_target.get(tel_event.target)
            if not candidates:
                continue
            starts = start_keys[tel_event.target]
            # Candidates starting after the telescope event ends cannot
            # overlap; scan backwards from that bound.
            hi = bisect.bisect_right(starts, tel_event.end_ts)
            for hp_event in candidates[:hi]:
                if hp_event.end_ts >= tel_event.start_ts:
                    joints.append(
                        JointAttack(tel_event.target, tel_event, hp_event)
                    )
        return joints

    def joint_targets(self) -> Set[int]:
        """Victims hit simultaneously by both attack types."""
        return {joint.target for joint in self.joint_attacks()}

    # -- Section 4's joint-attack characterization -----------------------------

    def joint_analysis(self, top_n: int = 5) -> JointAnalysis:
        joints = self.joint_attacks()
        joint_targets = {j.target for j in joints}
        tel_events = _dedupe([j.telescope_event for j in joints])
        hp_events = _dedupe([j.honeypot_event for j in joints])

        ported = [e for e in tel_events if e.ports]
        single = [e for e in ported if e.single_port]
        single_fraction = len(single) / len(ported) if ported else 0.0

        single_udp = [e for e in single if e.ip_proto == PROTO_UDP]
        udp_27015 = [e for e in single_udp if e.ports == (27015,)]
        udp_fraction = len(udp_27015) / len(single_udp) if single_udp else 0.0

        single_tcp = [e for e in single if e.ip_proto == PROTO_TCP]
        tcp_http = [e for e in single_tcp if e.ports == (80,)]
        tcp_fraction = len(tcp_http) / len(single_tcp) if single_tcp else 0.0

        proto_counts = Counter(
            e.reflector_protocol for e in hp_events if e.reflector_protocol
        )
        total_hp = sum(proto_counts.values())
        proto_shares = {
            proto: count / total_hp for proto, count in proto_counts.items()
        } if total_hp else {}

        asn_by_target: Dict[int, Optional[int]] = {}
        country_by_target: Dict[int, str] = {}
        for event in tel_events:
            asn_by_target.setdefault(event.target, event.asn)
            country_by_target.setdefault(event.target, event.country)
        asn_counts = Counter(
            asn_by_target.get(target) for target in joint_targets
        )
        country_counts = Counter(
            country_by_target.get(target, "??") for target in joint_targets
        )
        n_joint = max(1, len(joint_targets))
        return JointAnalysis(
            n_joint_targets=len(joint_targets),
            n_shared_targets=len(self.shared_targets()),
            single_port_fraction=single_fraction,
            udp_27015_fraction=udp_fraction,
            tcp_http_fraction=tcp_fraction,
            reflection_protocol_shares=proto_shares,
            top_asns=[
                (asn, count / n_joint)
                for asn, count in asn_counts.most_common(top_n)
            ],
            top_countries=[
                (country, count / n_joint)
                for country, count in country_counts.most_common(top_n)
            ],
        )


def _dedupe(events: Iterable[AttackEvent]) -> List[AttackEvent]:
    """Stable de-duplication of events repeated across joint pairs."""
    seen: Set[int] = set()
    unique: List[AttackEvent] = []
    for event in events:
        key = id(event)
        if key not in seen:
            seen.add(key)
            unique.append(event)
    return unique
