"""Detection-coverage validation: what the two infrastructures can(not) see.

Section 3.1.3 of the paper argues the two data sets complement each other —
the telescope catches randomly spoofed attacks, the honeypots catch
reflection attacks — while footnote 4 concedes a shared blind spot:
direct attacks that do not spoof (e.g. botnet floods). Because this
reproduction has ground truth, the claim is checkable: this module matches
every ground-truth attack against the observed event streams and reports
per-category coverage.

A ground-truth attack counts as *detected* when some observed event from
the appropriate source hits the same target with overlapping time (with a
grace margin for flow-expiry slack).
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.attacks.attacker import (
    ATTACK_REFLECTION,
    GroundTruthAttack,
)
from repro.core.events import AttackEvent, SOURCE_HONEYPOT, SOURCE_TELESCOPE

CATEGORY_SPOOFED_DIRECT = "direct-spoofed"
CATEGORY_UNSPOOFED_DIRECT = "direct-unspoofed"
CATEGORY_REFLECTION = "reflection"


def attack_category(attack: GroundTruthAttack) -> str:
    if attack.kind == ATTACK_REFLECTION:
        return CATEGORY_REFLECTION
    return (
        CATEGORY_SPOOFED_DIRECT if attack.spoofed else CATEGORY_UNSPOOFED_DIRECT
    )


@dataclass(frozen=True)
class CategoryCoverage:
    """Detection statistics for one ground-truth attack category."""

    category: str
    ground_truth: int
    detected: int

    @property
    def coverage(self) -> float:
        return self.detected / self.ground_truth if self.ground_truth else 0.0


class _IntervalLookup:
    """Per-target sorted event intervals with overlap queries."""

    def __init__(self, events: Iterable[AttackEvent]) -> None:
        self._by_target: Dict[int, List[Tuple[float, float]]] = defaultdict(
            list
        )
        for event in events:
            self._by_target[event.target].append(
                (event.start_ts, event.end_ts)
            )
        self._starts: Dict[int, List[float]] = {}
        for target, intervals in self._by_target.items():
            intervals.sort()
            self._starts[target] = [start for start, _ in intervals]

    def overlaps(
        self, target: int, start: float, end: float, margin: float
    ) -> bool:
        intervals = self._by_target.get(target)
        if not intervals:
            return False
        hi = bisect.bisect_right(self._starts[target], end + margin)
        for interval_start, interval_end in intervals[:hi]:
            if interval_end >= start - margin:
                return True
        return False


def detection_coverage(
    ground_truth: Sequence[GroundTruthAttack],
    observed: Iterable[AttackEvent],
    margin: float = 600.0,
) -> List[CategoryCoverage]:
    """Coverage per attack category (Section 3.1.3 validation).

    Spoofed direct attacks are matched against telescope events,
    reflection attacks against honeypot events; unspoofed direct attacks
    are matched against *either* source — any hit there would indicate a
    sensor seeing something it structurally cannot.
    """
    observed_list = list(observed)
    telescope = _IntervalLookup(
        e for e in observed_list if e.source == SOURCE_TELESCOPE
    )
    honeypot = _IntervalLookup(
        e for e in observed_list if e.source == SOURCE_HONEYPOT
    )

    totals: Dict[str, int] = defaultdict(int)
    detected: Dict[str, int] = defaultdict(int)
    for attack in ground_truth:
        category = attack_category(attack)
        totals[category] += 1
        if category == CATEGORY_REFLECTION:
            hit = honeypot.overlaps(
                attack.target, attack.start, attack.end, margin
            )
        elif category == CATEGORY_SPOOFED_DIRECT:
            hit = telescope.overlaps(
                attack.target, attack.start, attack.end, margin
            )
        else:
            hit = telescope.overlaps(
                attack.target, attack.start, attack.end, margin
            ) or honeypot.overlaps(
                attack.target, attack.start, attack.end, margin
            )
        if hit:
            detected[category] += 1

    return [
        CategoryCoverage(category, totals[category], detected[category])
        for category in sorted(totals)
    ]


def coverage_by_category(
    coverages: Iterable[CategoryCoverage],
) -> Dict[str, CategoryCoverage]:
    return {c.category: c for c in coverages}
