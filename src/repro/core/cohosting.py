"""Co-hosting histogram (Figure 6).

Each uniquely targeted IP address contributes once, binned by the number of
Web sites associated with it at the time of an attack (the maximum across
its attacks, since the paper bins IPs, not events). Bins are the paper's
log-decades: n = 1, 1 < n <= 10, ..., 10^6 < n <= 10^7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.webmap import EventAssociation

DEFAULT_MAX_EXPONENT = 7


@dataclass(frozen=True)
class CoHostingBin:
    """One bar of Figure 6."""

    label: str
    lower_exclusive: int
    upper_inclusive: int
    target_ips: int


def cohosting_bins(
    associations: Iterable[EventAssociation],
    max_exponent: int = DEFAULT_MAX_EXPONENT,
) -> List[CoHostingBin]:
    """Bin targeted IPs by their peak co-hosted site count.

    IPs never associated with any site are excluded, matching the paper
    (Figure 6 covers the 572 k targets with Web-site associations).
    """
    peak: Dict[int, int] = {}
    for association in associations:
        target = association.event.target
        peak[target] = max(peak.get(target, 0), association.site_count)

    bins: List[CoHostingBin] = []
    edges = _bin_edges(max_exponent)
    for label, lower, upper in edges:
        count = sum(1 for n in peak.values() if lower < n <= upper)
        bins.append(CoHostingBin(label, lower, upper, count))
    return bins


def web_hosting_target_count(
    associations: Iterable[EventAssociation],
) -> int:
    """Unique targeted IPs hosting at least one site (the 572 k figure)."""
    return len(
        {
            a.event.target
            for a in associations
            if a.site_count > 0
        }
    )


def _bin_edges(max_exponent: int) -> List[Tuple[str, int, int]]:
    if max_exponent < 1:
        raise ValueError("max_exponent must be at least 1")
    edges: List[Tuple[str, int, int]] = [("n=1", 0, 1)]
    for exponent in range(max_exponent):
        lower = 10**exponent if exponent > 0 else 1
        upper = 10 ** (exponent + 1)
        edges.append((f"10^{exponent}<n<=10^{exponent + 1}", lower, upper))
    return edges


def is_monotone_decreasing_tail(
    bins: Sequence[CoHostingBin], tolerance: int = 0
) -> bool:
    """Whether populated bins shrink with co-hosting size (the paper's shape).

    Empty trailing bins (scale-dependent) are ignored; *tolerance* allows
    small count inversions at the sparse end.
    """
    counts = [b.target_ips for b in bins]
    while counts and counts[-1] == 0:
        counts.pop()
    return all(
        counts[i] + tolerance >= counts[i + 1] for i in range(len(counts) - 1)
    )
