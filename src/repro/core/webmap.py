"""IP-to-Web-site association (Section 5's core machinery).

The :class:`WebHostingIndex` compiles OpenINTEL hosting intervals into an
address-keyed structure answering "which `www` domains resolved to this IP
on this day?" — the question asked once per attack event. On top of it,
:class:`WebImpactAnalysis` produces the per-event association counts
(Figure 6's input), the daily affected-site series (Figure 7) and the
per-site attack histories the migration study consumes.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.events import AttackEvent


class WebHostingIndex:
    """ip -> time-sorted hosting segments of `www` domains.

    ``count_on`` — asked once per attack event — answers from a packed
    interval-stabbing structure: per IP, the segment start days and end
    days are kept as two independently sorted lists, and the number of
    segments covering *day* is ``(# starts <= day) - (# ends <= day)``,
    i.e. two :func:`bisect.bisect_right` probes instead of a linear scan.
    ``sites_on`` keeps the scan because it must return the domains in
    segment order.
    """

    def __init__(
        self, intervals: Iterable[Tuple[str, int, int, int]]
    ) -> None:
        """*intervals* are (www domain, ip, start_day, end_day_exclusive)."""
        self._by_ip: Dict[int, List[Tuple[int, int, str]]] = defaultdict(list)
        count = 0
        for domain, ip, start, end in intervals:
            if end <= start:
                continue
            self._by_ip[ip].append((start, end, domain))
            count += 1
        self._stabs: Dict[int, Tuple[List[int], List[int]]] = {}
        for ip, segments in self._by_ip.items():
            segments.sort()
            self._stabs[ip] = (
                [start for start, _, _ in segments],
                sorted(end for _, end, _ in segments),
            )
        self.n_intervals = count

    def __len__(self) -> int:
        return len(self._by_ip)

    def sites_on(self, ip: int, day: int) -> List[str]:
        """Domains whose `www` resolved to *ip* on *day*."""
        segments = self._by_ip.get(ip)
        if not segments:
            return []
        return [
            domain
            for start, end, domain in segments
            if start <= day < end
        ]

    def count_on(self, ip: int, day: int) -> int:
        stabs = self._stabs.get(ip)
        if stabs is None:
            return 0
        starts, ends = stabs
        return bisect.bisect_right(starts, day) - bisect.bisect_right(
            ends, day
        )

    def count_on_reference(self, ip: int, day: int) -> int:
        """Reference linear scan (verification path for ``count_on``)."""
        segments = self._by_ip.get(ip)
        if not segments:
            return 0
        return sum(1 for start, end, _ in segments if start <= day < end)

    def hosts_anything(self, ip: int) -> bool:
        return ip in self._by_ip

    def all_domains(self) -> Set[str]:
        """Every domain with at least one indexed interval."""
        return {
            domain
            for segments in self._by_ip.values()
            for _, _, domain in segments
        }


@dataclass(frozen=True)
class EventAssociation:
    """One attack event joined with the sites it potentially affected."""

    event: AttackEvent
    day: int
    site_count: int


@dataclass
class SiteAttackHistory:
    """Every association of one Web site with attack events."""

    domain: str
    events: List[AttackEvent] = field(default_factory=list)

    @property
    def n_attacks(self) -> int:
        return len(self.events)

    def first_attack_day(self) -> int:
        return min(event.start_day for event in self.events)


class WebImpactAnalysis:
    """Joins an attack-event collection against the hosting index."""

    def __init__(self, index: WebHostingIndex) -> None:
        self.index = index

    def associate(
        self, events: Iterable[AttackEvent]
    ) -> List[EventAssociation]:
        """Per-event site counts at attack time (zero-site events included)."""
        return [
            EventAssociation(
                event=event,
                day=event.start_day,
                site_count=self.index.count_on(event.target, event.start_day),
            )
            for event in events
        ]

    def site_histories(
        self, events: Iterable[AttackEvent]
    ) -> Dict[str, SiteAttackHistory]:
        """domain -> all attack events it was associated with."""
        histories: Dict[str, SiteAttackHistory] = {}
        for event in events:
            for domain in self.index.sites_on(event.target, event.start_day):
                history = histories.get(domain)
                if history is None:
                    history = SiteAttackHistory(domain)
                    histories[domain] = history
                history.events.append(event)
        return histories

    def unique_affected_sites(self, events: Iterable[AttackEvent]) -> Set[str]:
        affected: Set[str] = set()
        for event in events:
            affected.update(
                self.index.sites_on(event.target, event.start_day)
            )
        return affected

    def daily_affected(
        self,
        events: Iterable[AttackEvent],
        n_days: int,
        sites_alive: Optional[Sequence[int]] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Figure 7: affected-site count (and share) per day.

        Returns (counts, fractions); fractions are zero when *sites_alive*
        is not supplied. Multi-day attacks count toward their start day.
        """
        if n_days <= 0:
            raise ValueError("n_days must be positive")
        per_day: List[Set[str]] = [set() for _ in range(n_days)]
        for event in events:
            day = event.start_day
            if 0 <= day < n_days:
                per_day[day].update(
                    self.index.sites_on(event.target, day)
                )
        counts = np.array([len(s) for s in per_day], dtype=np.int64)
        fractions = np.zeros(n_days, dtype=float)
        if sites_alive is not None:
            alive = np.asarray(sites_alive, dtype=float)
            if alive.shape[0] != n_days:
                raise ValueError("sites_alive length must equal n_days")
            np.divide(counts, alive, out=fractions, where=alive > 0)
        return counts, fractions


def sites_alive_per_day(
    first_seen: Dict[str, int], n_days: int
) -> np.ndarray:
    """Number of Web sites present in the namespace on each day."""
    alive = np.zeros(n_days, dtype=np.int64)
    for day in first_seen.values():
        if day < n_days:
            alive[max(0, day)] += 1
    return np.cumsum(alive)
