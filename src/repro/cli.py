"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``simulate`` — run a scenario and print the Table 1 summary (optionally
  saving the fused event data set as JSON Lines);
* ``report``   — run a scenario and regenerate the paper's full evaluation
  (all tables and figures), to stdout or a directory;
* ``headline`` — the fast path to the paper's headline ratios;
* ``robustness`` — degraded-mode runs under a fault plan: each feed forced
  down in turn (or one mixed standard plan), with a per-feed
  ``DataQualityReport`` and headline-ratio drift vs. the fault-free run.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.core.report import render_table1
from repro.faults.plan import ALL_FEEDS, FaultPlan
from repro.pipeline.config import ScenarioConfig
from repro.pipeline.datasets import save_events_jsonl
from repro.pipeline.fullreport import REPORT_ORDER, generate_full_report
from repro.pipeline.quality import HeadlineMetrics
from repro.pipeline.runner import run_resilient
from repro.pipeline.simulation import run_simulation

_PRESETS = {
    "small": ScenarioConfig.small,
    "default": ScenarioConfig.default,
    "paper": ScenarioConfig.paper,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Millions of Targets Under Attack' (IMC 2017)",
    )
    parser.add_argument(
        "--preset", choices=sorted(_PRESETS), default="small",
        help="scenario scale (default: small)",
    )
    parser.add_argument("--seed", type=int, default=42)
    subparsers = parser.add_subparsers(dest="command", required=True)

    simulate = subparsers.add_parser(
        "simulate", help="run a scenario and summarize the data sets"
    )
    simulate.add_argument(
        "--save-events", type=Path, default=None, metavar="FILE",
        help="write the fused event data set as JSON Lines",
    )

    report = subparsers.add_parser(
        "report", help="regenerate every table and figure"
    )
    report.add_argument(
        "--out-dir", type=Path, default=None, metavar="DIR",
        help="write one text file per artifact instead of stdout",
    )
    report.add_argument(
        "--only", nargs="*", default=None, metavar="ID",
        help=f"subset of artifacts (ids: {', '.join(REPORT_ORDER)})",
    )

    subparsers.add_parser("headline", help="print the headline ratios")

    robustness = subparsers.add_parser(
        "robustness",
        help="run with injected faults and print data-quality reports",
    )
    robustness.add_argument(
        "--plan", choices=("sweep", "standard"), default="sweep",
        help="'sweep' forces each feed down in turn; 'standard' runs one "
             "mixed realistic fault plan (default: sweep)",
    )
    robustness.add_argument(
        "--feed", choices=sorted(ALL_FEEDS) + ["all"], default="all",
        help="restrict the sweep to one feed (default: all)",
    )
    robustness.add_argument(
        "--fault-seed", type=int, default=7,
        help="seed for the standard fault plan (default: 7)",
    )
    robustness.add_argument(
        "--timings", action="store_true",
        help="include per-stage wall times (non-deterministic output)",
    )
    return parser


def _config(args: argparse.Namespace) -> ScenarioConfig:
    return _PRESETS[args.preset]().with_seed(args.seed)


def cmd_simulate(args: argparse.Namespace) -> int:
    result = run_simulation(_config(args))
    print(render_table1(result.fused.summary_rows()))
    if args.save_events is not None:
        written = save_events_jsonl(
            result.fused.combined.events, args.save_events
        )
        print(f"\nwrote {written} events to {args.save_events}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    result = run_simulation(_config(args))
    report = generate_full_report(result)
    wanted = args.only if args.only else list(REPORT_ORDER)
    unknown = [name for name in wanted if name not in report]
    if unknown:
        print(f"unknown artifact ids: {', '.join(unknown)}", file=sys.stderr)
        return 2
    if args.out_dir is not None:
        args.out_dir.mkdir(parents=True, exist_ok=True)
        for name in wanted:
            (args.out_dir / f"{name}.txt").write_text(
                report[name] + "\n", encoding="utf-8"
            )
        print(f"wrote {len(wanted)} artifacts to {args.out_dir}")
    else:
        for name in wanted:
            print(report[name])
            print()
    return 0


def cmd_headline(args: argparse.Namespace) -> int:
    result = run_simulation(_config(args))
    metrics = HeadlineMetrics.from_result(result)
    print(f"attacks observed:            {metrics.attacks}")
    print(f"unique targets:              {metrics.unique_targets}")
    print(f"active /24s attacked:        "
          f"{metrics.attacked_slash24_fraction:.1%}  (paper: ~33%)")
    print(f"Web sites on attacked IPs:   "
          f"{metrics.attacked_site_fraction:.1%}  (paper: 64%)")
    print(f"attacked sites migrating:    "
          f"{metrics.migrating_fraction:.2%}  (paper: 4.31%)")
    return 0


def cmd_robustness(args: argparse.Namespace) -> int:
    config = _config(args)
    result = run_simulation(config)
    baseline = HeadlineMetrics.from_result(result)
    print("fault-free baseline:")
    print(f"  attacks observed:      {baseline.attacks}")
    print(f"  active /24s attacked:  {baseline.attacked_slash24_fraction:.1%}")
    print(f"  sites on attacked IPs: {baseline.attacked_site_fraction:.1%}")
    print(f"  attacked sites moving: {baseline.migrating_fraction:.2%}")
    if args.plan == "standard":
        plans = [
            (
                "standard mixed fault plan",
                FaultPlan.standard(
                    config.n_days,
                    seed=args.fault_seed,
                    n_honeypots=config.n_honeypots,
                ),
            )
        ]
    else:
        feeds = list(ALL_FEEDS) if args.feed == "all" else [args.feed]
        plans = [
            (
                f"feed forced down: {feed}",
                FaultPlan.feed_down(feed, config.n_days, config.n_honeypots),
            )
            for feed in feeds
        ]
    for title, plan in plans:
        degraded = run_resilient(config, plan=plan, baseline=baseline)
        print(f"\n--- {title} ---")
        print(degraded.quality.render(timings=args.timings))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "simulate": cmd_simulate,
        "report": cmd_report,
        "headline": cmd_headline,
        "robustness": cmd_robustness,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
