"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``simulate`` — run a scenario and print the Table 1 summary (optionally
  saving the fused event data set as JSON Lines). With ``--run-dir`` the
  run is *durable*: every completed stage is checkpointed to disk, so a
  killed process can be restarted with ``resume``;
* ``resume``   — restart a killed durable run from its last valid on-disk
  checkpoint (checksums verified; a corrupt checkpoint falls back to the
  previous stage) and produce the same output the uninterrupted run
  would have;
* ``report``   — run a scenario and regenerate the paper's full evaluation
  (all tables and figures), to stdout or a directory;
* ``headline`` — the fast path to the paper's headline ratios;
* ``robustness`` — degraded-mode runs under a fault plan: each feed forced
  down in turn (or one mixed standard plan), with a per-feed
  ``DataQualityReport`` and headline-ratio drift vs. the fault-free run;
* ``validate`` — load a JSONL event feed through the record validator,
  quarantining malformed/duplicate/out-of-range records to a per-feed
  dead-letter file with reason codes;
* ``chaos``    — run the executor's chaos drill: a full pipeline under each
  injected execution fault (hung worker, slow worker, worker crash,
  poison shard) must recover byte-identically or degrade visibly, never
  hang (``--quick`` is the CI smoke variant). With ``--serve`` the drill
  targets the live service instead: ingest burst, slow consumer, and a
  kill -9 of a real serve subprocess with a state-equivalence verdict.
  With ``--serve-cluster`` it drills the replication cluster: the
  primary is SIGKILLed mid-burst, a follower is promoted, and the
  verdict checks zero acked-record loss, digest equivalence against a
  truncated replay of the dead primary's WAL, and epoch fencing;
* ``serve``    — run the live ingestion service: accepted events are
  WAL-logged before acknowledgment, state is snapshotted on a rolling
  schedule, and a killed process recovers on restart value-identical to
  an uninterrupted run. SIGTERM drains gracefully and exits 0. With
  ``--replica-of URL`` the node is a read-only follower streaming the
  primary's WAL; ``serve-promote`` makes a follower the new primary;
* ``top``      — live ops console over a running cluster: polls each
  node's ``/status`` and the primary's ``/metrics/history`` and renders
  a dashboard frame per interval (``--once`` for CI and scripts).

``simulate`` and ``resume`` accept the parallel-execution knobs
(``--workers``, ``--shards``, ``--exec-mode``, ``--task-deadline``) — a
sharded run is byte-identical to a serial one — plus ``--deadline``,
which aborts the run cleanly once the budget is spent: checkpoints are
already flushed, the run dir stays resumable, and the process exits with
code 124 (the ``timeout(1)`` convention, distinct from a crash).

Durable runs also handle SIGINT/SIGTERM deliberately: the first signal
stops the run at the next stage boundary (the in-progress stage either
finalizes its checkpoint or is abandoned whole), the run dir stays
resumable, and the process exits ``128 + signum`` (130 for Ctrl-C, 143
for SIGTERM) — distinct from both the deadline abort and a crash. A
second signal kills immediately.

Global ``--verbose`` / ``--log-json`` flags wire structured logging
(:mod:`repro.log`) through the runner, the checkpoint store and the
validation layer — recovery without logs is guesswork.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.core.report import render_table1
from repro.exec.deadline import RunDeadline, RunDeadlineExceeded
from repro.exec.interrupt import InterruptGuard, RunInterrupted
from repro.exec.pool import ALL_MODES, ExecConfig, MODE_AUTO
from repro.faults.exec import ExecFaultPlan
from repro.faults.plan import ALL_FEEDS, FaultPlan
from repro.log import configure_logging, get_logger
from repro.obs import (
    METRICS_FILE,
    TRACE_FILE,
    TRACE_JSONL_FILE,
    Telemetry,
    prometheus_from_snapshot,
    set_telemetry,
)
from repro.obs.report import QUALITY_FILE, render_flight_report
from repro.pipeline.chaos import run_chaos_drill
from repro.pipeline.config import ScenarioConfig
from repro.pipeline.datasets import (
    MalformedRecordError,
    quarantine_path_for,
    read_events_jsonl,
    save_events_jsonl,
)
from repro.pipeline.fullreport import REPORT_ORDER, generate_full_report
from repro.pipeline.quality import HeadlineMetrics
from repro.pipeline.runner import (
    ResilientPipeline,
    STAGE_ORDER,
    run_resilient,
)
from repro.pipeline.simulation import (
    CAPTURE_CODECS,
    DETECT_TIERS,
    run_simulation,
)
from repro.serve.chaos import run_serve_chaos_drill
from repro.serve.http import run_service
from repro.serve.service import ServeConfig
from repro.store.checkpoint import CheckpointStore

log = get_logger("cli")

#: Exit code when ``--deadline`` expires: the ``timeout(1)`` convention,
#: distinguishable from a crash (137) and an ordinary failure (1).
EXIT_DEADLINE = 124

_PRESETS = {
    "small": ScenarioConfig.small,
    "default": ScenarioConfig.default,
    "paper": ScenarioConfig.paper,
}

#: Run-dir document recording how a durable run was started, so ``resume``
#: can rebuild the exact scenario without the original command line.
META_FILE = "meta.json"
META_VERSION = 1

#: The fused event data set a completed durable run leaves in its run dir.
EVENTS_FILE = "events.jsonl"


def _add_exec_args(
    sub: argparse.ArgumentParser, resumable: bool = False
) -> None:
    """Parallel-execution knobs shared by ``simulate`` and ``resume``.

    On ``resume`` the workers/shards/mode defaults are ``None`` so the
    values recorded in ``meta.json`` win unless explicitly overridden —
    sharding is an execution choice, not part of the scenario, and the
    output is byte-identical either way.
    """
    sub.add_argument(
        "--workers", type=int, default=None if resumable else 1, metavar="N",
        help="worker processes for the observation stages (default: 1)",
    )
    sub.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="shards per observation stage (default: --workers)",
    )
    sub.add_argument(
        "--exec-mode", choices=ALL_MODES,
        default=None if resumable else MODE_AUTO,
        help="worker isolation: fork processes, threads, or serial "
             "(default: auto)",
    )
    sub.add_argument(
        "--task-deadline", type=float, default=None, metavar="SECONDS",
        help="per-shard watchdog deadline; a hung worker is killed and "
             "the shard retried",
    )
    sub.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="whole-run time budget: abort cleanly when spent, leaving "
             f"a resumable run dir (exit code {EXIT_DEADLINE})",
    )
    sub.add_argument(
        "--exec-fault", action="append", default=None, metavar="SPEC",
        help="inject an execution fault, kind:stage[:shard[:attempts]] "
             "with kind one of hung/slow/crash/poison (repeatable; "
             "fault drills)",
    )
    sub.add_argument(
        "--capture-codec", choices=CAPTURE_CODECS,
        default=None if resumable else "columnar",
        help="observation capture encoding fed to the detectors: "
             "'columnar' (structure-of-arrays fast path, default) or "
             "'object' (reference batch lists); output is byte-identical "
             "either way",
    )
    sub.add_argument(
        "--detect-tier", choices=DETECT_TIERS, default=None,
        help="detection tier for the observation stages: 'exact' "
             "(reference batch detectors), 'columnar' (inlined exact "
             "fast path) or 'sketch' (approximate bounded-memory "
             "streaming sketches, fastest); default matches the "
             "capture codec",
    )
    sub.add_argument(
        "--stage-cache", type=Path, default=None, metavar="DIR",
        help="content-addressed cross-run cache of observation-stage "
             "outputs: a re-run with the same scenario serves them from "
             "DIR instead of recomputing (fault-free runs only)",
    )
    _add_metrics_arg(sub)


def _add_metrics_arg(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--metrics", action="store_true",
        help="enable telemetry: with --run-dir, write metrics.json, "
             "trace.json, trace.jsonl and profile.json there; otherwise "
             "print the Prometheus text exposition after the run",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Millions of Targets Under Attack' (IMC 2017)",
    )
    parser.add_argument(
        "--preset", choices=sorted(_PRESETS), default="small",
        help="scenario scale (default: small)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--verbose", "-v", action="store_true",
        help="log per-stage progress (DEBUG level) to stderr",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit logs as JSON lines instead of console text",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    simulate = subparsers.add_parser(
        "simulate", help="run a scenario and summarize the data sets"
    )
    simulate.add_argument(
        "--save-events", type=Path, default=None, metavar="FILE",
        help="write the fused event data set as JSON Lines",
    )
    simulate.add_argument(
        "--run-dir", type=Path, default=None, metavar="DIR",
        help="durable run: checkpoint each stage to DIR so a killed run "
             "can be restarted with 'resume'",
    )
    simulate.add_argument(
        "--crash-after", choices=STAGE_ORDER, default=None, metavar="STAGE",
        help="recovery drill: hard-kill the process (exit 137, no cleanup) "
             "right after STAGE's checkpoint reaches disk "
             "(requires --run-dir)",
    )
    _add_exec_args(simulate)

    resume = subparsers.add_parser(
        "resume",
        help="restart a killed durable run from its last valid checkpoint",
    )
    resume.add_argument(
        "run_dir", type=Path, metavar="RUN_DIR",
        help="run directory of an interrupted 'simulate --run-dir' run",
    )
    _add_exec_args(resume, resumable=True)

    validate = subparsers.add_parser(
        "validate",
        help="validate a JSONL event feed, quarantining bad records",
    )
    validate.add_argument(
        "events_file", type=Path, metavar="FILE",
        help="JSON Lines event feed to validate",
    )
    validate.add_argument(
        "--quarantine", type=Path, default=None, metavar="FILE",
        help="dead-letter JSONL for rejected records "
             "(default: <FILE>[.<feed>].quarantine.jsonl)",
    )
    validate.add_argument(
        "--feed", default="", metavar="NAME",
        help="feed the file belongs to; namespaces the default "
             "dead-letter file so several feeds validated into one "
             "directory cannot clobber each other's quarantine",
    )
    validate.add_argument(
        "--strict", action="store_true",
        help="fail on the first bad record instead of quarantining",
    )

    report = subparsers.add_parser(
        "report", help="regenerate every table and figure, or render a "
                       "run directory's flight report (--run-dir)"
    )
    report.add_argument(
        "--out-dir", type=Path, default=None, metavar="DIR",
        help="write one text file per artifact instead of stdout",
    )
    report.add_argument(
        "--only", nargs="*", default=None, metavar="ID",
        help=f"subset of artifacts (ids: {', '.join(REPORT_ORDER)})",
    )
    report.add_argument(
        "--run-dir", type=Path, default=None, metavar="DIR",
        help="flight report: summarize a finished run's telemetry "
             "artifacts (stages, retries, breaker trips, kills, drops)",
    )

    subparsers.add_parser("headline", help="print the headline ratios")

    robustness = subparsers.add_parser(
        "robustness",
        help="run with injected faults and print data-quality reports",
    )
    robustness.add_argument(
        "--plan", choices=("sweep", "standard"), default="sweep",
        help="'sweep' forces each feed down in turn; 'standard' runs one "
             "mixed realistic fault plan (default: sweep)",
    )
    robustness.add_argument(
        "--feed", choices=sorted(ALL_FEEDS) + ["all"], default="all",
        help="restrict the sweep to one feed (default: all)",
    )
    robustness.add_argument(
        "--fault-seed", type=int, default=7,
        help="seed for the standard fault plan (default: 7)",
    )
    robustness.add_argument(
        "--timings", action="store_true",
        help="include per-stage wall times (non-deterministic output)",
    )

    chaos = subparsers.add_parser(
        "chaos",
        help="drill the executor's failure envelope (hung/slow/crashed "
             "workers, poison shards) against a serial baseline",
    )
    chaos.add_argument(
        "--quick", action="store_true",
        help="CI smoke variant: skip the slow-worker soak scenario",
    )
    chaos.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="worker processes per drill run (default: 2)",
    )
    chaos.add_argument(
        "--shards", type=int, default=3, metavar="N",
        help="shards per observation stage per drill run (default: 3)",
    )
    chaos.add_argument(
        "--scenario-budget", type=float, default=120.0, metavar="SECONDS",
        help="hard per-scenario time budget; a scenario that exceeds it "
             "fails instead of hanging the drill (default: 120)",
    )
    chaos.add_argument(
        "--run-dir", type=Path, default=None, metavar="DIR",
        help="write telemetry artifacts for the whole drill to DIR "
             "(with --metrics)",
    )
    chaos.add_argument(
        "--serve", action="store_true",
        help="drill the live service instead of the batch executor: "
             "ingest burst, slow consumer, and kill -9 of a real serve "
             "subprocess with a state-equivalence verdict",
    )
    chaos.add_argument(
        "--serve-dir", type=Path, default=None, metavar="DIR",
        help="work directory for the --serve scenarios "
             "(default: a temporary directory)",
    )
    chaos.add_argument(
        "--serve-cluster", action="store_true",
        help="drill the replication cluster: kill -9 the primary "
             "mid-burst, promote a follower, verify zero acked loss + "
             "digest equivalence + epoch fencing",
    )
    _add_metrics_arg(chaos)

    serve = subparsers.add_parser(
        "serve",
        help="run the live ingestion service (WAL + rolling snapshots; "
             "kill -9 recovers value-identically, SIGTERM drains)",
    )
    serve.add_argument(
        "--data-dir", type=Path, required=True, metavar="DIR",
        help="durable state: WAL segments, rolling snapshots, endpoint "
             "file — everything recovery needs",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=8321, metavar="N",
        help="bind port; 0 picks an ephemeral port, recorded in the "
             "data dir's endpoint.json (default: 8321)",
    )
    serve.add_argument(
        "--queue-size", type=int, default=4096, metavar="N",
        help="admission queue bound (default: 4096)",
    )
    serve.add_argument(
        "--high-watermark", type=int, default=None, metavar="N",
        help="queue depth at which ingest starts answering 503 "
             "(default: 4/5 of --queue-size)",
    )
    serve.add_argument(
        "--low-watermark", type=int, default=None, metavar="N",
        help="queue depth at which 503s stop again "
             "(default: 1/2 of --queue-size)",
    )
    serve.add_argument(
        "--retry-after", type=float, default=1.0, metavar="SECONDS",
        help="Retry-After hint on refused batches (default: 1.0)",
    )
    serve.add_argument(
        "--snapshot-every", type=int, default=2000, metavar="EVENTS",
        help="rolling snapshot after this many applied records "
             "(default: 2000)",
    )
    serve.add_argument(
        "--snapshot-interval", type=float, default=30.0, metavar="SECONDS",
        help="also snapshot when this much time passed with anything "
             "applied (default: 30)",
    )
    serve.add_argument(
        "--snapshot-keep", type=int, default=2, metavar="N",
        help="rolling snapshots to retain; older ones are fall-backs "
             "when the newest fails verification (default: 2)",
    )
    serve.add_argument(
        "--wal-fsync-every", type=int, default=64, metavar="N",
        help="fsync the WAL every N appends; every append is still "
             "flushed, so only power loss can cost the tail "
             "(default: 64)",
    )
    serve.add_argument(
        "--max-events-per-victim", type=int, default=256, metavar="N",
        help="per-victim query ring bound (default: 256)",
    )
    serve.add_argument(
        "--apply-delay", type=float, default=0.0, metavar="SECONDS",
        help="chaos hook: slow the applier by this much per record "
             "(slow-consumer drills; default: 0)",
    )
    serve.add_argument(
        "--replica-of", default=None, metavar="URL",
        help="run as a read-only follower replicating the primary at "
             "URL's WAL; writes answer 409 with the primary's address",
    )
    serve.add_argument(
        "--follower-id", default=None, metavar="ID",
        help="identity this follower reports to the primary "
             "(default: the data dir's name)",
    )
    serve.add_argument(
        "--poll-interval", type=float, default=0.25, metavar="SECONDS",
        help="replication poll cadence on a follower (default: 0.25)",
    )
    serve.add_argument(
        "--sync-replicas", type=int, default=0, metavar="N",
        help="primary: acknowledge a batch only after N followers "
             "committed it (0 = asynchronous; default: 0)",
    )
    serve.add_argument(
        "--sync-timeout", type=float, default=5.0, metavar="SECONDS",
        help="how long a batch waits for --sync-replicas confirmations "
             "before answering 503 (default: 5)",
    )
    _add_metrics_arg(serve)

    promote = subparsers.add_parser(
        "serve-promote",
        help="promote a running follower to primary (epoch bump; the "
             "old primary is fenced by the new epoch)",
    )
    promote.add_argument(
        "--data-dir", type=Path, default=None, metavar="DIR",
        help="the follower's data dir (its endpoint.json names the "
             "node to promote)",
    )
    promote.add_argument(
        "--url", default=None, metavar="URL",
        help="address of the follower to promote (alternative to "
             "--data-dir)",
    )
    promote.add_argument(
        "--fence", default=None, metavar="URL",
        help="also fence the old primary at URL with the new epoch "
             "(skip if it is already dead)",
    )

    metrics_cmd = subparsers.add_parser(
        "metrics",
        help="print a finished run's metrics (Prometheus text or JSON)",
    )
    metrics_cmd.add_argument(
        "run_dir", type=Path, metavar="RUN_DIR",
        help="run directory holding metrics.json (simulate --metrics)",
    )
    metrics_cmd.add_argument(
        "--format", choices=("prom", "json"), default="prom",
        help="output format (default: prom)",
    )

    trace_cmd = subparsers.add_parser(
        "trace",
        help="print a finished run's span trace (Chrome trace_event JSON "
             "or raw JSONL)",
    )
    trace_cmd.add_argument(
        "run_dir", type=Path, metavar="RUN_DIR",
        help="run directory holding trace.json (simulate --metrics)",
    )
    trace_cmd.add_argument(
        "--format", choices=("chrome", "jsonl"), default="chrome",
        help="output format (default: chrome)",
    )

    top = subparsers.add_parser(
        "top",
        help="live ops console over a serve cluster: polls each node's "
             "/status (plus the primary's /metrics/history) and renders "
             "one dashboard frame per interval",
    )
    top.add_argument(
        "--url", action="append", default=None, metavar="URL",
        help="node address to watch (repeatable)",
    )
    top.add_argument(
        "--data-dir", action="append", type=Path, default=None,
        metavar="DIR",
        help="node data dir; its endpoint.json names the address "
             "(repeatable, combinable with --url)",
    )
    top.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="poll cadence (default: 2.0)",
    )
    top.add_argument(
        "--windows", type=int, default=12, metavar="N",
        help="metrics-history windows to fetch per frame (default: 12)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="render a single frame and exit (CI / scripting)",
    )

    simtest = subparsers.add_parser(
        "simtest",
        help="deterministic cluster simulation: seeded fault-schedule "
             "sweeps with durability/consistency oracles, trace replay "
             "and trace shrinking",
    )
    simtest.add_argument(
        "--seeds", default="0..9", metavar="A..B",
        help="seed range to sweep, inclusive (either 'A..B' or a single "
             "seed; default: 0..9)",
    )
    simtest.add_argument(
        "--nodes", type=int, default=3, metavar="N",
        help="virtual cluster size: one primary plus N-1 followers "
             "(default: 3)",
    )
    simtest.add_argument(
        "--steps", type=int, default=80, metavar="N",
        help="fault-schedule length per seed (default: 80)",
    )
    simtest.add_argument(
        "--out", type=Path, default=Path("simtest-failures"), metavar="DIR",
        help="directory for failing-seed traces (default: "
             "simtest-failures/)",
    )
    simtest.add_argument(
        "--shrink-failures", action="store_true",
        help="also minimize each failing trace (greedy delta debugging) "
             "and write a .min.json next to it",
    )
    simtest.add_argument(
        "--replay", type=Path, default=None, metavar="TRACE",
        help="re-execute a recorded trace instead of sweeping; exits 0 "
             "when the replay reproduces the trace's recorded "
             "violations (an empty list for corpus traces)",
    )
    simtest.add_argument(
        "--shrink", type=Path, default=None, metavar="TRACE",
        help="minimize a failing trace instead of sweeping; writes "
             "TRACE.min.json unless --out names a directory to use",
    )
    return parser


def _config(args: argparse.Namespace) -> ScenarioConfig:
    return _PRESETS[args.preset]().with_seed(args.seed)


def _exec_config(args: argparse.Namespace) -> ExecConfig:
    """Build the executor config from CLI flags (None: flag not given)."""
    return ExecConfig(
        workers=args.workers if args.workers is not None else 1,
        shards=args.shards,
        mode=args.exec_mode if args.exec_mode is not None else MODE_AUTO,
        task_deadline=args.task_deadline,
    )


def _exec_faults(args: argparse.Namespace) -> Optional[ExecFaultPlan]:
    if not args.exec_fault:
        return None
    return ExecFaultPlan.parse(tuple(args.exec_fault))


def _enable_metrics(args: argparse.Namespace) -> Optional[Telemetry]:
    """Install process-wide telemetry when ``--metrics`` was given."""
    if not getattr(args, "metrics", False):
        return None
    telemetry = Telemetry.create()
    set_telemetry(telemetry)
    return telemetry


def _finish_metrics(
    telemetry: Optional[Telemetry], run_dir: Optional[Path]
) -> None:
    """Export telemetry artifacts (run dir) or print the Prometheus text."""
    if telemetry is None:
        return
    if run_dir is not None:
        written = telemetry.write_artifacts(run_dir)
        log.info(
            "telemetry artifacts written",
            run_dir=str(run_dir),
            artifacts=",".join(sorted(written)),
        )
    else:
        print()
        print(telemetry.metrics.render_prometheus(), end="")


def _run_durable(
    config: ScenarioConfig,
    run_dir: Path,
    crash_after: Optional[str] = None,
    exec_config: Optional[ExecConfig] = None,
    exec_faults: Optional[ExecFaultPlan] = None,
    deadline: Optional[float] = None,
    interrupt: Optional[InterruptGuard] = None,
    capture_codec: str = "columnar",
    detect_tier: Optional[str] = None,
    stage_cache: Optional[Path] = None,
):
    """Run the pipeline durably and leave the fused events in the run dir."""
    pipeline = ResilientPipeline(
        config,
        run_dir=run_dir,
        crash_after=crash_after,
        exec_config=exec_config,
        exec_faults=exec_faults,
        deadline=deadline,
        interrupt=interrupt,
        capture_codec=capture_codec,
        detect_tier=detect_tier,
        stage_cache=stage_cache,
    )
    result = pipeline.run()
    written = save_events_jsonl(
        result.fused.combined.events, run_dir / EVENTS_FILE
    )
    pipeline.store.write_json(QUALITY_FILE, result.quality.to_dict())
    log.info(
        "durable run complete",
        run_dir=str(run_dir),
        events=written,
        cached_stages=sum(
            1 for s in result.quality.stages if s.status == "cached"
        ),
        cache_hit_stages=sum(
            1 for s in result.quality.stages if s.status == "cache-hit"
        ),
    )
    return result


def cmd_simulate(args: argparse.Namespace) -> int:
    if args.crash_after is not None and args.run_dir is None:
        print("--crash-after requires --run-dir", file=sys.stderr)
        return 2
    config = _config(args)
    exec_config = _exec_config(args)
    exec_faults = _exec_faults(args)
    telemetry = _enable_metrics(args)
    # Durable and supervised runs stop at stage boundaries on SIGINT or
    # SIGTERM: checkpoints stay coherent, the run dir stays resumable,
    # and the exit code says which signal it was.
    guard = InterruptGuard().install()
    try:
        if args.run_dir is not None:
            store = CheckpointStore(args.run_dir)
            store.write_json(
                META_FILE,
                {
                    "meta_version": META_VERSION,
                    "command": "simulate",
                    "preset": args.preset,
                    "seed": args.seed,
                    "workers": exec_config.workers,
                    "shards": exec_config.shards,
                    "exec_mode": exec_config.mode,
                    "capture_codec": args.capture_codec,
                    "detect_tier": args.detect_tier,
                    "stage_cache": (
                        str(args.stage_cache)
                        if args.stage_cache is not None
                        else None
                    ),
                },
            )
            result = _run_durable(
                config,
                args.run_dir,
                args.crash_after,
                exec_config=exec_config,
                exec_faults=exec_faults,
                deadline=args.deadline,
                interrupt=guard,
                capture_codec=args.capture_codec,
                detect_tier=args.detect_tier,
                stage_cache=args.stage_cache,
            )
        elif (
            exec_config.parallel
            or exec_faults is not None
            or args.deadline is not None
            or args.stage_cache is not None
            or args.detect_tier is not None
        ):
            result = run_resilient(
                config,
                exec_config=exec_config,
                exec_faults=exec_faults,
                deadline=args.deadline,
                interrupt=guard,
                capture_codec=args.capture_codec,
                detect_tier=args.detect_tier,
                stage_cache=args.stage_cache,
            )
        else:
            result = run_simulation(config)
            guard.check("simulation finished")
    except RunDeadlineExceeded as exc:
        _finish_metrics(telemetry, args.run_dir)
        print(f"deadline exceeded: {exc}", file=sys.stderr)
        return EXIT_DEADLINE
    except RunInterrupted as exc:
        _finish_metrics(telemetry, args.run_dir)
        print(f"interrupted: {exc}", file=sys.stderr)
        return exc.exit_code
    finally:
        guard.restore()
    print(render_table1(result.fused.summary_rows()))
    if args.save_events is not None:
        written = save_events_jsonl(
            result.fused.combined.events, args.save_events
        )
        print(f"\nwrote {written} events to {args.save_events}")
    _finish_metrics(telemetry, args.run_dir)
    return 0


def cmd_resume(args: argparse.Namespace) -> int:
    if not args.run_dir.is_dir():
        print(f"no such run directory: {args.run_dir}", file=sys.stderr)
        return 2
    store = CheckpointStore(args.run_dir)
    meta = store.read_json(META_FILE)
    if meta is None:
        print(
            f"{args.run_dir} is not a durable run directory "
            f"(missing or unreadable {META_FILE})",
            file=sys.stderr,
        )
        return 2
    if meta.get("meta_version") != META_VERSION:
        print(
            f"run was started by an incompatible version "
            f"(meta v{meta.get('meta_version')}, expected v{META_VERSION})",
            file=sys.stderr,
        )
        return 2
    preset = meta.get("preset")
    if preset not in _PRESETS:
        print(f"run metadata names unknown preset: {preset!r}",
              file=sys.stderr)
        return 2
    config = _PRESETS[preset]().with_seed(int(meta.get("seed", 42)))
    # Execution knobs: explicit flags win, then the recorded meta values;
    # either way the output is byte-identical, sharding is not scenario.
    exec_config = ExecConfig(
        workers=(
            args.workers
            if args.workers is not None
            else int(meta.get("workers", 1))
        ),
        shards=(
            args.shards
            if args.shards is not None
            else meta.get("shards")
        ),
        mode=(
            args.exec_mode
            if args.exec_mode is not None
            else meta.get("exec_mode", MODE_AUTO)
        ),
        task_deadline=args.task_deadline,
    )
    capture_codec = (
        args.capture_codec
        if args.capture_codec is not None
        else meta.get("capture_codec") or "columnar"
    )
    detect_tier = (
        args.detect_tier
        if args.detect_tier is not None
        else meta.get("detect_tier")
    )
    stage_cache = (
        args.stage_cache
        if args.stage_cache is not None
        else (
            Path(meta["stage_cache"])
            if meta.get("stage_cache")
            else None
        )
    )
    log.info(
        "resuming run", run_dir=str(args.run_dir), preset=preset,
        seed=config.seed, workers=exec_config.workers,
    )
    telemetry = _enable_metrics(args)
    guard = InterruptGuard().install()
    try:
        result = _run_durable(
            config,
            args.run_dir,
            exec_config=exec_config,
            exec_faults=_exec_faults(args),
            deadline=args.deadline,
            interrupt=guard,
            capture_codec=capture_codec,
            detect_tier=detect_tier,
            stage_cache=stage_cache,
        )
    except RunDeadlineExceeded as exc:
        _finish_metrics(telemetry, args.run_dir)
        print(f"deadline exceeded: {exc}", file=sys.stderr)
        return EXIT_DEADLINE
    except RunInterrupted as exc:
        _finish_metrics(telemetry, args.run_dir)
        print(f"interrupted: {exc}", file=sys.stderr)
        return exc.exit_code
    finally:
        guard.restore()
    print(render_table1(result.fused.summary_rows()))
    _finish_metrics(telemetry, args.run_dir)
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    if not args.events_file.exists():
        print(f"no such file: {args.events_file}", file=sys.stderr)
        return 2
    quarantine = args.quarantine
    if quarantine is None:
        quarantine = quarantine_path_for(args.events_file, feed=args.feed)
    try:
        _events, report = read_events_jsonl(
            args.events_file,
            strict=args.strict,
            quarantine_path=quarantine,
            feed=args.feed,
        )
    except MalformedRecordError as exc:
        print(f"invalid record: {exc}", file=sys.stderr)
        return 1
    print(f"{report.path}: {report.loaded} valid, "
          f"{report.rejected} quarantined")
    for reason, count in report.reason_counts().items():
        print(f"  {reason:<28} {count}")
    if report.quarantine_path:
        print(f"dead-letter file: {report.quarantine_path}")
    return 0 if report.rejected == 0 else 1


def cmd_report(args: argparse.Namespace) -> int:
    if args.run_dir is not None:
        if not args.run_dir.is_dir():
            print(f"no such run directory: {args.run_dir}", file=sys.stderr)
            return 2
        print(render_flight_report(args.run_dir))
        return 0
    result = run_simulation(_config(args))
    report = generate_full_report(result)
    wanted = args.only if args.only else list(REPORT_ORDER)
    unknown = [name for name in wanted if name not in report]
    if unknown:
        print(f"unknown artifact ids: {', '.join(unknown)}", file=sys.stderr)
        return 2
    if args.out_dir is not None:
        args.out_dir.mkdir(parents=True, exist_ok=True)
        for name in wanted:
            (args.out_dir / f"{name}.txt").write_text(
                report[name] + "\n", encoding="utf-8"
            )
        print(f"wrote {len(wanted)} artifacts to {args.out_dir}")
    else:
        for name in wanted:
            print(report[name])
            print()
    return 0


def cmd_headline(args: argparse.Namespace) -> int:
    result = run_simulation(_config(args))
    metrics = HeadlineMetrics.from_result(result)
    print(f"attacks observed:            {metrics.attacks}")
    print(f"unique targets:              {metrics.unique_targets}")
    print(f"active /24s attacked:        "
          f"{metrics.attacked_slash24_fraction:.1%}  (paper: ~33%)")
    print(f"Web sites on attacked IPs:   "
          f"{metrics.attacked_site_fraction:.1%}  (paper: 64%)")
    print(f"attacked sites migrating:    "
          f"{metrics.migrating_fraction:.2%}  (paper: 4.31%)")
    return 0


def cmd_robustness(args: argparse.Namespace) -> int:
    config = _config(args)
    result = run_simulation(config)
    baseline = HeadlineMetrics.from_result(result)
    print("fault-free baseline:")
    print(f"  attacks observed:      {baseline.attacks}")
    print(f"  active /24s attacked:  {baseline.attacked_slash24_fraction:.1%}")
    print(f"  sites on attacked IPs: {baseline.attacked_site_fraction:.1%}")
    print(f"  attacked sites moving: {baseline.migrating_fraction:.2%}")
    if args.plan == "standard":
        plans = [
            (
                "standard mixed fault plan",
                FaultPlan.standard(
                    config.n_days,
                    seed=args.fault_seed,
                    n_honeypots=config.n_honeypots,
                ),
            )
        ]
    else:
        feeds = list(ALL_FEEDS) if args.feed == "all" else [args.feed]
        plans = [
            (
                f"feed forced down: {feed}",
                FaultPlan.feed_down(feed, config.n_days, config.n_honeypots),
            )
            for feed in feeds
        ]
    for title, plan in plans:
        degraded = run_resilient(config, plan=plan, baseline=baseline)
        print(f"\n--- {title} ---")
        print(degraded.quality.render(timings=args.timings))
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    telemetry = _enable_metrics(args)
    if args.serve_cluster:
        import tempfile

        from repro.serve.chaos import run_cluster_failover

        work_dir = args.serve_dir
        if work_dir is None:
            work_dir = Path(tempfile.mkdtemp(prefix="repro-cluster-chaos-"))
        results = [
            run_cluster_failover(
                work_dir, quick=args.quick,
                scenario_budget=args.scenario_budget,
            )
        ]
        print("=== Serve cluster drill ===")
        for result in results:
            verdict = "PASS" if result.passed else "FAIL"
            print(
                f"{verdict} {result.name:<16} [{result.expect}] "
                f"({result.elapsed:.1f}s): {result.detail}"
            )
        failed = sum(1 for r in results if not r.passed)
        print(f"{len(results) - failed}/{len(results)} scenarios passed")
        _finish_metrics(telemetry, args.run_dir)
        return 0 if failed == 0 else 1
    if args.serve:
        import tempfile

        work_dir = args.serve_dir
        if work_dir is None:
            work_dir = Path(tempfile.mkdtemp(prefix="repro-serve-chaos-"))
        results = run_serve_chaos_drill(
            work_dir,
            quick=args.quick,
            scenario_budget=args.scenario_budget,
        )
        print("=== Serve chaos drill ===")
        for result in results:
            verdict = "PASS" if result.passed else "FAIL"
            print(
                f"{verdict} {result.name:<14} [{result.expect}] "
                f"({result.elapsed:.1f}s): {result.detail}"
            )
        failed = sum(1 for r in results if not r.passed)
        print(f"{len(results) - failed}/{len(results)} scenarios passed")
        _finish_metrics(telemetry, args.run_dir)
        return 0 if failed == 0 else 1
    results = run_chaos_drill(
        config=_config(args),
        quick=args.quick,
        workers=args.workers,
        shards=args.shards,
        scenario_budget=args.scenario_budget,
    )
    print("=== Chaos drill ===")
    for result in results:
        verdict = "PASS" if result.passed else "FAIL"
        print(
            f"{verdict} {result.name:<14} [{result.expect}] "
            f"({result.elapsed:.1f}s): {result.detail}"
        )
    failed = sum(1 for r in results if not r.passed)
    print(f"{len(results) - failed}/{len(results)} scenarios passed")
    _finish_metrics(telemetry, args.run_dir)
    return 0 if failed == 0 else 1


def cmd_serve(args: argparse.Namespace) -> int:
    telemetry = _enable_metrics(args)
    config = ServeConfig(
        data_dir=args.data_dir,
        queue_size=args.queue_size,
        high_watermark=args.high_watermark,
        low_watermark=args.low_watermark,
        retry_after=args.retry_after,
        snapshot_every_events=args.snapshot_every,
        snapshot_interval_s=args.snapshot_interval,
        snapshot_keep=args.snapshot_keep,
        wal_fsync_every=args.wal_fsync_every,
        max_events_per_victim=args.max_events_per_victim,
        apply_delay=args.apply_delay,
        replica_of=args.replica_of,
        follower_id=args.follower_id,
        poll_interval_s=args.poll_interval,
        sync_replicas=args.sync_replicas,
        sync_timeout_s=args.sync_timeout,
    )
    try:
        return run_service(
            config,
            host=args.host,
            port=args.port,
            metrics=telemetry.metrics if telemetry is not None else None,
            tracer=telemetry.tracer if telemetry is not None else None,
        )
    finally:
        # The data dir doubles as the run dir: a graceful exit leaves
        # metrics.json next to the snapshots for `repro report`.
        _finish_metrics(telemetry, args.data_dir)


def cmd_serve_promote(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeClient, ServeClientError
    from repro.serve.http import read_endpoint_file

    if args.url:
        url = args.url.rstrip("/")
    elif args.data_dir:
        try:
            info = read_endpoint_file(args.data_dir)
        except (OSError, ValueError) as exc:
            print(
                f"cannot read endpoint file in {args.data_dir}: {exc}",
                file=sys.stderr,
            )
            return 2
        url = f"http://{info['host']}:{info['port']}"
    else:
        print("need --data-dir or --url", file=sys.stderr)
        return 2
    client = ServeClient([url])
    try:
        outcome = client.promote(url)
    except ServeClientError as exc:
        print(f"promotion failed: {exc}", file=sys.stderr)
        return 1
    print(
        f"promoted {url}: role={outcome['role']} epoch={outcome['epoch']} "
        f"seq={outcome['seq']} applied_seq={outcome['applied_seq']}"
    )
    if args.fence:
        response = client.fence(
            args.fence, outcome["epoch"], primary_url=url
        )
        if response.status == 200:
            print(f"fenced {args.fence} at epoch {outcome['epoch']}")
        else:
            print(
                f"fence of {args.fence} answered {response.status}: "
                f"{response.body}",
                file=sys.stderr,
            )
            return 1
    return 0


def _top_urls(args: argparse.Namespace) -> list:
    from repro.serve.http import read_endpoint_file

    urls = [url.rstrip("/") for url in (args.url or [])]
    for data_dir in args.data_dir or []:
        try:
            info = read_endpoint_file(data_dir)
        except (OSError, ValueError) as exc:
            print(
                f"cannot read endpoint file in {data_dir}: {exc}",
                file=sys.stderr,
            )
            continue
        urls.append(f"http://{info['host']}:{info['port']}")
    return urls


def _top_frame(client, urls: list, windows: int) -> str:
    from repro.obs.console import render_dashboard
    from repro.serve.transport import TransportError

    nodes = []
    history = None
    for url in urls:
        try:
            response = client.request_once("GET", "/status", endpoint=url)
            doc = response.body if response.status == 200 else None
            error = None if doc else f"status {response.status}"
        except (TransportError, OSError) as exc:
            doc, error = None, str(exc)
        nodes.append({"url": url, "status": doc, "error": error})
        if doc is not None and history is None and doc.get("role") == "primary":
            try:
                answer = client.request_once(
                    "GET", f"/metrics/history?last={windows}", endpoint=url
                )
                if answer.status == 200:
                    history = answer.body
            except (TransportError, OSError):
                pass
    return render_dashboard(nodes, history)


def cmd_top(args: argparse.Namespace) -> int:
    import time

    from repro.serve.client import ServeClient

    urls = _top_urls(args)
    if not urls:
        print("need at least one --url or --data-dir", file=sys.stderr)
        return 2
    client = ServeClient(urls)
    if args.once:
        print(_top_frame(client, urls, args.windows), end="")
        return 0
    try:
        while True:
            # ANSI clear + home: repaint in place like top(1).
            frame = _top_frame(client, urls, args.windows)
            print(f"\x1b[2J\x1b[H{frame}", end="", flush=True)
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    path = args.run_dir / METRICS_FILE
    if not path.exists():
        print(
            f"no {METRICS_FILE} in {args.run_dir} "
            "(produce one with 'simulate --run-dir DIR --metrics')",
            file=sys.stderr,
        )
        return 2
    text = path.read_text(encoding="utf-8")
    if args.format == "json":
        print(text, end="")
        return 0
    print(prometheus_from_snapshot(json.loads(text)), end="")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    name = TRACE_FILE if args.format == "chrome" else TRACE_JSONL_FILE
    path = args.run_dir / name
    if not path.exists():
        print(
            f"no {name} in {args.run_dir} "
            "(produce one with 'simulate --run-dir DIR --metrics')",
            file=sys.stderr,
        )
        return 2
    print(path.read_text(encoding="utf-8"), end="")
    return 0


def _parse_seed_range(text: str) -> range:
    if ".." in text:
        first, _, last = text.partition("..")
        start, stop = int(first), int(last)
    else:
        start = stop = int(text)
    if stop < start:
        raise ValueError(f"empty seed range: {text}")
    return range(start, stop + 1)


def cmd_simtest(args: argparse.Namespace) -> int:
    # Imported lazily: the simulation harness pulls in the whole serve
    # layer, which the analytics subcommands never need.
    from repro.simtest import (
        default_spec, run_sim, run_trace, trace_to_json,
    )
    from repro.simtest.shrink import shrink_trace

    if args.replay is not None:
        trace = json.loads(args.replay.read_text(encoding="utf-8"))
        result = run_trace(trace)
        recorded = trace.get("violations", [])
        if result["violations"] == recorded:
            print(
                f"replay OK: {len(trace['ops'])} ops reproduced "
                f"{len(recorded)} recorded violation(s)"
            )
            return 0
        print("replay DIVERGED from recorded violations:", file=sys.stderr)
        print(json.dumps(result["violations"], indent=2), file=sys.stderr)
        return 1

    if args.shrink is not None:
        trace = json.loads(args.shrink.read_text(encoding="utf-8"))
        try:
            minimized, runs = shrink_trace(trace)
        except ValueError as exc:
            print(f"cannot shrink: {exc}", file=sys.stderr)
            return 2
        out = args.shrink.with_suffix(".min.json")
        out.write_text(trace_to_json(minimized), encoding="utf-8")
        print(
            f"shrunk {len(trace['ops'])} -> {len(minimized['ops'])} ops "
            f"in {runs} runs: {out}"
        )
        return 0

    try:
        seeds = _parse_seed_range(args.seeds)
    except ValueError as exc:
        print(f"bad --seeds: {exc}", file=sys.stderr)
        return 2
    config = default_spec(nodes=args.nodes, steps=args.steps)
    failures = 0
    for seed in seeds:
        trace = run_sim(seed, config)
        if not trace["violations"]:
            print(f"seed {seed}: ok")
            continue
        failures += 1
        oracles = sorted({v.get("oracle", "?") for v in trace["violations"]})
        args.out.mkdir(parents=True, exist_ok=True)
        path = args.out / f"seed-{seed}.json"
        path.write_text(trace_to_json(trace), encoding="utf-8")
        print(f"seed {seed}: FAIL {oracles} -> {path}")
        if args.shrink_failures:
            minimized, runs = shrink_trace(trace)
            mini_path = args.out / f"seed-{seed}.min.json"
            mini_path.write_text(trace_to_json(minimized), encoding="utf-8")
            print(
                f"seed {seed}: shrunk {len(trace['ops'])} -> "
                f"{len(minimized['ops'])} ops in {runs} runs -> {mini_path}"
            )
    total = len(seeds)
    print(f"simtest: {total - failures}/{total} seeds passed")
    return 1 if failures else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.verbose or args.log_json:
        configure_logging(verbose=args.verbose, json_mode=args.log_json)
    handlers = {
        "simulate": cmd_simulate,
        "resume": cmd_resume,
        "validate": cmd_validate,
        "report": cmd_report,
        "headline": cmd_headline,
        "robustness": cmd_robustness,
        "chaos": cmd_chaos,
        "serve": cmd_serve,
        "serve-promote": cmd_serve_promote,
        "top": cmd_top,
        "metrics": cmd_metrics,
        "trace": cmd_trace,
        "simtest": cmd_simtest,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
