"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``simulate`` — run a scenario and print the Table 1 summary (optionally
  saving the fused event data set as JSON Lines);
* ``report``   — run a scenario and regenerate the paper's full evaluation
  (all tables and figures), to stdout or a directory;
* ``headline`` — the fast path to the paper's headline ratios.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.core.report import render_table1
from repro.core.taxonomy import classify_sites, taxonomy_counts
from repro.core.webmap import WebImpactAnalysis
from repro.pipeline.config import ScenarioConfig
from repro.pipeline.datasets import save_events_jsonl
from repro.pipeline.fullreport import REPORT_ORDER, generate_full_report
from repro.pipeline.simulation import run_simulation

_PRESETS = {
    "small": ScenarioConfig.small,
    "default": ScenarioConfig.default,
    "paper": ScenarioConfig.paper,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Millions of Targets Under Attack' (IMC 2017)",
    )
    parser.add_argument(
        "--preset", choices=sorted(_PRESETS), default="small",
        help="scenario scale (default: small)",
    )
    parser.add_argument("--seed", type=int, default=42)
    subparsers = parser.add_subparsers(dest="command", required=True)

    simulate = subparsers.add_parser(
        "simulate", help="run a scenario and summarize the data sets"
    )
    simulate.add_argument(
        "--save-events", type=Path, default=None, metavar="FILE",
        help="write the fused event data set as JSON Lines",
    )

    report = subparsers.add_parser(
        "report", help="regenerate every table and figure"
    )
    report.add_argument(
        "--out-dir", type=Path, default=None, metavar="DIR",
        help="write one text file per artifact instead of stdout",
    )
    report.add_argument(
        "--only", nargs="*", default=None, metavar="ID",
        help=f"subset of artifacts (ids: {', '.join(REPORT_ORDER)})",
    )

    subparsers.add_parser("headline", help="print the headline ratios")
    return parser


def _config(args: argparse.Namespace) -> ScenarioConfig:
    return _PRESETS[args.preset]().with_seed(args.seed)


def cmd_simulate(args: argparse.Namespace) -> int:
    result = run_simulation(_config(args))
    print(render_table1(result.fused.summary_rows()))
    if args.save_events is not None:
        written = save_events_jsonl(
            result.fused.combined.events, args.save_events
        )
        print(f"\nwrote {written} events to {args.save_events}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    result = run_simulation(_config(args))
    report = generate_full_report(result)
    wanted = args.only if args.only else list(REPORT_ORDER)
    unknown = [name for name in wanted if name not in report]
    if unknown:
        print(f"unknown artifact ids: {', '.join(unknown)}", file=sys.stderr)
        return 2
    if args.out_dir is not None:
        args.out_dir.mkdir(parents=True, exist_ok=True)
        for name in wanted:
            (args.out_dir / f"{name}.txt").write_text(
                report[name] + "\n", encoding="utf-8"
            )
        print(f"wrote {len(wanted)} artifacts to {args.out_dir}")
    else:
        for name in wanted:
            print(report[name])
            print()
    return 0


def cmd_headline(args: argparse.Namespace) -> int:
    result = run_simulation(_config(args))
    fraction = result.census.attacked_fraction(
        result.fused.combined.unique_slash24s()
    )
    impact = WebImpactAnalysis(result.web_index)
    histories = impact.site_histories(result.fused.combined.events)
    counts = taxonomy_counts(
        classify_sites(
            result.openintel.first_seen,
            {d: h.first_attack_day() for d, h in histories.items()},
            result.dps_usage.first_day_by_domain(),
        )
    )
    print(f"attacks observed:            {len(result.fused.combined)}")
    print(f"unique targets:              "
          f"{len(result.fused.combined.unique_targets())}")
    print(f"active /24s attacked:        {fraction:.1%}  (paper: ~33%)")
    print(f"Web sites on attacked IPs:   "
          f"{counts.attacked_fraction:.1%}  (paper: 64%)")
    print(f"attacked sites migrating:    "
          f"{counts.attacked_migrating_fraction:.2%}  (paper: 4.31%)")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "simulate": cmd_simulate,
        "report": cmd_report,
        "headline": cmd_headline,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
