"""AmpPot honeypot substitute.

A fleet of 24 amplification honeypots mimicking abusable UDP reflectors
(QOTD, CharGen, DNS, NTP, SSDP, MSSQL, RIPv1, TFTP). Attackers scan for
reflectors, include honeypots in their amplifier lists, and spray spoofed
requests carrying the victim's address; the honeypot logs those requests.
Event extraction keeps only floods exceeding 100 requests (separating
attacks from scans) and caps event durations at 24 hours, as the paper
describes.
"""

from repro.honeypot.amppot import (
    AmpPotFleet,
    FleetConfig,
    HoneypotInstance,
    RequestBatch,
)
from repro.honeypot.detection import AmpPotEvent, HoneypotDetector, DetectionConfig

__all__ = [
    "AmpPotFleet",
    "FleetConfig",
    "HoneypotInstance",
    "RequestBatch",
    "AmpPotEvent",
    "HoneypotDetector",
    "DetectionConfig",
]
