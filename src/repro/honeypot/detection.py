"""Event extraction from the honeypot request logs.

Request batches from all instances are merged per (victim, protocol) into
attack events. A gap longer than the aggregation timeout closes the event;
events shorter than the 100-request threshold are dropped (scans and
dribble), and — matching how AmpPot operates — event durations are capped at
24 hours by closing and reopening the flow.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.honeypot.amppot import RequestBatch
from repro.honeypot.columnar import RequestColumns
from repro.sketch.engine import FlowSketch, SketchConfig

DAY_SECONDS = 86400.0


@dataclass(frozen=True)
class DetectionConfig:
    """Aggregation and filtering parameters (defaults per the paper)."""

    gap_timeout: float = 3600.0
    min_requests: int = 100
    max_event_duration: float = DAY_SECONDS


@dataclass(frozen=True)
class AmpPotEvent:
    """One reflection/amplification attack event."""

    victim: int
    start_ts: float
    end_ts: float
    protocol: str
    requests: int
    honeypots: int

    @property
    def duration(self) -> float:
        return self.end_ts - self.start_ts

    @property
    def avg_rps(self) -> float:
        """Average requests/second made to *each* abused reflector.

        This is the paper's intensity metric for the honeypot data set: the
        total request volume normalized by duration and by the number of
        honeypot instances that logged the attack.
        """
        duration = max(self.duration, 1.0)
        return self.requests / duration / max(self.honeypots, 1)


@dataclass
class _OpenFlow:
    victim: int
    protocol: str
    first_ts: float
    last_ts: float
    requests: int = 0
    honeypot_ids: Set[int] = field(default_factory=set)

    def add(self, batch: RequestBatch) -> None:
        self.last_ts = max(self.last_ts, batch.timestamp)
        self.requests += batch.count
        self.honeypot_ids.add(batch.honeypot_id)


class HoneypotDetector:
    """Streaming aggregation of request batches into attack events.

    Idle-flow expiry mirrors :class:`repro.telescope.flows.FlowTable`: a
    lazy min-heap of ``(last_ts, key)`` entries (pushed at flow creation,
    re-pushed on a stale pop) replaces the full scan over every open flow.
    ``indexed=False`` keeps the reference scan for equivalence testing.
    """

    def __init__(
        self,
        config: DetectionConfig = DetectionConfig(),
        indexed: bool = True,
    ) -> None:
        self.config = config
        self._flows: Dict[Tuple[int, str], _OpenFlow] = {}
        self._last_sweep = float("-inf")
        self.batches_seen = 0
        self.flows_discarded = 0
        self._indexed = indexed
        self._heap: List[Tuple[float, Tuple[int, str]]] = []
        self._seq: Dict[Tuple[int, str], int] = {}
        self._next_seq = 0

    def process(self, batch: RequestBatch) -> List[AmpPotEvent]:
        """Feed one batch (time-sorted input); return closed events."""
        self.batches_seen += 1
        closed = self._maybe_sweep(batch.timestamp)
        key = (batch.victim, batch.protocol)
        flow = self._flows.get(key)
        if flow is not None:
            gap_exceeded = batch.timestamp - flow.last_ts > self.config.gap_timeout
            cap_exceeded = (
                batch.timestamp - flow.first_ts > self.config.max_event_duration
            )
            if gap_exceeded or cap_exceeded:
                event = self._close(self._flows.pop(key), capped=cap_exceeded)
                self._seq.pop(key, None)
                if event is not None:
                    closed.append(event)
                flow = None
        if flow is None:
            flow = _OpenFlow(
                victim=batch.victim,
                protocol=batch.protocol,
                first_ts=batch.timestamp,
                last_ts=batch.timestamp,
            )
            self._flows[key] = flow
            if self._indexed:
                self._seq[key] = self._next_seq
                self._next_seq += 1
                heapq.heappush(self._heap, (flow.last_ts, key))
        flow.add(batch)
        return closed

    def run(self, batches: Iterable[RequestBatch]) -> Iterator[AmpPotEvent]:
        """Process a full capture, including the final flush."""
        for batch in batches:
            yield from self.process(batch)
        yield from self.flush()

    def flush(self) -> List[AmpPotEvent]:
        """Close every open flow at end of capture."""
        events = []
        for flow in self._flows.values():
            event = self._close(flow)
            if event is not None:
                events.append(event)
        self._flows.clear()
        self._heap.clear()
        self._seq.clear()
        return events

    def _maybe_sweep(self, now: float) -> List[AmpPotEvent]:
        """Expire idle flows periodically so memory stays bounded."""
        if now - self._last_sweep < self.config.gap_timeout / 4:
            return []
        self._last_sweep = now
        cutoff = now - self.config.gap_timeout
        if not self._indexed:
            expired_keys = [
                k for k, f in self._flows.items() if f.last_ts < cutoff
            ]
            events = []
            for key in expired_keys:
                event = self._close(self._flows.pop(key))
                if event is not None:
                    events.append(event)
            return events
        # Lazy-heap sweep: pop entries past the cutoff, re-pushing flows
        # that were refreshed since their entry was pushed; re-sorted by
        # flow creation order so the closed events come out exactly as the
        # reference scan produces them.
        ordered: List[Tuple[int, _OpenFlow]] = []
        heap = self._heap
        flows = self._flows
        while heap and heap[0][0] < cutoff:
            _, key = heapq.heappop(heap)
            flow = flows.get(key)
            if flow is None:
                continue  # entry outlived its flow
            if flow.last_ts < cutoff:
                ordered.append((self._seq.pop(key), flows.pop(key)))
            else:
                heapq.heappush(heap, (flow.last_ts, key))
        ordered.sort(key=lambda pair: pair[0])
        events = []
        for _, flow in ordered:
            event = self._close(flow)
            if event is not None:
                events.append(event)
        return events

    def _close(self, flow: _OpenFlow, capped: bool = False) -> Optional[AmpPotEvent]:
        if flow.requests <= self.config.min_requests:
            self.flows_discarded += 1
            return None
        end_ts = flow.last_ts
        if capped:
            end_ts = min(end_ts, flow.first_ts + self.config.max_event_duration)
        return AmpPotEvent(
            victim=flow.victim,
            start_ts=flow.first_ts,
            end_ts=end_ts,
            protocol=flow.protocol,
            requests=flow.requests,
            honeypots=len(flow.honeypot_ids),
        )


# Flow-record slots for the columnar fast path (plain lists instead of
# _OpenFlow instances):
# 0 victim, 1 protocol id, 2 first_ts, 3 last_ts, 4 requests,
# 5 honeypot-id bitmask, 6 creation seq.
def detect_columns(
    config: DetectionConfig,
    columns: RequestColumns,
    shard_index: int = 0,
    n_shards: int = 1,
) -> List[AmpPotEvent]:
    """Event extraction over a columnar request log — the object path
    inlined.

    Produces the exact event list :class:`HoneypotDetector` yields over
    ``columns.to_batches()`` (same events, same order). The set of abused
    honeypot instances is tracked as a bitmask instead of a ``set`` — only
    its cardinality survives into the event.
    """
    protocols = columns.protocols
    n_protocols = max(1, len(protocols))

    gap_timeout = config.gap_timeout
    sweep_interval = gap_timeout / 4
    min_requests = config.min_requests
    max_duration = config.max_event_duration
    heappush, heappop = heapq.heappush, heapq.heappop

    # Keys are the packed integer victim * n_protocols + protocol_id —
    # cheaper to hash than (victim, protocol) tuples.
    flows: dict = {}
    heap: List[Tuple[float, int]] = []
    events: List[AmpPotEvent] = []
    last_sweep = float("-inf")
    next_seq = 0
    sharded = n_shards > 1

    def close(record: list, capped: bool = False) -> None:
        if record[4] <= min_requests:
            return
        end_ts = record[3]
        if capped:
            capped_end = record[2] + max_duration
            if capped_end < end_ts:
                end_ts = capped_end
        events.append(
            AmpPotEvent(
                victim=record[0],
                start_ts=record[2],
                end_ts=end_ts,
                protocol=protocols[record[1]],
                requests=record[4],
                honeypots=bin(record[5]).count("1"),
            )
        )

    for now, victim, honeypot_id, protocol_id, count in zip(
        columns.timestamps,
        columns.victims,
        columns.honeypot_ids,
        columns.protocol_ids,
        columns.counts,
    ):
        if sharded and victim % n_shards != shard_index:
            continue
        if now - last_sweep >= sweep_interval:
            last_sweep = now
            cutoff = now - gap_timeout
            swept: List[Tuple[int, list]] = []
            while heap and heap[0][0] < cutoff:
                _, entry_key = heappop(heap)
                record = flows.get(entry_key)
                if record is None:
                    continue  # entry outlived its flow
                if record[3] < cutoff:
                    del flows[entry_key]
                    swept.append((record[6], record))
                else:
                    heappush(heap, (record[3], entry_key))
            if swept:
                swept.sort(key=lambda pair: pair[0])
                for _, record in swept:
                    close(record)
        key = victim * n_protocols + protocol_id
        record = flows.get(key)
        if record is not None:
            cap_exceeded = now - record[2] > max_duration
            if cap_exceeded or now - record[3] > gap_timeout:
                del flows[key]
                close(record, capped=cap_exceeded)
                record = None
        if record is None:
            record = [victim, protocol_id, now, now, 0, 0, next_seq]
            next_seq += 1
            flows[key] = record
            heappush(heap, (now, key))
        if now > record[3]:
            record[3] = now
        record[4] += count
        record[5] |= 1 << honeypot_id

    for record in flows.values():
        close(record)
    return events


# Sketch-tier heavy-record slots (one record per victim/protocol pair):
# 0 first_ts, 1 last_ts, 2 requests, 3 honeypot-id bitmask.
# Slot 2 is the eviction count.
_SKETCH_COUNT_SLOT = 2


def _combine_honeypot_records(mine: list, theirs: list) -> None:
    """Fold two per-pair records (shard merge): min/max stamps, sums, unions."""
    if theirs[0] < mine[0]:
        mine[0] = theirs[0]
    if theirs[1] > mine[1]:
        mine[1] = theirs[1]
    mine[2] += theirs[2]
    mine[3] |= theirs[3]


class HoneypotSketch:
    """Mergeable sketch-tier summary of one request-log shard.

    Keys are the same packed ``victim * n_protocols + protocol_id``
    integers the columnar tier uses; the protocol interning table rides
    along so a merged summary can unpack them. Merging requires the
    same table on both sides (always true for shards of one capture);
    a summary of an empty capture merges with anything.
    """

    def __init__(
        self,
        config: DetectionConfig,
        sketch_config: SketchConfig,
        protocols: Tuple[str, ...],
    ) -> None:
        self.config = config
        self.protocols = protocols
        self.sketch = FlowSketch(sketch_config, count_slot=_SKETCH_COUNT_SLOT)

    def merge(self, other: "HoneypotSketch") -> "HoneypotSketch":
        if self.config != other.config:
            raise ValueError(
                f"cannot merge honeypot sketches with different detection "
                f"configs: {self.config} vs {other.config}"
            )
        if self.protocols != other.protocols:
            if not self.protocols and not self.sketch.heavy:
                self.protocols = other.protocols
            elif other.protocols or other.sketch.heavy:
                raise ValueError(
                    "cannot merge honeypot sketches with different protocol "
                    f"tables: {self.protocols!r} vs {other.protocols!r}"
                )
        self.sketch.merge(other.sketch, _combine_honeypot_records)
        return self

    @classmethod
    def merge_all(
        cls, summaries: Iterable["HoneypotSketch"]
    ) -> "HoneypotSketch":
        merged = None
        for summary in summaries:
            merged = summary if merged is None else merged.merge(summary)
        if merged is None:
            raise ValueError("merge_all needs at least one summary")
        return merged

    def cardinality(self) -> float:
        """Approximate distinct (victim, protocol) pairs observed."""
        return self.sketch.cardinality()

    def estimate(self, victim: int, protocol_id: int) -> int:
        """Upper-bound request count for one victim/protocol pair."""
        n_protocols = max(1, len(self.protocols))
        return self.sketch.estimate(victim * n_protocols + protocol_id)

    def events(self) -> List[AmpPotEvent]:
        """Classify per-pair aggregates into approximate events.

        One event per (victim, protocol) — neither idle-gap splitting
        nor the 24h duration cap is applied at this tier, so a long
        intermittent attack surfaces as one spanning event instead of
        several. The request-count filter matches the exact tier's
        strict ``> min_requests``.
        """
        min_requests = self.config.min_requests
        protocols = self.protocols
        n_protocols = max(1, len(protocols))
        sketch = self.sketch
        spilled = sketch.evictions > 0
        spill_estimate = sketch.spill.estimate
        events: List[AmpPotEvent] = []
        for key, record in sketch.heavy.items():
            requests = record[2]
            if spilled:
                requests += spill_estimate(key)
            if requests <= min_requests:
                continue
            events.append(
                AmpPotEvent(
                    victim=key // n_protocols,
                    start_ts=record[0],
                    end_ts=record[1],
                    protocol=protocols[key % n_protocols],
                    requests=requests,
                    honeypots=bin(record[3]).count("1"),
                )
            )
        events.sort(
            key=lambda event: (event.start_ts, event.victim, event.protocol)
        )
        return events


def detect_sketch(
    config: DetectionConfig,
    columns: RequestColumns,
    shard_index: int = 0,
    n_shards: int = 1,
    sketch_config: Optional[SketchConfig] = None,
) -> HoneypotSketch:
    """Sketch-tier ingestion of a columnar request log.

    Per-row work is one dict hit plus three in-place mutations — no
    expiry heap, no gap/cap bookkeeping. Returns the mergeable
    :class:`HoneypotSketch`; call ``events()`` on the (merged) summary.
    """
    protocols = columns.protocols
    n_protocols = max(1, len(protocols))
    summary = HoneypotSketch(config, sketch_config or SketchConfig(), protocols)
    sketch = summary.sketch
    heavy = sketch.heavy
    admit = sketch.admit
    rows = zip(
        columns.timestamps,
        columns.victims,
        columns.honeypot_ids,
        columns.protocol_ids,
        columns.counts,
    )
    if n_shards > 1:
        for now, victim, honeypot_id, protocol_id, count in rows:
            if victim % n_shards != shard_index:
                continue
            key = victim * n_protocols + protocol_id
            try:
                record = heavy[key]
                record[1] = now
                record[2] += count
                record[3] |= 1 << honeypot_id
            except KeyError:
                admit(key, [now, now, count, 1 << honeypot_id])
    else:
        for now, victim, honeypot_id, protocol_id, count in rows:
            key = victim * n_protocols + protocol_id
            try:
                record = heavy[key]
                record[1] = now
                record[2] += count
                record[3] |= 1 << honeypot_id
            except KeyError:
                admit(key, [now, now, count, 1 << honeypot_id])
    sketch.rows += len(columns)
    return summary
