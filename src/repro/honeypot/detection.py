"""Event extraction from the honeypot request logs.

Request batches from all instances are merged per (victim, protocol) into
attack events. A gap longer than the aggregation timeout closes the event;
events shorter than the 100-request threshold are dropped (scans and
dribble), and — matching how AmpPot operates — event durations are capped at
24 hours by closing and reopening the flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.honeypot.amppot import RequestBatch

DAY_SECONDS = 86400.0


@dataclass(frozen=True)
class DetectionConfig:
    """Aggregation and filtering parameters (defaults per the paper)."""

    gap_timeout: float = 3600.0
    min_requests: int = 100
    max_event_duration: float = DAY_SECONDS


@dataclass(frozen=True)
class AmpPotEvent:
    """One reflection/amplification attack event."""

    victim: int
    start_ts: float
    end_ts: float
    protocol: str
    requests: int
    honeypots: int

    @property
    def duration(self) -> float:
        return self.end_ts - self.start_ts

    @property
    def avg_rps(self) -> float:
        """Average requests/second made to *each* abused reflector.

        This is the paper's intensity metric for the honeypot data set: the
        total request volume normalized by duration and by the number of
        honeypot instances that logged the attack.
        """
        duration = max(self.duration, 1.0)
        return self.requests / duration / max(self.honeypots, 1)


@dataclass
class _OpenFlow:
    victim: int
    protocol: str
    first_ts: float
    last_ts: float
    requests: int = 0
    honeypot_ids: Set[int] = field(default_factory=set)

    def add(self, batch: RequestBatch) -> None:
        self.last_ts = max(self.last_ts, batch.timestamp)
        self.requests += batch.count
        self.honeypot_ids.add(batch.honeypot_id)


class HoneypotDetector:
    """Streaming aggregation of request batches into attack events."""

    def __init__(self, config: DetectionConfig = DetectionConfig()) -> None:
        self.config = config
        self._flows: Dict[Tuple[int, str], _OpenFlow] = {}
        self._last_sweep = float("-inf")
        self.batches_seen = 0
        self.flows_discarded = 0

    def process(self, batch: RequestBatch) -> List[AmpPotEvent]:
        """Feed one batch (time-sorted input); return closed events."""
        self.batches_seen += 1
        closed = self._maybe_sweep(batch.timestamp)
        key = (batch.victim, batch.protocol)
        flow = self._flows.get(key)
        if flow is not None:
            gap_exceeded = batch.timestamp - flow.last_ts > self.config.gap_timeout
            cap_exceeded = (
                batch.timestamp - flow.first_ts > self.config.max_event_duration
            )
            if gap_exceeded or cap_exceeded:
                event = self._close(self._flows.pop(key), capped=cap_exceeded)
                if event is not None:
                    closed.append(event)
                flow = None
        if flow is None:
            flow = _OpenFlow(
                victim=batch.victim,
                protocol=batch.protocol,
                first_ts=batch.timestamp,
                last_ts=batch.timestamp,
            )
            self._flows[key] = flow
        flow.add(batch)
        return closed

    def run(self, batches: Iterable[RequestBatch]) -> Iterator[AmpPotEvent]:
        """Process a full capture, including the final flush."""
        for batch in batches:
            yield from self.process(batch)
        yield from self.flush()

    def flush(self) -> List[AmpPotEvent]:
        """Close every open flow at end of capture."""
        events = []
        for flow in self._flows.values():
            event = self._close(flow)
            if event is not None:
                events.append(event)
        self._flows.clear()
        return events

    def _maybe_sweep(self, now: float) -> List[AmpPotEvent]:
        """Expire idle flows periodically so memory stays bounded."""
        if now - self._last_sweep < self.config.gap_timeout / 4:
            return []
        self._last_sweep = now
        cutoff = now - self.config.gap_timeout
        expired_keys = [k for k, f in self._flows.items() if f.last_ts < cutoff]
        events = []
        for key in expired_keys:
            event = self._close(self._flows.pop(key))
            if event is not None:
                events.append(event)
        return events

    def _close(self, flow: _OpenFlow, capped: bool = False) -> Optional[AmpPotEvent]:
        if flow.requests <= self.config.min_requests:
            self.flows_discarded += 1
            return None
        end_ts = flow.last_ts
        if capped:
            end_ts = min(end_ts, flow.first_ts + self.config.max_event_duration)
        return AmpPotEvent(
            victim=flow.victim,
            start_ts=flow.first_ts,
            end_ts=end_ts,
            protocol=flow.protocol,
            requests=flow.requests,
            honeypots=len(flow.honeypot_ids),
        )
