"""The honeypot fleet and what it receives.

AmpPot instances emulate amplification-prone UDP services attractively
enough that attackers' reflector scans pick them up. During a reflection
attack, each abused honeypot receives the spoofed request stream addressed
to the victim. Per the AmpPot paper, the fleet replies only to sources
sending fewer than three packets per minute (so it never contributes real
attack traffic) — the *requests* are what gets logged and analyzed.

The fleet mirrors the deployment in the paper: 24 instances, 11 in the
Americas, 8 in Europe, 4 in Asia, 1 in Australia, split between cloud
providers and volunteer-operated machines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from random import Random
from typing import Iterable, Iterator, List, Tuple

from repro.attacks.attacker import ATTACK_REFLECTION, GroundTruthAttack
from repro.net.protocols import REFLECTION_PROTOCOLS

_REGION_PLAN: Tuple[Tuple[str, int], ...] = (
    ("america", 11),
    ("europe", 8),
    ("asia", 4),
    ("australia", 1),
)

#: Sources sending at or above this rate get no replies (harmlessness rule).
REPLY_RATE_LIMIT_PER_MINUTE = 3


@dataclass(frozen=True)
class HoneypotInstance:
    """One deployed honeypot."""

    instance_id: int
    address: int
    region: str
    operator: str  # "cloud" or "volunteer"

    def would_reply(self, requests_per_minute: float) -> bool:
        """Whether the rate limiter would answer this source at all."""
        return requests_per_minute < REPLY_RATE_LIMIT_PER_MINUTE


@dataclass(frozen=True)
class RequestBatch:
    """Spoofed requests logged by one honeypot in a one-second bucket."""

    timestamp: float
    victim: int
    honeypot_id: int
    protocol: str
    count: int

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError("request batch count must be positive")
        if self.protocol not in REFLECTION_PROTOCOLS:
            raise ValueError(f"unknown reflector protocol: {self.protocol!r}")


@dataclass(frozen=True)
class FleetConfig:
    """Fleet size and abuse dynamics."""

    seed: int = 6
    n_instances: int = 24
    # Probability that one instance appears in an attacker's reflector list.
    instance_abuse_probability: float = 0.45
    # Probability an attack abuses at least one honeypot is handled by
    # re-rolling: 1-(1-p)^24 ≈ 1 for the default p, matching "24 instances
    # catch most attacks".
    rate_jitter_sigma: float = 0.35
    # Scanner background traffic (filtered by the >100 request threshold).
    scans_per_day: int = 80
    scan_max_requests: int = 30


class AmpPotFleet:
    """Builds the fleet and converts attacks into logged request batches."""

    def __init__(self, config: FleetConfig = FleetConfig()) -> None:
        if config.n_instances <= 0:
            raise ValueError("fleet needs at least one instance")
        self.config = config
        self._rng = Random(config.seed)
        self.instances = self._deploy()

    def _deploy(self) -> List[HoneypotInstance]:
        rng = self._rng
        instances: List[HoneypotInstance] = []
        regions: List[str] = []
        for region, count in _REGION_PLAN:
            regions.extend([region] * count)
        # Scale the regional plan to the configured fleet size.
        while len(regions) < self.config.n_instances:
            regions.append(regions[len(regions) % len(_REGION_PLAN)])
        for index in range(self.config.n_instances):
            instances.append(
                HoneypotInstance(
                    instance_id=index,
                    address=0x2D000000 + rng.randrange(1 << 24),
                    region=regions[index],
                    operator="cloud" if rng.random() < 0.6 else "volunteer",
                )
            )
        return instances

    def abused_instances(self, rng: Random) -> List[HoneypotInstance]:
        """Which honeypots one attacker's reflector list includes.

        Every instance is included independently; if none lands in the list
        (rare at fleet size 24), the attack is simply unobserved — the same
        residual blind spot the real deployment has.
        """
        probability = self.config.instance_abuse_probability
        return [i for i in self.instances if rng.random() < probability]

    def observe(self, attack: GroundTruthAttack) -> Iterator[RequestBatch]:
        """Yield per-minute request batches for one reflection attack."""
        if attack.kind != ATTACK_REFLECTION:
            return
        rng = self._rng
        abused = self.abused_instances(rng)
        if not abused:
            return
        protocol = attack.reflector_protocol
        for instance in abused:
            # Per-honeypot rate varies around the per-reflector average.
            rate = attack.rate * math.exp(
                rng.gauss(0.0, self.config.rate_jitter_sigma)
            )
            minute = 0
            while minute * 60.0 < attack.duration:
                window = min(60.0, attack.duration - minute * 60.0)
                count = _poisson(rng, rate * window)
                if count > 0:
                    yield RequestBatch(
                        timestamp=attack.start + minute * 60.0 + rng.uniform(0.0, 1.0),
                        victim=attack.target,
                        honeypot_id=instance.instance_id,
                        protocol=protocol,
                        count=count,
                    )
                minute += 1

    def scanner_noise(self, n_days: int) -> Iterator[RequestBatch]:
        """Reflector scans: short, low-volume probes from real sources.

        These are *not* spoofed attacks — the "victim" is the scanner
        itself — and must be dropped by the 100-request event threshold.
        """
        rng = self._rng
        protocols = list(REFLECTION_PROTOCOLS)
        for day in range(n_days):
            for _ in range(self.config.scans_per_day):
                scanner = 0x50000000 + rng.randrange(1 << 26)
                start = day * 86400.0 + rng.uniform(0.0, 86400.0)
                protocol = rng.choice(protocols)
                instance = rng.choice(self.instances)
                yield RequestBatch(
                    timestamp=start,
                    victim=scanner,
                    honeypot_id=instance.instance_id,
                    protocol=protocol,
                    count=rng.randint(1, self.config.scan_max_requests),
                )

    def capture(
        self, attacks: Iterable[GroundTruthAttack], n_days: int = 0
    ) -> List[RequestBatch]:
        """Full time-sorted request log for the window."""
        batches: List[RequestBatch] = []
        for attack in attacks:
            batches.extend(self.observe(attack))
        if n_days > 0:
            batches.extend(self.scanner_noise(n_days))
        batches.sort(key=lambda b: b.timestamp)
        return batches


def _poisson(rng: Random, lam: float) -> int:
    if lam <= 0:
        return 0
    if lam > 500:
        return max(0, int(rng.gauss(lam, lam**0.5) + 0.5))
    limit = math.exp(-lam)
    k, product = 0, 1.0
    while True:
        product *= rng.random()
        if product <= limit:
            return k
        k += 1
