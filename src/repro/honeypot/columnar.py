"""Structure-of-arrays codec for honeypot request logs.

The honeypot counterpart of :mod:`repro.net.columnar`: a fleet capture is
a long time-sorted list of :class:`~repro.honeypot.amppot.RequestBatch`
objects, and the detector only ever reads five scalar fields from each.
:class:`RequestColumns` stores those fields as flat ``array`` columns;
protocol strings (a handful of reflection protocols) are interned into a
small lookup table and stored as one byte per row.

``to_batches(from_batches(log))`` reproduces the input list exactly — the
property the equivalence tests assert.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.honeypot.amppot import RequestBatch

#: Bumped whenever the column layout changes; part of the stage-cache
#: fingerprint so cached results never outlive their encoding.
REQUEST_COLUMNS_SCHEMA = 1


class RequestColumns:
    """A honeypot request log, one ``array`` column per field."""

    __slots__ = (
        "timestamps",
        "victims",
        "honeypot_ids",
        "protocol_ids",
        "counts",
        "protocols",
    )

    def __init__(self) -> None:
        self.timestamps = array("d")
        self.victims = array("I")
        self.honeypot_ids = array("I")
        self.protocol_ids = array("B")
        self.counts = array("Q")
        #: Interning table: protocol id -> protocol string, in first-seen
        #: order (deterministic for a given capture).
        self.protocols: Tuple[str, ...] = ()

    def __len__(self) -> int:
        return len(self.timestamps)

    @classmethod
    def from_batches(cls, batches: Iterable[RequestBatch]) -> "RequestColumns":
        """Encode a request log into columns (row order preserved)."""
        columns = cls()
        timestamps = columns.timestamps
        victims = columns.victims
        honeypot_ids = columns.honeypot_ids
        protocol_ids = columns.protocol_ids
        counts = columns.counts
        table: Dict[str, int] = {}
        for batch in batches:
            timestamps.append(batch.timestamp)
            victims.append(batch.victim)
            honeypot_ids.append(batch.honeypot_id)
            protocol_id = table.get(batch.protocol)
            if protocol_id is None:
                protocol_id = len(table)
                table[batch.protocol] = protocol_id
            protocol_ids.append(protocol_id)
            counts.append(batch.count)
        columns.protocols = tuple(table)
        return columns

    def row(self, index: int) -> RequestBatch:
        """Materialize one row back into a :class:`RequestBatch`."""
        return RequestBatch(
            timestamp=self.timestamps[index],
            victim=self.victims[index],
            honeypot_id=self.honeypot_ids[index],
            protocol=self.protocols[self.protocol_ids[index]],
            count=self.counts[index],
        )

    def to_batches(self) -> List[RequestBatch]:
        """Decode back into the object representation (exact inverse)."""
        return [self.row(index) for index in range(len(self))]


def encode_request_log(log: Sequence) -> RequestColumns:
    """Encode unless already columnar (idempotent stage-side helper)."""
    if isinstance(log, RequestColumns):
        return log
    return RequestColumns.from_batches(log)


__all__ = [
    "REQUEST_COLUMNS_SCHEMA",
    "RequestColumns",
    "encode_request_log",
]
