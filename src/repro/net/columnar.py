"""Structure-of-arrays codec for telescope packet captures.

A two-year capture window holds millions of :class:`~repro.net.packet.
PacketBatch` objects; handing them to the detector as Python objects costs
an attribute lookup (a dict probe plus descriptor call) per field per
batch. :class:`PacketColumns` stores the same capture as eleven flat
``array`` columns — one contiguous machine-typed buffer per field — so the
hot detection loop reads ``column[i]`` (a C-level index) instead, and the
whole capture is a handful of reference-free buffers instead of millions
of heap objects.

The encoding is exactly invertible: ``to_batches(from_batches(capture))``
reproduces the input list element-for-element, which is what the
equivalence tests pin down. Variable-length source-port sets are flattened
into one ``ports`` column with a per-row offsets column (row *i* owns
``ports[offsets[i]:offsets[i+1]]``, stored sorted); ``None`` quoted
protocols map to ``-1`` in a signed column.

Three derived columns are precomputed at encode time — ``backscatter``
(:attr:`PacketBatch.is_backscatter` as 0/1), ``attack_protos``
(:attr:`PacketBatch.attack_proto`), and ``sketch_packed`` — so the
classification branches run once per capture instead of once per
detection shard.

``sketch_packed`` packs every per-row quantity the sketch detection
tier accumulates (tcp count, icmp count, bytes, distinct destinations)
into one integer with 64-bit fields, choosing the tcp/icmp field by the
row's response protocol *here*, where the protocol is already known.
The sketch tier's hot loop then does a single ``record[2] += packed``
per row — one add maintains all four running sums at once. Summing is
safe because each field is non-negative and 64 bits wide: overflowing a
field into its neighbor would take 2**64 (~1.8e19) packets or bytes for
a single victim, far beyond any real capture. Non-backscatter rows
(which the sketch tier skips) pack to 0.
"""

from __future__ import annotations

from array import array
from typing import Iterable, List, Sequence

from repro.net.packet import PROTO_TCP, PacketBatch

#: Bumped whenever the column layout changes; part of the stage-cache
#: fingerprint so cached results never outlive their encoding.
PACKET_COLUMNS_SCHEMA = 2

# ``sketch_packed`` field layout (bit offsets of each 64-bit field).
SKETCH_PACKED_TCP_SHIFT = 0
SKETCH_PACKED_ICMP_SHIFT = 64
SKETCH_PACKED_BYTES_SHIFT = 128
SKETCH_PACKED_DSTS_SHIFT = 192
SKETCH_PACKED_FIELD_MASK = (1 << 64) - 1


class PacketColumns:
    """A packet-batch capture, one ``array`` column per field."""

    __slots__ = (
        "timestamps",
        "srcs",
        "protos",
        "counts",
        "sizes",
        "distinct_dsts",
        "tcp_flags",
        "icmp_types",
        "quoted_protos",
        "ports",
        "port_offsets",
        "backscatter",
        "attack_protos",
        "sketch_packed",
    )

    def __init__(self) -> None:
        self.timestamps = array("d")
        self.srcs = array("I")
        self.protos = array("B")
        self.counts = array("Q")
        self.sizes = array("Q")  # PacketBatch.bytes (name avoids builtin)
        self.distinct_dsts = array("I")
        self.tcp_flags = array("B")
        self.icmp_types = array("h")  # -1..255
        self.quoted_protos = array("h")  # -1 encodes None
        self.ports = array("I")  # flattened per-row sorted port sets
        self.port_offsets = array("Q", [0])
        # Derived (not round-tripped): per-row backscatter verdict and
        # attributed attack protocol, precomputed once at encode time.
        self.backscatter = array("B")
        self.attack_protos = array("h")
        # Derived: the sketch tier's per-row accumulator contributions
        # packed into one integer (see module docstring). A plain list —
        # packed values exceed 64 bits, so no array typecode fits.
        self.sketch_packed: List[int] = []

    def __len__(self) -> int:
        return len(self.timestamps)

    @classmethod
    def from_batches(cls, batches: Iterable[PacketBatch]) -> "PacketColumns":
        """Encode a capture list into columns (row order preserved)."""
        columns = cls()
        timestamps = columns.timestamps
        srcs = columns.srcs
        protos = columns.protos
        counts = columns.counts
        sizes = columns.sizes
        distinct_dsts = columns.distinct_dsts
        tcp_flags = columns.tcp_flags
        icmp_types = columns.icmp_types
        quoted_protos = columns.quoted_protos
        ports = columns.ports
        port_offsets = columns.port_offsets
        backscatter = columns.backscatter
        attack_protos = columns.attack_protos
        sketch_packed = columns.sketch_packed
        append_packed = sketch_packed.append
        for batch in batches:
            timestamps.append(batch.timestamp)
            srcs.append(batch.src)
            protos.append(batch.proto)
            counts.append(batch.count)
            sizes.append(batch.bytes)
            distinct_dsts.append(batch.distinct_dsts)
            tcp_flags.append(batch.tcp_flags)
            icmp_types.append(batch.icmp_type)
            quoted_protos.append(
                -1 if batch.quoted_proto is None else batch.quoted_proto
            )
            if batch.src_ports:
                ports.extend(sorted(batch.src_ports))
            port_offsets.append(len(ports))
            is_backscatter = batch.is_backscatter
            backscatter.append(1 if is_backscatter else 0)
            attack_protos.append(batch.attack_proto)
            if is_backscatter:
                append_packed(
                    (
                        batch.count
                        << (0 if batch.proto == PROTO_TCP else 64)
                    )
                    | (batch.bytes << SKETCH_PACKED_BYTES_SHIFT)
                    | (batch.distinct_dsts << SKETCH_PACKED_DSTS_SHIFT)
                )
            else:
                append_packed(0)
        return columns

    def row(self, index: int) -> PacketBatch:
        """Materialize one row back into a :class:`PacketBatch`."""
        quoted = self.quoted_protos[index]
        lo = self.port_offsets[index]
        hi = self.port_offsets[index + 1]
        return PacketBatch(
            timestamp=self.timestamps[index],
            src=self.srcs[index],
            proto=self.protos[index],
            count=self.counts[index],
            bytes=self.sizes[index],
            distinct_dsts=self.distinct_dsts[index],
            src_ports=frozenset(self.ports[lo:hi]),
            tcp_flags=self.tcp_flags[index],
            icmp_type=self.icmp_types[index],
            quoted_proto=None if quoted < 0 else quoted,
        )

    def to_batches(self) -> List[PacketBatch]:
        """Decode back into the object representation (exact inverse)."""
        return [self.row(index) for index in range(len(self))]


def encode_capture(capture: Sequence) -> PacketColumns:
    """Encode unless already columnar (idempotent stage-side helper)."""
    if isinstance(capture, PacketColumns):
        return capture
    return PacketColumns.from_batches(capture)


__all__ = [
    "PACKET_COLUMNS_SCHEMA",
    "SKETCH_PACKED_TCP_SHIFT",
    "SKETCH_PACKED_ICMP_SHIFT",
    "SKETCH_PACKED_BYTES_SHIFT",
    "SKETCH_PACKED_DSTS_SHIFT",
    "SKETCH_PACKED_FIELD_MASK",
    "PacketColumns",
    "encode_capture",
]
