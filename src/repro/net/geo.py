"""Range-based IP geolocation database (NetAcuity Edge substitute).

The paper geolocates every target address with NetAcuity Edge Premium. The
synthetic equivalent is a sorted list of non-overlapping address ranges, each
annotated with an ISO country code, built by the topology generator from its
country-weighted prefix allocation. Lookups are binary searches, so
annotating millions of events stays fast.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.net.addressing import Prefix

UNKNOWN_COUNTRY = "??"


@dataclass(frozen=True, order=True)
class GeoRange:
    """A contiguous address range mapped to one country."""

    first: int
    last: int
    country: str

    def __post_init__(self) -> None:
        if self.first > self.last:
            raise ValueError("range start exceeds range end")

    def contains(self, address: int) -> bool:
        return self.first <= address <= self.last


class GeoDatabase:
    """Sorted, non-overlapping range database with binary-search lookup."""

    def __init__(self, ranges: Iterable[GeoRange] = ()) -> None:
        self._ranges: List[GeoRange] = sorted(ranges)
        self._starts: List[int] = [r.first for r in self._ranges]
        self._validate()

    def _validate(self) -> None:
        for previous, current in zip(self._ranges, self._ranges[1:]):
            if current.first <= previous.last:
                raise ValueError(
                    f"overlapping geo ranges: {previous} and {current}"
                )

    def __len__(self) -> int:
        return len(self._ranges)

    @classmethod
    def from_prefixes(cls, allocations: Iterable[tuple]) -> "GeoDatabase":
        """Build from (prefix, country) pairs.

        Adjacent prefixes of the same country are merged into single ranges
        to keep the database compact.
        """
        ranges: List[GeoRange] = []
        for prefix, country in sorted(allocations, key=lambda item: item[0]):
            if not isinstance(prefix, Prefix):
                raise TypeError(f"expected Prefix, got {type(prefix).__name__}")
            if (
                ranges
                and ranges[-1].country == country
                and ranges[-1].last + 1 == prefix.network
            ):
                merged = GeoRange(ranges[-1].first, prefix.last, country)
                ranges[-1] = merged
            else:
                ranges.append(GeoRange(prefix.network, prefix.last, country))
        return cls(ranges)

    def country(self, address: int) -> str:
        """Country code for *address* (:data:`UNKNOWN_COUNTRY` if unmapped)."""
        index = bisect.bisect_right(self._starts, address) - 1
        if index < 0:
            return UNKNOWN_COUNTRY
        candidate = self._ranges[index]
        if candidate.contains(address):
            return candidate.country
        return UNKNOWN_COUNTRY

    def countries(self) -> Dict[str, int]:
        """Map of country code to number of addresses covered."""
        totals: Dict[str, int] = {}
        for geo_range in self._ranges:
            size = geo_range.last - geo_range.first + 1
            totals[geo_range.country] = totals.get(geo_range.country, 0) + size
        return totals

    def coverage(self) -> int:
        """Total number of addresses covered by the database."""
        return sum(r.last - r.first + 1 for r in self._ranges)

    def range_for(self, address: int) -> Optional[GeoRange]:
        """The range containing *address*, if any."""
        index = bisect.bisect_right(self._starts, address) - 1
        if index < 0:
            return None
        candidate = self._ranges[index]
        return candidate if candidate.contains(address) else None
