"""Compact packet model with count-compressed batches.

The telescope detection pipeline (the Corsaro RSDoS plugin re-implementation
in :mod:`repro.telescope.rsdos`) is packet-driven, exactly like the original.
Replaying a two-year window packet-by-packet in Python would be prohibitively
slow, so the capture layer emits :class:`PacketBatch` objects: *count*
identical-shaped packets observed within a one-second bucket. The detector
consumes either individual :class:`Packet` objects or batches through the
same code path; a batch is semantically equivalent to ``count`` packets with
the given attributes spread over the bucket.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterator, Optional

# IP protocol numbers (IANA).
PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17
PROTO_IGMP = 2
PROTO_GRE = 47

_PROTO_NAMES = {
    PROTO_ICMP: "ICMP",
    PROTO_TCP: "TCP",
    PROTO_UDP: "UDP",
    PROTO_IGMP: "IGMP",
    PROTO_GRE: "GRE",
}


def ip_proto_name(proto: int) -> str:
    """Human-readable name of an IP protocol number (``"Other"`` fallback)."""
    return _PROTO_NAMES.get(proto, "Other")


# TCP flag bits.
TCP_FIN = 0x01
TCP_SYN = 0x02
TCP_RST = 0x04
TCP_ACK = 0x10

# ICMP types considered "response" packets by the Moore et al. backscatter
# classifier (type, code ignored except for unreachable sub-analysis).
ICMP_ECHO_REPLY = 0
ICMP_DEST_UNREACH = 3
ICMP_SOURCE_QUENCH = 4
ICMP_REDIRECT = 5
ICMP_TIME_EXCEEDED = 11
ICMP_PARAM_PROBLEM = 12
ICMP_TIMESTAMP_REPLY = 14
ICMP_INFO_REPLY = 16
ICMP_ADDR_MASK_REPLY = 18

BACKSCATTER_ICMP_TYPES: FrozenSet[int] = frozenset(
    {
        ICMP_ECHO_REPLY,
        ICMP_DEST_UNREACH,
        ICMP_SOURCE_QUENCH,
        ICMP_REDIRECT,
        ICMP_TIME_EXCEEDED,
        ICMP_PARAM_PROBLEM,
        ICMP_TIMESTAMP_REPLY,
        ICMP_INFO_REPLY,
        ICMP_ADDR_MASK_REPLY,
    }
)


@dataclass(frozen=True)
class Packet:
    """A single IPv4 packet as seen by a passive capture point.

    Only the fields the detection pipelines inspect are modelled. For ICMP
    error messages that quote an offending packet (e.g. destination
    unreachable), ``quoted_proto`` carries the protocol of the quoted packet,
    mirroring how the RSDoS plugin attributes attack protocol.
    """

    timestamp: float
    src: int
    dst: int
    proto: int
    length: int = 40
    src_port: int = 0
    dst_port: int = 0
    tcp_flags: int = 0
    icmp_type: int = -1
    quoted_proto: Optional[int] = None

    @property
    def is_tcp_response(self) -> bool:
        """SYN/ACK or RST — the TCP backscatter signatures."""
        if self.proto != PROTO_TCP:
            return False
        syn_ack = (self.tcp_flags & (TCP_SYN | TCP_ACK)) == (TCP_SYN | TCP_ACK)
        rst = bool(self.tcp_flags & TCP_RST)
        return syn_ack or rst

    @property
    def is_icmp_response(self) -> bool:
        """Whether the packet is one of the backscatter ICMP reply types."""
        return self.proto == PROTO_ICMP and self.icmp_type in BACKSCATTER_ICMP_TYPES


@dataclass(frozen=True)
class PacketBatch:
    """``count`` packets with identical shape inside a one-second bucket.

    ``distinct_dsts`` and ``distinct_src_ports`` preserve the cardinality
    information the RSDoS classifier computes from raw packets (number of
    unique telescope addresses hit, i.e. spoofed sources from the victim's
    point of view, and number of distinct attacked ports).
    """

    timestamp: float
    src: int
    proto: int
    count: int
    bytes: int
    distinct_dsts: int = 1
    src_ports: FrozenSet[int] = field(default_factory=frozenset)
    tcp_flags: int = 0
    icmp_type: int = -1
    quoted_proto: Optional[int] = None

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError("batch count must be positive")
        if self.distinct_dsts <= 0:
            raise ValueError("batch must hit at least one destination")

    @property
    def is_backscatter(self) -> bool:
        """Whether the batch matches a backscatter response signature."""
        if self.proto == PROTO_TCP:
            syn_ack = (self.tcp_flags & (TCP_SYN | TCP_ACK)) == (TCP_SYN | TCP_ACK)
            return syn_ack or bool(self.tcp_flags & TCP_RST)
        if self.proto == PROTO_ICMP:
            return self.icmp_type in BACKSCATTER_ICMP_TYPES
        return False

    @property
    def attack_proto(self) -> int:
        """Protocol attributed to the *attack* that elicited this backscatter.

        TCP backscatter implies a TCP attack; ICMP error messages are
        attributed to the quoted packet's protocol when present (e.g. a UDP
        flood eliciting port-unreachable), otherwise to ICMP itself (e.g. a
        ping flood eliciting echo replies).
        """
        if self.proto == PROTO_TCP:
            return PROTO_TCP
        if self.proto == PROTO_ICMP and self.quoted_proto is not None:
            return self.quoted_proto
        return self.proto


def batch_from_packet(packet: Packet) -> PacketBatch:
    """Lift a single :class:`Packet` into an equivalent one-packet batch."""
    return PacketBatch(
        timestamp=packet.timestamp,
        src=packet.src,
        proto=packet.proto,
        count=1,
        bytes=packet.length,
        distinct_dsts=1,
        src_ports=frozenset({packet.src_port}) if packet.src_port else frozenset(),
        tcp_flags=packet.tcp_flags,
        icmp_type=packet.icmp_type,
        quoted_proto=packet.quoted_proto,
    )


def expand_batch(batch: PacketBatch) -> Iterator[Packet]:
    """Expand a batch into individual packets (testing/debug helper).

    The expansion spreads packets uniformly over the one-second bucket and
    round-robins the recorded source ports; it is the inverse of the
    compression the capture layer performs, up to sub-second timing.
    """
    ports = sorted(batch.src_ports) or [0]
    step = 1.0 / batch.count
    for i in range(batch.count):
        yield Packet(
            timestamp=batch.timestamp + i * step,
            src=batch.src,
            dst=0,
            proto=batch.proto,
            length=max(1, batch.bytes // batch.count),
            src_port=ports[i % len(ports)],
            tcp_flags=batch.tcp_flags,
            icmp_type=batch.icmp_type,
            quoted_proto=batch.quoted_proto,
        )
