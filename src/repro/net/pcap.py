"""Minimal pcap reader/writer for raw-IP captures.

Writes the classic libpcap file format (magic ``0xa1b2c3d4``, microsecond
timestamps, linktype ``LINKTYPE_RAW`` = 101: packets begin directly with
the IPv4 header) so simulated telescope captures can be inspected with
tcpdump/Wireshark, and external raw-IP pcaps can be replayed through the
RSDoS detector.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Iterable, Iterator, Union

from repro.net.packet import Packet, PacketBatch, batch_from_packet, expand_batch
from repro.net.wire import decode_packet, encode_packet

PCAP_MAGIC = 0xA1B2C3D4
PCAP_VERSION = (2, 4)
LINKTYPE_RAW = 101
_GLOBAL_HEADER = struct.Struct("!IHHiIII")
_RECORD_HEADER = struct.Struct("!IIII")


class PcapFormatError(ValueError):
    """Raised on malformed pcap input."""


def write_pcap(
    packets: Iterable[Packet], path: Union[str, Path], snaplen: int = 65535
) -> int:
    """Write packets to *path*; returns the number written."""
    count = 0
    with open(path, "wb") as handle:
        handle.write(
            _GLOBAL_HEADER.pack(
                PCAP_MAGIC, *PCAP_VERSION, 0, 0, snaplen, LINKTYPE_RAW
            )
        )
        for packet in packets:
            frame = encode_packet(packet)[:snaplen]
            seconds = int(packet.timestamp)
            micros = int(round((packet.timestamp - seconds) * 1_000_000))
            handle.write(
                _RECORD_HEADER.pack(
                    seconds, micros, len(frame), max(len(frame), packet.length)
                )
            )
            handle.write(frame)
            count += 1
    return count


def write_batches_pcap(
    batches: Iterable[PacketBatch], path: Union[str, Path]
) -> int:
    """Expand count-compressed batches and write them as a pcap."""
    def packets() -> Iterator[Packet]:
        for batch in batches:
            yield from expand_batch(batch)

    return write_pcap(packets(), path)


def read_pcap(path: Union[str, Path]) -> Iterator[Packet]:
    """Yield packets from a raw-IP pcap written by :func:`write_pcap`.

    Big- and little-endian classic pcap files are accepted; nanosecond
    variants and non-raw linktypes are rejected explicitly.
    """
    with open(path, "rb") as handle:
        header = handle.read(_GLOBAL_HEADER.size)
        if len(header) < _GLOBAL_HEADER.size:
            raise PcapFormatError("truncated pcap global header")
        magic_be = struct.unpack("!I", header[:4])[0]
        if magic_be == PCAP_MAGIC:
            order = "!"
        elif magic_be == 0xD4C3B2A1:
            order = "<"
        else:
            raise PcapFormatError(f"unrecognized pcap magic {magic_be:#x}")
        fields = struct.unpack(order + "IHHiIII", header)
        linktype = fields[6]
        if linktype != LINKTYPE_RAW:
            raise PcapFormatError(
                f"unsupported linktype {linktype} (need RAW/101)"
            )
        record = struct.Struct(order + "IIII")
        while True:
            raw = handle.read(record.size)
            if not raw:
                return
            if len(raw) < record.size:
                raise PcapFormatError("truncated pcap record header")
            seconds, micros, captured, _original = record.unpack(raw)
            frame = handle.read(captured)
            if len(frame) < captured:
                raise PcapFormatError("truncated pcap record body")
            yield decode_packet(frame, timestamp=seconds + micros / 1e6)


def read_pcap_as_batches(path: Union[str, Path]) -> Iterator[PacketBatch]:
    """Read a pcap as one-packet batches for the detection pipelines."""
    for packet in read_pcap(path):
        yield batch_from_packet(packet)
