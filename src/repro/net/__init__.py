"""Networking substrate: addressing, packets, protocol registry, routing, geo.

These modules provide the low-level building blocks shared by every
measurement substrate in this reproduction: integer-based IPv4 address
handling, a compact packet model with count-compressed batches, the
IANA-style port registry used for Table 8, a longest-prefix-match routing
table (Routeviews substitute), and a range-based geolocation database
(NetAcuity substitute).
"""

from repro.net.addressing import (
    IPv4_MAX,
    Prefix,
    format_ipv4,
    parse_ipv4,
    slash8,
    slash16,
    slash24,
)
from repro.net.packet import Packet, PacketBatch, ip_proto_name
from repro.net.protocols import (
    PORT_SERVICES,
    REFLECTION_PROTOCOLS,
    ReflectionProtocol,
    service_for_port,
)
from repro.net.routing import RoutingTable
from repro.net.geo import GeoDatabase, GeoRange
from repro.net.wire import decode_packet, encode_packet
from repro.net.pcap import read_pcap, read_pcap_as_batches, write_pcap, write_batches_pcap

__all__ = [
    "IPv4_MAX",
    "Prefix",
    "format_ipv4",
    "parse_ipv4",
    "slash8",
    "slash16",
    "slash24",
    "Packet",
    "PacketBatch",
    "ip_proto_name",
    "PORT_SERVICES",
    "REFLECTION_PROTOCOLS",
    "ReflectionProtocol",
    "service_for_port",
    "RoutingTable",
    "GeoDatabase",
    "GeoRange",
    "decode_packet",
    "encode_packet",
    "read_pcap",
    "read_pcap_as_batches",
    "write_pcap",
    "write_batches_pcap",
]
