"""Wire-format encoding and decoding of packets.

Serializes the :class:`~repro.net.packet.Packet` model to real IPv4 frames
(IP header plus TCP/UDP/ICMP) and parses them back. This is what lets the
simulated telescope captures round-trip through standard tooling (see
:mod:`repro.net.pcap`) and lets the detection pipeline consume raw frames
from outside the simulator.

Only the fields the analysis inspects are modelled; everything else is
emitted as sane defaults (TTL 64, no options, checksums computed for the
IP header, zeroed for the transport layer as many capture pipelines do).
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.net.packet import (
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    Packet,
)

IP_HEADER_LEN = 20
TCP_HEADER_LEN = 20
UDP_HEADER_LEN = 8
ICMP_HEADER_LEN = 8


class WireFormatError(ValueError):
    """Raised when a frame cannot be parsed as an IPv4 packet."""


def ip_checksum(header: bytes) -> int:
    """The standard Internet checksum over *header* (even length)."""
    if len(header) % 2:
        header += b"\x00"
    total = sum(struct.unpack(f"!{len(header) // 2}H", header))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def encode_packet(packet: Packet) -> bytes:
    """Encode a packet as a raw IPv4 frame.

    The declared total length honours ``packet.length`` when it is at least
    as large as the headers actually emitted (padding is appended); shorter
    declared lengths are corrected upward.
    """
    if packet.proto == PROTO_TCP:
        transport = _encode_tcp(packet)
    elif packet.proto == PROTO_UDP:
        transport = _encode_udp(packet)
    elif packet.proto == PROTO_ICMP:
        transport = _encode_icmp(packet)
    else:
        transport = b""
    total_length = max(IP_HEADER_LEN + len(transport), packet.length)
    padding = b"\x00" * (total_length - IP_HEADER_LEN - len(transport))
    header = struct.pack(
        "!BBHHHBBH4s4s",
        (4 << 4) | (IP_HEADER_LEN // 4),  # version + IHL
        0,  # DSCP/ECN
        total_length,
        0,  # identification
        0,  # flags/fragment offset
        64,  # TTL
        packet.proto,
        0,  # checksum placeholder
        packet.src.to_bytes(4, "big"),
        packet.dst.to_bytes(4, "big"),
    )
    checksum = ip_checksum(header)
    header = header[:10] + struct.pack("!H", checksum) + header[12:]
    return header + transport + padding


def _encode_tcp(packet: Packet) -> bytes:
    return struct.pack(
        "!HHIIBBHHH",
        packet.src_port,
        packet.dst_port,
        0,  # seq
        0,  # ack
        (TCP_HEADER_LEN // 4) << 4,
        packet.tcp_flags,
        8192,  # window
        0,  # checksum (left zero)
        0,  # urgent pointer
    )


def _encode_udp(packet: Packet) -> bytes:
    return struct.pack(
        "!HHHH", packet.src_port, packet.dst_port, UDP_HEADER_LEN, 0
    )


def _encode_icmp(packet: Packet) -> bytes:
    body = struct.pack(
        "!BBHI", max(0, packet.icmp_type), 0, 0, 0
    )
    if packet.quoted_proto is not None:
        # ICMP errors quote the offending IP header; emit a minimal quoted
        # header carrying the protocol so attribution survives round-trips.
        quoted = struct.pack(
            "!BBHHHBBH4s4s",
            (4 << 4) | 5, 0, IP_HEADER_LEN, 0, 0, 64,
            packet.quoted_proto, 0,
            packet.dst.to_bytes(4, "big"),
            packet.src.to_bytes(4, "big"),
        )
        body += quoted
    return body


def decode_packet(frame: bytes, timestamp: float = 0.0) -> Packet:
    """Parse a raw IPv4 frame back into a :class:`Packet`."""
    if len(frame) < IP_HEADER_LEN:
        raise WireFormatError("frame shorter than an IPv4 header")
    version_ihl = frame[0]
    if version_ihl >> 4 != 4:
        raise WireFormatError("not an IPv4 frame")
    ihl = (version_ihl & 0x0F) * 4
    if ihl < IP_HEADER_LEN or len(frame) < ihl:
        raise WireFormatError("truncated IPv4 header")
    total_length = struct.unpack("!H", frame[2:4])[0]
    proto = frame[9]
    src = int.from_bytes(frame[12:16], "big")
    dst = int.from_bytes(frame[16:20], "big")
    payload = frame[ihl:]

    src_port = dst_port = 0
    tcp_flags = 0
    icmp_type = -1
    quoted_proto: Optional[int] = None
    if proto == PROTO_TCP and len(payload) >= TCP_HEADER_LEN:
        src_port, dst_port = struct.unpack("!HH", payload[:4])
        tcp_flags = payload[13]
    elif proto == PROTO_UDP and len(payload) >= UDP_HEADER_LEN:
        src_port, dst_port = struct.unpack("!HH", payload[:4])
    elif proto == PROTO_ICMP and len(payload) >= ICMP_HEADER_LEN:
        icmp_type = payload[0]
        if len(payload) >= ICMP_HEADER_LEN + IP_HEADER_LEN:
            quoted = payload[ICMP_HEADER_LEN:]
            if quoted[0] >> 4 == 4:
                quoted_proto = quoted[9]
    return Packet(
        timestamp=timestamp,
        src=src,
        dst=dst,
        proto=proto,
        length=total_length,
        src_port=src_port,
        dst_port=dst_port,
        tcp_flags=tcp_flags,
        icmp_type=icmp_type,
        quoted_proto=quoted_proto,
    )
