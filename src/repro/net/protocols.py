"""Protocol and port registries.

Two registries live here:

* :data:`PORT_SERVICES` — the IANA-style port-to-service mapping used to
  attribute single-port randomly spoofed attacks to applications (Table 8 in
  the paper). The mapping combines IANA assignments with commonly used port
  numbers (gaming ports, Steam), exactly as the paper describes.
* :data:`REFLECTION_PROTOCOLS` — the eight UDP protocols AmpPot emulates,
  with bandwidth amplification factors taken from Rossow's "Amplification
  Hell" (NDSS 2014) measurements. The factors drive how much reflected
  traffic the honeypot substrate attributes per request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.net.packet import PROTO_TCP, PROTO_UDP


@dataclass(frozen=True)
class ReflectionProtocol:
    """A UDP protocol abusable for reflection and amplification."""

    name: str
    port: int
    amplification: float
    request_size: int

    def reflected_bytes(self, requests: int) -> int:
        """Bytes sent to the victim for *requests* spoofed requests."""
        return int(requests * self.request_size * self.amplification)


# The eight protocols AmpPot emulates (paper, footnote 2). Amplification
# factors follow Rossow (NDSS'14): NTP monlist 556.9x, DNS (open resolver,
# ANY) 28.7x, CharGen 358.8x, SSDP 30.8x, RIPv1 131.3x, QOTD 140.3x,
# MS SQL (SSRP) 25.0x, TFTP 60.0x (Sieklik et al.).
REFLECTION_PROTOCOLS: Dict[str, ReflectionProtocol] = {
    proto.name: proto
    for proto in (
        ReflectionProtocol("NTP", 123, 556.9, 8),
        ReflectionProtocol("DNS", 53, 28.7, 64),
        ReflectionProtocol("CharGen", 19, 358.8, 1),
        ReflectionProtocol("SSDP", 1900, 30.8, 90),
        ReflectionProtocol("RIPv1", 520, 131.3, 24),
        ReflectionProtocol("QOTD", 17, 140.3, 1),
        ReflectionProtocol("MSSQL", 1434, 25.0, 1),
        ReflectionProtocol("TFTP", 69, 60.0, 20),
    )
}

# Service names for well-known and commonly attacked ports, keyed by
# (ip_proto, port). Game-server ports are labelled with their port number in
# Table 8b of the paper; we keep the numeric label for those to make the
# reproduced table directly comparable.
PORT_SERVICES: Dict[Tuple[int, int], str] = {
    (PROTO_TCP, 80): "HTTP",
    (PROTO_TCP, 443): "HTTPS",
    (PROTO_TCP, 8080): "HTTP-alt",
    (PROTO_TCP, 3306): "MySQL",
    (PROTO_TCP, 53): "DNS",
    (PROTO_TCP, 1723): "VPN PPTP",
    (PROTO_TCP, 25): "SMTP",
    (PROTO_TCP, 22): "SSH",
    (PROTO_TCP, 21): "FTP",
    (PROTO_TCP, 3389): "RDP",
    (PROTO_TCP, 6667): "IRC",
    (PROTO_TCP, 5222): "XMPP",
    (PROTO_TCP, 1433): "MSSQL",
    (PROTO_TCP, 110): "POP3",
    (PROTO_TCP, 143): "IMAP",
    (PROTO_UDP, 27015): "27015",  # Source engine / Steam game servers
    (PROTO_UDP, 37547): "37547",  # game/voice servers (paper Table 8b)
    (PROTO_UDP, 32124): "32124",
    (PROTO_UDP, 28183): "28183",
    (PROTO_UDP, 3306): "MySQL",
    (PROTO_UDP, 123): "NTP",
    (PROTO_UDP, 53): "DNS",
    (PROTO_UDP, 138): "NetBIOS",
    (PROTO_UDP, 137): "NetBIOS-NS",
    (PROTO_UDP, 161): "SNMP",
    (PROTO_UDP, 1900): "SSDP",
    (PROTO_UDP, 19): "CharGen",
    (PROTO_UDP, 69): "TFTP",
}

# Ports whose services sit in front of Web content; used for the paper's
# "two thirds of TCP attacks potentially target Web infrastructure" analysis.
WEB_PORTS: Tuple[int, ...] = (80, 443)


def service_for_port(proto: int, port: int) -> str:
    """Map an (ip protocol, port) pair to a service label.

    Unknown ports map to their decimal string, mirroring the paper's
    treatment of unregistered game ports.
    """
    known = PORT_SERVICES.get((proto, port))
    if known is not None:
        return known
    return str(port)


def is_web_port(port: int) -> bool:
    """Whether *port* belongs to Web infrastructure (HTTP/HTTPS)."""
    return port in WEB_PORTS


def reflection_protocol_for_port(port: int) -> Optional[ReflectionProtocol]:
    """Reverse lookup of a reflection protocol by its UDP service port."""
    for proto in REFLECTION_PROTOCOLS.values():
        if proto.port == port:
            return proto
    return None
