"""IPv4 addressing utilities.

Addresses are plain ``int`` values throughout the code base: the analysis in
the paper operates on millions of addresses and integers keep joins,
set-membership tests and network-block rollups cheap. This module provides
the conversions and block arithmetic (/8, /16, /24) the paper's tables rely
on, plus a :class:`Prefix` type used by the routing table, the geolocation
database and the topology generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

IPv4_MAX = 2**32 - 1

_OCTET_SHIFTS = (24, 16, 8, 0)


def parse_ipv4(text: str) -> int:
    """Parse dotted-quad notation into an integer address.

    >>> parse_ipv4("1.2.3.4")
    16909060
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"not a dotted quad: {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_ipv4(address: int) -> str:
    """Render an integer address in dotted-quad notation.

    >>> format_ipv4(16909060)
    '1.2.3.4'
    """
    if not 0 <= address <= IPv4_MAX:
        raise ValueError(f"address out of range: {address}")
    return ".".join(str((address >> shift) & 0xFF) for shift in _OCTET_SHIFTS)


def slash24(address: int) -> int:
    """Return the /24 network block containing *address* (as a base address)."""
    return address & 0xFFFFFF00


def slash16(address: int) -> int:
    """Return the /16 network block containing *address* (as a base address)."""
    return address & 0xFFFF0000


def slash8(address: int) -> int:
    """Return the /8 network block containing *address* (as a base address)."""
    return address & 0xFF000000


def mask_for(length: int) -> int:
    """Return the 32-bit netmask for a prefix *length*."""
    if not 0 <= length <= 32:
        raise ValueError(f"prefix length out of range: {length}")
    if length == 0:
        return 0
    return (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF


@dataclass(frozen=True, order=True)
class Prefix:
    """An IPv4 prefix (network base address plus length).

    The base address is canonicalized at construction: host bits are
    cleared, so ``Prefix(parse_ipv4("10.0.0.1"), 8)`` equals
    ``Prefix(parse_ipv4("10.0.0.0"), 8)``.
    """

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ValueError(f"prefix length out of range: {self.length}")
        canonical = self.network & mask_for(self.length)
        if canonical != self.network:
            object.__setattr__(self, "network", canonical)

    @classmethod
    def from_string(cls, text: str) -> "Prefix":
        """Parse ``"a.b.c.d/len"`` notation."""
        address, _, length = text.partition("/")
        if not length:
            raise ValueError(f"missing prefix length in {text!r}")
        return cls(parse_ipv4(address), int(length))

    @property
    def size(self) -> int:
        """Number of addresses covered by this prefix."""
        return 1 << (32 - self.length)

    @property
    def last(self) -> int:
        """Highest address inside the prefix."""
        return self.network + self.size - 1

    def contains(self, address: int) -> bool:
        """Whether *address* falls inside this prefix."""
        return self.network <= address <= self.last

    def contains_prefix(self, other: "Prefix") -> bool:
        """Whether *other* is fully covered by this prefix."""
        return other.length >= self.length and self.contains(other.network)

    def overlaps(self, other: "Prefix") -> bool:
        """Whether the two prefixes share any address."""
        return self.network <= other.last and other.network <= self.last

    def slash24_blocks(self) -> Iterator[int]:
        """Yield the base address of every /24 block covered by this prefix.

        A prefix longer than /24 yields the single /24 containing it.
        """
        if self.length >= 24:
            yield slash24(self.network)
            return
        for block in range(self.network, self.last + 1, 256):
            yield block

    def random_address(self, rng) -> int:
        """Draw a uniformly random address from the prefix.

        *rng* is a ``random.Random``-compatible generator.
        """
        return self.network + rng.randrange(self.size)

    def __str__(self) -> str:
        return f"{format_ipv4(self.network)}/{self.length}"


def count_unique_blocks(addresses, block_fn=slash24) -> int:
    """Count distinct network blocks covering *addresses*.

    >>> count_unique_blocks([parse_ipv4("10.0.0.1"), parse_ipv4("10.0.0.9")])
    1
    """
    return len({block_fn(a) for a in addresses})
