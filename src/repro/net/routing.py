"""Longest-prefix-match routing table (Routeviews prefix-to-AS substitute).

The paper annotates every target IP address with its origin AS using CAIDA's
Routeviews prefix-to-AS data set. This module provides the same lookup
semantics over the synthetic BGP table produced by the topology generator.

Lookups run against a flattened binary-search index: one sorted
``array('I')`` of network base addresses per announced prefix length,
probed from the most-specific length down with :func:`bisect.bisect_left`.
IPv4 has at most 33 lengths, and synthetic tables announce only a handful,
so a lookup is a few bisects over contiguous machine-word arrays — much
faster than chasing per-bit trie nodes through the heap, and the index
rebuilds lazily after ``announce``/``withdraw`` churn.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.net.addressing import Prefix, mask_for


@dataclass
class _Level:
    """All announcements of one prefix length, packed for binary search."""

    __slots__ = ("length", "mask", "networks", "entries")

    length: int
    mask: int
    networks: array  # sorted base addresses, array('I')
    entries: List[Tuple[Prefix, int]]  # aligned with networks


class RoutingTable:
    """Prefix-to-AS mapping with longest-prefix-match lookup.

    >>> table = RoutingTable()
    >>> table.announce(Prefix.from_string("10.0.0.0/8"), asn=64500)
    >>> table.announce(Prefix.from_string("10.1.0.0/16"), asn=64501)
    >>> table.origin_asn(Prefix.from_string("10.1.2.0/24").network)
    64501
    """

    def __init__(self) -> None:
        self._announcements: Dict[Prefix, int] = {}
        self._levels: List[_Level] = []
        self._dirty = False

    def __len__(self) -> int:
        return len(self._announcements)

    def announce(self, prefix: Prefix, asn: int) -> None:
        """Install an announcement; a re-announcement replaces the origin."""
        self._announcements[prefix] = asn
        self._dirty = True

    def withdraw(self, prefix: Prefix) -> bool:
        """Remove an announcement. Returns whether it existed."""
        if prefix not in self._announcements:
            return False
        del self._announcements[prefix]
        self._dirty = True
        return True

    def _rebuild(self) -> None:
        """Pack announcements into per-length sorted arrays (most-specific
        first). ``Prefix`` canonicalizes host bits at construction, so the
        base address is usable as a search key without re-masking."""
        by_length: Dict[int, List[Tuple[int, Prefix, int]]] = {}
        for prefix, asn in self._announcements.items():
            by_length.setdefault(prefix.length, []).append(
                (prefix.network, prefix, asn)
            )
        levels = []
        for length in sorted(by_length, reverse=True):
            rows = sorted(by_length[length], key=lambda row: row[0])
            levels.append(
                _Level(
                    length=length,
                    mask=mask_for(length),
                    networks=array("I", (network for network, _, _ in rows)),
                    entries=[(prefix, asn) for _, prefix, asn in rows],
                )
            )
        self._levels = levels
        self._dirty = False

    def lookup(self, address: int) -> Optional[Tuple[Prefix, int]]:
        """Longest-prefix match; returns (prefix, origin ASN) or ``None``."""
        if self._dirty:
            self._rebuild()
        for level in self._levels:
            key = address & level.mask
            networks = level.networks
            index = bisect_left(networks, key)
            if index < len(networks) and networks[index] == key:
                return level.entries[index]
        return None

    def lookup_reference(self, address: int) -> Optional[Tuple[Prefix, int]]:
        """Reference linear scan over every announcement (verification
        path for the packed index; O(announcements) per call)."""
        best: Optional[Tuple[Prefix, int]] = None
        for prefix, asn in self._announcements.items():
            if prefix.contains(address) and (
                best is None or prefix.length > best[0].length
            ):
                best = (prefix, asn)
        return best

    def origin_asn(self, address: int) -> Optional[int]:
        """Origin ASN for *address*, or ``None`` if unrouted."""
        match = self.lookup(address)
        return match[1] if match else None

    def announced_prefixes(self) -> Iterator[Tuple[Prefix, int]]:
        """Iterate over all (prefix, asn) announcements, sorted by prefix."""
        for prefix in sorted(self._announcements):
            yield prefix, self._announcements[prefix]

    @classmethod
    def from_announcements(
        cls, announcements: Iterable[Tuple[Prefix, int]]
    ) -> "RoutingTable":
        """Bulk-build a table from (prefix, asn) pairs."""
        table = cls()
        for prefix, asn in announcements:
            table.announce(prefix, asn)
        return table
