"""Longest-prefix-match routing table (Routeviews prefix-to-AS substitute).

The paper annotates every target IP address with its origin AS using CAIDA's
Routeviews prefix-to-AS data set. This module provides the same lookup
semantics over the synthetic BGP table produced by the topology generator: a
binary trie keyed on address bits, returning the most-specific announced
prefix and its origin ASN.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.net.addressing import Prefix


@dataclass
class _TrieNode:
    __slots__ = ("children", "asn", "prefix")

    def __init__(self) -> None:
        self.children: List[Optional["_TrieNode"]] = [None, None]
        self.asn: Optional[int] = None
        self.prefix: Optional[Prefix] = None


class RoutingTable:
    """Prefix-to-AS mapping with longest-prefix-match lookup.

    >>> table = RoutingTable()
    >>> table.announce(Prefix.from_string("10.0.0.0/8"), asn=64500)
    >>> table.announce(Prefix.from_string("10.1.0.0/16"), asn=64501)
    >>> table.origin_asn(Prefix.from_string("10.1.2.0/24").network)
    64501
    """

    def __init__(self) -> None:
        self._root = _TrieNode()
        self._announcements: Dict[Prefix, int] = {}

    def __len__(self) -> int:
        return len(self._announcements)

    def announce(self, prefix: Prefix, asn: int) -> None:
        """Install an announcement; a re-announcement replaces the origin."""
        node = self._root
        for depth in range(prefix.length):
            bit = (prefix.network >> (31 - depth)) & 1
            if node.children[bit] is None:
                node.children[bit] = _TrieNode()
            node = node.children[bit]
        node.asn = asn
        node.prefix = prefix
        self._announcements[prefix] = asn

    def withdraw(self, prefix: Prefix) -> bool:
        """Remove an announcement. Returns whether it existed."""
        if prefix not in self._announcements:
            return False
        del self._announcements[prefix]
        node = self._root
        for depth in range(prefix.length):
            bit = (prefix.network >> (31 - depth)) & 1
            child = node.children[bit]
            if child is None:
                return False
            node = child
        node.asn = None
        node.prefix = None
        return True

    def lookup(self, address: int) -> Optional[Tuple[Prefix, int]]:
        """Longest-prefix match; returns (prefix, origin ASN) or ``None``."""
        node = self._root
        best: Optional[Tuple[Prefix, int]] = None
        for depth in range(32):
            if node.asn is not None and node.prefix is not None:
                best = (node.prefix, node.asn)
            bit = (address >> (31 - depth)) & 1
            child = node.children[bit]
            if child is None:
                return best
            node = child
        if node.asn is not None and node.prefix is not None:
            best = (node.prefix, node.asn)
        return best

    def origin_asn(self, address: int) -> Optional[int]:
        """Origin ASN for *address*, or ``None`` if unrouted."""
        match = self.lookup(address)
        return match[1] if match else None

    def announced_prefixes(self) -> Iterator[Tuple[Prefix, int]]:
        """Iterate over all (prefix, asn) announcements, sorted by prefix."""
        for prefix in sorted(self._announcements):
            yield prefix, self._announcements[prefix]

    @classmethod
    def from_announcements(
        cls, announcements: Iterable[Tuple[Prefix, int]]
    ) -> "RoutingTable":
        """Bulk-build a table from (prefix, asn) pairs."""
        table = cls()
        for prefix, asn in announcements:
            table.announce(prefix, asn)
        return table
