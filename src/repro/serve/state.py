"""Rolling fused state with query indexes: what the service serves from.

:class:`LiveFusedStore` wraps the incremental
:class:`~repro.core.streaming.StreamingFusion` (Table-1 aggregates, day
summaries, spike alerts) and adds the indexes a query API needs to stay
O(1) per request while the stream is still flowing:

* ``victim ip -> recent events`` (bounded ring per victim, so one
  much-attacked IP cannot grow memory without limit);
* ``/24 and /16 prefix -> victim set`` (prefix queries without scans);
* ``domain -> latest DPS status record``.

Everything here is deterministic: applying the same record sequence to a
fresh store — in one process or across any number of crash/recover
cycles — produces the same :meth:`state_digest`. That property is what
the recovery drills assert.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import deque
from typing import Deque, Dict, List, Optional, Set

from repro.core.events import AttackEvent
from repro.core.streaming import FUSION_STATE_VERSION, StreamingFusion
from repro.core.webmap import WebHostingIndex
from repro.net.addressing import slash16, slash24
from repro.obs.metrics import get_registry
from repro.pipeline.datasets import event_from_dict, event_to_dict

#: Version of the serialized LiveFusedStore state (snapshot payloads).
STORE_STATE_VERSION = 1


def validate_dps_record(data) -> Optional[str]:
    """Validate one DPS status record; None when valid, else a reason code."""
    if not isinstance(data, dict):
        return "not-an-object"
    domain = data.get("domain")
    if not isinstance(domain, str) or not domain:
        return "bad-type:domain"
    provider = data.get("provider")
    if not isinstance(provider, str) or not provider:
        return "bad-type:provider"
    day = data.get("day")
    if isinstance(day, bool) or not isinstance(day, int):
        return "bad-type:day"
    if day < 0:
        return "out-of-range:day"
    if "active" in data and not isinstance(data["active"], bool):
        return "bad-type:active"
    return None


def normalize_dps_record(data: dict) -> dict:
    """The canonical form a valid DPS record is stored and replayed as."""
    return {
        "domain": data["domain"],
        "provider": data["provider"],
        "day": data["day"],
        "active": bool(data.get("active", True)),
    }


class LiveFusedStore:
    """Fused state + query indexes over an incremental event stream."""

    def __init__(
        self,
        web_index: Optional[WebHostingIndex] = None,
        baseline_days: int = 7,
        alert_factor: float = 3.0,
        max_events_per_victim: int = 256,
        fusion: Optional[StreamingFusion] = None,
        metrics=None,
    ) -> None:
        if max_events_per_victim < 1:
            raise ValueError("need to keep at least one event per victim")
        self.fusion = (
            fusion
            if fusion is not None
            else StreamingFusion(
                web_index=web_index,
                baseline_days=baseline_days,
                alert_factor=alert_factor,
            )
        )
        self.max_events_per_victim = max_events_per_victim
        self.applied_events = 0
        self.applied_dps = 0
        # One writer (the applier) but many reader threads (HTTP
        # handlers) iterate the index dicts/sets below; without a lock a
        # concurrent apply raises "changed size during iteration" inside
        # a query and /digest can capture a half-applied record.
        # Re-entrant because summary() and state_digest() call other
        # locked methods.
        self._lock = threading.RLock()
        self._by_victim: Dict[int, Deque[dict]] = {}
        self._victims_by_slash24: Dict[int, Set[int]] = {}
        self._victims_by_slash16: Dict[int, Set[int]] = {}
        self._dps: Dict[str, dict] = {}
        registry = metrics if metrics is not None else get_registry()
        self._m_applied = registry.counter(
            "serve_applied_total", "records applied to the fused store",
            ("kind",),
        )

    # -- applying -------------------------------------------------------------

    def apply_attack(self, record: dict) -> None:
        """Apply one validated attack-event record (normalizing first).

        Order matters: the fusion's own monotonicity check runs *before*
        any index mutation, so a rejected record (out-of-order beyond the
        one-day tolerance) leaves the store untouched — the all-or-nothing
        property replay determinism rests on.
        """
        event = event_from_dict(record)
        with self._lock:
            self.fusion.ingest(event)
            normalized = event_to_dict(event)
            victim = event.target
            ring = self._by_victim.get(victim)
            if ring is None:
                ring = deque(maxlen=self.max_events_per_victim)
                self._by_victim[victim] = ring
            ring.append(normalized)
            self._victims_by_slash24.setdefault(
                slash24(victim), set()
            ).add(victim)
            self._victims_by_slash16.setdefault(
                slash16(victim), set()
            ).add(victim)
            self.applied_events += 1
        self._m_applied.inc(kind="attack")

    def apply_dps(self, record: dict) -> None:
        """Apply one validated DPS status record (latest-by-day wins)."""
        normalized = normalize_dps_record(record)
        domain = normalized["domain"]
        with self._lock:
            current = self._dps.get(domain)
            if current is None or normalized["day"] >= current["day"]:
                self._dps[domain] = normalized
            self.applied_dps += 1
        self._m_applied.inc(kind="dps")

    # -- queries --------------------------------------------------------------

    def events_for_ip(self, ip: int, limit: int = 50) -> List[dict]:
        """Most recent events against one victim IP, newest first."""
        with self._lock:
            ring = self._by_victim.get(ip)
            if not ring:
                return []
            return list(ring)[-limit:][::-1]

    def events_for_prefix(
        self, base: int, length: int, limit: int = 50
    ) -> List[dict]:
        """Most recent events against any victim in a /24 or /16."""
        with self._lock:
            if length == 24:
                victims = self._victims_by_slash24.get(slash24(base), ())
            elif length == 16:
                victims = self._victims_by_slash16.get(slash16(base), ())
            else:
                raise ValueError("prefix queries support /24 and /16 only")
            merged: List[dict] = []
            for victim in victims:
                merged.extend(self._by_victim.get(victim, ()))
        merged.sort(key=lambda e: (e["start_ts"], e["target"]), reverse=True)
        return merged[:limit]

    def victims_in_prefix(self, base: int, length: int) -> List[int]:
        with self._lock:
            if length == 24:
                return sorted(self._victims_by_slash24.get(slash24(base), ()))
            if length == 16:
                return sorted(self._victims_by_slash16.get(slash16(base), ()))
        raise ValueError("prefix queries support /24 and /16 only")

    def domain_status(self, domain: str) -> Optional[dict]:
        """Latest DPS status for one domain, or None if never reported."""
        with self._lock:
            record = self._dps.get(domain)
            return dict(record) if record else None

    def protected_domains(self) -> int:
        with self._lock:
            return sum(1 for r in self._dps.values() if r["active"])

    def summary(self) -> dict:
        """Live Table-1-style aggregates plus stream health."""
        with self._lock:
            summary = self.fusion.running_summary()
            summary.update(
                {
                    "days_closed": len(self.fusion.summaries),
                    "alerts": len(self.fusion.alerts),
                    "indexed_victims": len(self._by_victim),
                    "dps_domains": len(self._dps),
                    "dps_protected": self.protected_domains(),
                    "applied_events": self.applied_events,
                    "applied_dps": self.applied_dps,
                }
            )
        return summary

    # -- durable state --------------------------------------------------------

    def state_dict(self) -> dict:
        """Canonical JSON-able capture of the entire store."""
        with self._lock:
            return {
                "version": STORE_STATE_VERSION,
                "max_events_per_victim": self.max_events_per_victim,
                "applied_events": self.applied_events,
                "applied_dps": self.applied_dps,
                "fusion": self.fusion.state_dict(),
                "by_victim": {
                    str(victim): list(ring)
                    for victim, ring in sorted(self._by_victim.items())
                },
                "dps": {
                    domain: self._dps[domain] for domain in sorted(self._dps)
                },
            }

    @classmethod
    def from_state_dict(
        cls,
        state: dict,
        web_index: Optional[WebHostingIndex] = None,
        metrics=None,
    ) -> "LiveFusedStore":
        version = state.get("version")
        if version != STORE_STATE_VERSION:
            raise ValueError(
                f"store state v{version!r}, this build reads "
                f"v{STORE_STATE_VERSION}"
            )
        store = cls(
            max_events_per_victim=int(state["max_events_per_victim"]),
            fusion=StreamingFusion.from_state_dict(
                state["fusion"], web_index=web_index
            ),
            metrics=metrics,
        )
        store.applied_events = int(state["applied_events"])
        store.applied_dps = int(state["applied_dps"])
        for victim_text, events in state["by_victim"].items():
            victim = int(victim_text)
            ring: Deque[dict] = deque(
                events, maxlen=store.max_events_per_victim
            )
            store._by_victim[victim] = ring
            store._victims_by_slash24.setdefault(
                slash24(victim), set()
            ).add(victim)
            store._victims_by_slash16.setdefault(
                slash16(victim), set()
            ).add(victim)
        store._dps = {
            domain: dict(record)
            for domain, record in state["dps"].items()
        }
        return store

    def state_digest(self) -> str:
        """SHA-256 of the canonical state: the equivalence oracle the
        kill-9 drills compare across recoveries."""
        canonical = json.dumps(
            self.state_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


__all__ = [
    "LiveFusedStore",
    "STORE_STATE_VERSION",
    "normalize_dps_record",
    "validate_dps_record",
]
