"""The live ingestion service: intake, apply, snapshot, recover, drain.

Data path (one-way, deterministic)::

    HTTP handler threads                    applier thread
    --------------------                    --------------
    validate records
    breaker / watermark check
    [intake lock]
      assign sequence numbers
      append to WAL  (ack point)  ------>   take batch from queue
      push to admission queue               apply to LiveFusedStore
      tombstone any drop-oldest             rolling snapshot when due
    ack 202 / 503+Retry-After

The *ack point* is the WAL append: a record answered 202 is on disk
before the client hears back, so ``kill -9`` anywhere in this diagram
loses nothing acknowledged. Recovery is therefore snapshot-load + WAL
replay, and because every apply is a deterministic function of (state,
record) — including the rejections — the recovered store is
value-identical to one that never crashed.

Supervision: the applier carries a heartbeat the watchdog thread checks
(the same contract the batch executor's
:class:`~repro.exec.pool.SupervisedPool` watchdog enforces on workers —
here a stall is reported and counted rather than killed, since the
applier owns unreplayed in-memory ordering); each feed has a
:class:`~repro.exec.breaker.CircuitBreaker` so a feed whose records keep
failing at apply is refused at the door until its cooldown.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.core.events import validate_event_dict
from repro.exec.breaker import CircuitBreaker
from repro.log import get_logger
from repro.obs.metrics import MetricsRegistry, NullRegistry, get_registry
from repro.obs.timeseries import MetricsHistory, RequestLog
from repro.obs.trace import NULL_TRACER
from repro.pipeline.datasets import event_from_dict, event_to_dict
from repro.serve.admission import AdmissionQueue, QueueEntry, SubmitResult
from repro.serve.replication import (
    ClusterState,
    ROLE_FENCED,
    ROLE_PRIMARY,
    ROLE_REPLICA,
    ShipperCursor,
    WalShipper,
)
from repro.serve.snapshot import SnapshotManager, snapshot_stage_name
from repro.serve.state import (
    LiveFusedStore,
    validate_dps_record,
)
from repro.serve.wal import (
    KIND_ATTACK,
    KIND_DPS,
    KIND_SHED,
    WalRecord,
    WriteAheadLog,
)
from repro.store.checkpoint import CheckpointStore

log = get_logger("serve")

#: Feeds the service accepts attack events from (label space for
#: breakers and shed counters; "dps" is the domain-status feed).
ATTACK_FEEDS = ("telescope", "honeypot")
FEED_DPS = "dps"
ALL_SERVE_FEEDS = ATTACK_FEEDS + (FEED_DPS,)

#: Subdirectory of the data dir holding WAL segments.
WAL_DIR = "wal"

#: Role as the ``serve_role`` gauge value.
ROLE_CODES = {ROLE_PRIMARY: 0, ROLE_REPLICA: 1, ROLE_FENCED: 2}


@dataclass(frozen=True)
class ServeConfig:
    """Every knob of the service's robustness envelope."""

    data_dir: Union[str, Path]
    queue_size: int = 4096
    high_watermark: Optional[int] = None
    low_watermark: Optional[int] = None
    retry_after: float = 1.0
    snapshot_every_events: int = 2000
    snapshot_interval_s: float = 30.0
    snapshot_keep: int = 2
    wal_fsync_every: int = 64
    max_events_per_victim: int = 256
    baseline_days: int = 7
    alert_factor: float = 3.0
    apply_batch: int = 256
    heartbeat_timeout: float = 10.0
    drain_timeout: float = 30.0
    breaker_threshold: int = 8
    breaker_cooldown: float = 5.0
    #: Chaos/test hook: seconds the applier sleeps per record (a slow
    #: consumer without monkeypatching).
    apply_delay: float = 0.0
    #: Replication. ``replica_of`` makes this node a read-only follower
    #: of the primary at that base URL; ``sync_replicas`` (primary side)
    #: makes each accepted batch wait for that many followers to commit
    #: its highest sequence before acknowledging.
    replica_of: Optional[str] = None
    follower_id: Optional[str] = None
    poll_interval_s: float = 0.25
    sync_replicas: int = 0
    sync_timeout_s: float = 5.0
    #: Manual drive: no applier/watchdog/shipper threads are started —
    #: the caller owns all interleaving by calling :meth:`tick_apply`
    #: and ``shipper.poll_once()`` itself. The deterministic simulation
    #: harness is the intended driver.
    manual_drive: bool = False
    #: Never prune WAL segments. Keeps the full log from sequence 1
    #: available for the offline replay oracle (digest checking) at the
    #: cost of unbounded disk — simulation and deep-recovery tests only.
    wal_keep_all: bool = False
    #: Flight recorder: metrics-history sampling cadence and ring size
    #: (:class:`~repro.obs.timeseries.MetricsHistory`), recent-request
    #: ring size and the slow-request capture threshold
    #: (:class:`~repro.obs.timeseries.RequestLog`).
    history_interval_s: float = 5.0
    history_capacity: int = 240
    recent_requests: int = 256
    slow_request_threshold_s: float = 0.5


@dataclass
class RecoveryInfo:
    """What recovery did at the last start."""

    snapshot_seq: int = 0
    replayed: int = 0
    torn_lines: int = 0
    tail_trimmed_bytes: int = 0
    discarded_snapshots: int = 0
    replay_rejected: int = 0
    #: WAL lines whose sequence number appeared more than once (replay
    #: keeps the first copy; see ReplayReport.duplicate_seqs).
    replay_duplicates: int = 0
    duration_s: float = 0.0
    fresh_start: bool = True

    def to_dict(self) -> dict:
        return {
            "snapshot_seq": self.snapshot_seq,
            "replayed": self.replayed,
            "torn_lines": self.torn_lines,
            "tail_trimmed_bytes": self.tail_trimmed_bytes,
            "discarded_snapshots": self.discarded_snapshots,
            "replay_rejected": self.replay_rejected,
            "replay_duplicates": self.replay_duplicates,
            "duration_s": self.duration_s,
            "fresh_start": self.fresh_start,
        }


class LiveIngestService:
    """Long-running, crash-recoverable ingestion into a fused store."""

    def __init__(
        self,
        config: ServeConfig,
        metrics=None,
        clock: Callable[[], float] = time.monotonic,
        disk=None,
        snapshot_store=None,
        transport=None,
        sleep: Callable[[float], None] = time.sleep,
        tracer=None,
    ) -> None:
        self.config = config
        self.data_dir = Path(config.data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self._clock = clock
        self._sleep = sleep
        self._transport = transport
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Node identity in trace IDs and the /status document.
        self.node_name = config.follower_id or "node"
        #: Injectable hook the sync-replication wait calls instead of
        #: blocking on the condition variable: under manual drive there
        #: is no shipper thread to confirm commits, so the driver pumps
        #: follower polls (and the simulated clock) here.
        self.sync_pump: Optional[Callable[[], None]] = None
        # A server's /metrics endpoint is part of its API: when neither
        # the caller nor process telemetry provides a live registry,
        # make one rather than silently serving an empty exposition.
        registry = metrics if metrics is not None else get_registry()
        if isinstance(registry, NullRegistry):
            registry = MetricsRegistry()
        self.metrics = registry
        self.queue = AdmissionQueue(
            maxsize=config.queue_size,
            high_watermark=config.high_watermark,
            low_watermark=config.low_watermark,
            retry_after=config.retry_after,
            metrics=registry,
        )
        self.wal = WriteAheadLog(
            self.data_dir / WAL_DIR,
            fsync_every=config.wal_fsync_every,
            metrics=registry,
            disk=disk,
        )
        self.snapshots = SnapshotManager(
            snapshot_store
            if snapshot_store is not None
            else CheckpointStore(self.data_dir, metrics=registry),
            keep=config.snapshot_keep,
            metrics=registry,
        )
        self.store = LiveFusedStore(
            baseline_days=config.baseline_days,
            alert_factor=config.alert_factor,
            max_events_per_victim=config.max_events_per_victim,
            metrics=registry,
        )
        self.breakers: Dict[str, CircuitBreaker] = {
            feed: CircuitBreaker(
                f"serve-{feed}",
                failure_threshold=config.breaker_threshold,
                cooldown=config.breaker_cooldown,
                clock=clock,
                metrics=registry,
            )
            for feed in ALL_SERVE_FEEDS
        }
        self.recovery = RecoveryInfo()
        # Cluster identity: the durable file wins over a fresh default,
        # but an explicit --replica-of always demotes this node — except
        # a fenced node, which stays fenced until a newer epoch says
        # otherwise.
        loaded_cluster = ClusterState.load(self.data_dir)
        if config.replica_of and (
            loaded_cluster is None or loaded_cluster.role != ROLE_FENCED
        ):
            self.cluster = ClusterState(
                role=ROLE_REPLICA,
                epoch=loaded_cluster.epoch if loaded_cluster else 1,
                primary_url=config.replica_of,
            )
        elif loaded_cluster is not None:
            self.cluster = loaded_cluster
        else:
            self.cluster = ClusterState(role=ROLE_PRIMARY, epoch=1)
        self.shipper: Optional[WalShipper] = None
        self.promotions = 0
        self.fences = 0
        self.sync_refused = 0
        # Follower bookkeeping (primary side): follower id -> committed
        # seq + when it last reported, fed by status-poll piggybacks.
        self._followers: Dict[str, Dict[str, float]] = {}
        self._sync_cond = threading.Condition()
        # Serializes role transitions (promote/fence) against each other;
        # readers see the cluster state by atomic reference swap.
        self._cluster_lock = threading.Lock()
        # Plain mirrors of the hot counters, so /stats and tests work
        # without a live metrics registry.
        self.accepted_by_feed: Dict[str, int] = {}
        self.rejected_by_feed: Dict[str, int] = {}
        self.refused_by_feed: Dict[str, int] = {}
        self.dropped_by_feed: Dict[str, int] = {}
        self.apply_rejected = 0
        self.watchdog_stalls = 0
        # Disk-full degradation: set when a WAL append or snapshot write
        # raises OSError; reads keep serving, ingest answers 503 until a
        # probe append succeeds (see submit / _enter_degraded).
        self.degraded = False
        self.degraded_reason = ""
        self.wal_errors = 0
        self._last_wal_error = 0.0
        self._m_rejected = registry.counter(
            "serve_rejected_total", "ingest records rejected by validation",
            ("feed", "reason"),
        )
        self._m_apply_rejected = registry.counter(
            "serve_apply_rejected_total",
            "records that failed deterministically at apply",
            ("feed",),
        )
        self._m_snapshot_age = registry.gauge(
            "serve_snapshot_age_seconds",
            "seconds since the last completed snapshot",
        )
        self._m_recovery_s = registry.gauge(
            "serve_recovery_duration_seconds",
            "wall time the last crash recovery took",
        )
        self._m_recovery_replayed = registry.gauge(
            "serve_recovery_replayed", "WAL records replayed at last start"
        )
        self._m_heartbeat_age = registry.gauge(
            "serve_applier_heartbeat_age_seconds",
            "seconds since the applier last made progress",
        )
        self._m_stalls = registry.counter(
            "serve_watchdog_stalls_total",
            "heartbeat timeouts the watchdog observed",
        )
        self._m_role = registry.gauge(
            "serve_role", "cluster role (0 primary, 1 replica, 2 fenced)"
        )
        self._m_epoch = registry.gauge(
            "serve_epoch", "cluster epoch this node believes in"
        )
        self._m_promotions = registry.counter(
            "serve_promotions_total", "times this node took over as primary"
        )
        self._m_fences = registry.counter(
            "serve_fences_total",
            "times this node was fenced by a newer epoch",
        )
        self._m_sync_refused = registry.counter(
            "serve_sync_refused_total",
            "batches refused because followers did not confirm in time",
        )
        self._m_degraded = registry.gauge(
            "serve_degraded",
            "1 while ingest is refused because durable writes fail",
        )
        self._m_wal_errors = registry.counter(
            "serve_wal_errors_total",
            "durable-write failures (WAL append / snapshot save)", ("op",),
        )
        self._m_follower_lag = registry.gauge(
            "serve_replication_follower_lag",
            "records each follower trails this primary by", ("follower",),
        )
        self._m_followers = registry.gauge(
            "serve_replication_followers", "followers reporting to this node"
        )
        self._m_follower_age = registry.gauge(
            "serve_replication_follower_age_seconds",
            "seconds since each follower last reported", ("follower",),
        )
        self._m_wal_segments = registry.gauge(
            "serve_wal_segments", "WAL segment files on disk"
        )
        self._m_wal_disk_bytes = registry.gauge(
            "serve_wal_disk_bytes", "WAL bytes currently on disk"
        )
        # Flight recorder: rolling metrics windows + recent-request ring,
        # both on the injected clock so tests replay byte-identically.
        self.history = MetricsHistory(
            registry,
            clock,
            interval_s=config.history_interval_s,
            capacity=config.history_capacity,
        )
        self.requests = RequestLog(
            clock,
            capacity=config.recent_requests,
            slow_threshold_s=config.slow_request_threshold_s,
        )
        self._trace_lock = threading.Lock()
        self._trace_counter = 0
        self._publish_cluster_gauges()
        # Intake lock serializes seq assignment + WAL append + enqueue,
        # making WAL order identical to apply order. It also guards the
        # accepted/dropped mirrors, so quiesce() never sees an enqueued
        # entry before its accounting.
        self._intake_lock = threading.Lock()
        # Stats lock guards the pre-admission mirrors (rejected/refused)
        # that concurrent handler threads update outside the intake lock.
        self._stats_lock = threading.Lock()
        # Snapshot lock serializes snapshot + WAL rotation between the
        # applier and the drain path (a timed-out drain can leave both
        # threads wanting to snapshot).
        self._snapshot_lock = threading.Lock()
        # applied_events + applied_dps at the moment recovery finished:
        # quiesce() measures applier progress relative to this, since
        # snapshot-loaded and replayed records were never "accepted" in
        # this process's lifetime.
        self._recovery_base = 0
        self._seq = 0
        self._applied_seq = 0
        self._applied_since_snapshot = 0
        self._last_snapshot_at = clock()
        self._last_beat = clock()
        self._started_at = clock()
        self._stop = threading.Event()
        self._draining = threading.Event()
        self._applier: Optional[threading.Thread] = None
        self._watchdog: Optional[threading.Thread] = None

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> RecoveryInfo:
        """Recover durable state, then start the applier and watchdog."""
        info = self._recover()
        self.cluster.save(self.data_dir)
        if not self.config.manual_drive:
            self._applier = threading.Thread(
                target=self._apply_loop, name="repro-serve-applier",
                daemon=True,
            )
            self._applier.start()
            self._watchdog = threading.Thread(
                target=self._watch_loop, name="repro-serve-watchdog",
                daemon=True,
            )
            self._watchdog.start()
        if self.cluster.role == ROLE_REPLICA and self.cluster.primary_url:
            self.shipper = WalShipper(
                self,
                self.cluster.primary_url,
                poll_interval=self.config.poll_interval_s,
                follower_id=self.config.follower_id,
                metrics=self.metrics,
                transport=self._transport,
            )
            # The local WAL (just recovered) is the commit truth; the
            # cursor file contributes resume offsets and the epoch.
            self.shipper.resume_from(
                ShipperCursor.load(self.data_dir), self._seq
            )
            if not self.config.manual_drive:
                self.shipper.start()
        self._publish_cluster_gauges()
        log.info(
            "service started",
            data_dir=str(self.data_dir),
            role=self.cluster.role,
            epoch=self.cluster.epoch,
            snapshot_seq=info.snapshot_seq,
            replayed=info.replayed,
        )
        return info

    def _recover(self) -> RecoveryInfo:
        started = self._clock()
        info = RecoveryInfo()
        # Cut any crash-torn bytes off the tail segment *first*: replay
        # merely skips a torn final line, but this process is about to
        # append to that segment, and appending onto a partial line
        # would merge an acknowledged record into it — unrecoverable on
        # the next crash. Truncating keeps the segment append-safe and
        # keeps max_seq() from undercounting past the tear (so the torn
        # record's sequence number can be reused without a stale
        # duplicate surviving on disk).
        tail_segments = self.wal.segments()
        if tail_segments:
            info.tail_trimmed_bytes = self.wal.repair_tail(tail_segments[-1])
        # Newest snapshot that both verifies (checksums, at the store
        # layer) and decodes (state version, here). Either failure mode
        # discards the snapshot and falls back one generation — the WAL
        # still covers the widened gap.
        while True:
            loaded = self.snapshots.load_newest_valid()
            info.discarded_snapshots += len(loaded.discarded)
            if not loaded.found:
                break
            try:
                payload = loaded.payload
                self.store = LiveFusedStore.from_state_dict(
                    payload["state"], metrics=self.metrics
                )
                info.snapshot_seq = int(payload["seq"])
                info.fresh_start = False
                break
            except (ValueError, KeyError, TypeError) as exc:
                log.warning(
                    "snapshot payload unusable; falling back",
                    seq=loaded.seq,
                    error=str(exc),
                )
                self.snapshots.store.discard(snapshot_stage_name(loaded.seq))
                info.discarded_snapshots += 1
        records, report = self.wal.replay(after_seq=info.snapshot_seq)
        info.torn_lines = report.torn_lines
        info.replay_duplicates = report.duplicate_seqs
        for record in records:
            try:
                self._apply_record(record.kind, record.record, feed="replay")
            except ValueError:
                # Deterministic apply rejection: the live process skipped
                # this record too, so skipping it again is equivalence,
                # not loss.
                info.replay_rejected += 1
            info.replayed += 1
        highest = max(info.snapshot_seq, self.wal.max_seq())
        self._seq = highest
        self._applied_seq = highest
        # Continue the tail segment if one exists; else start fresh.
        segments = self.wal.segments()
        if segments:
            from repro.serve.wal import segment_first_seq

            self.wal.open_segment(segment_first_seq(segments[-1].name))
        else:
            self.wal.open_segment(self._seq + 1)
        self._recovery_base = (
            self.store.applied_events + self.store.applied_dps
        )
        info.duration_s = self._clock() - started
        self.recovery = info
        self._m_recovery_s.set(info.duration_s)
        self._m_recovery_replayed.set(info.replayed)
        self._last_snapshot_at = self._clock()
        if info.replayed or not info.fresh_start:
            log.info(
                "state recovered",
                snapshot_seq=info.snapshot_seq,
                replayed=info.replayed,
                torn=info.torn_lines,
                discarded_snapshots=info.discarded_snapshots,
                duration_s=round(info.duration_s, 3),
            )
        return info

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown: refuse intake, apply the backlog, snapshot.

        Returns True when the queue fully drained inside *timeout* —
        either way the WAL is flushed and the state snapshotted, so
        nothing acknowledged is lost even on a timed-out drain.
        """
        timeout = timeout if timeout is not None else self.config.drain_timeout
        self._draining.set()
        if self.shipper is not None:
            self.shipper.stop()
        deadline = self._clock() + timeout
        drained = True
        while self.queue.depth > 0:
            if self._clock() >= deadline:
                drained = False
                log.warning(
                    "drain timed out with entries queued",
                    depth=self.queue.depth,
                )
                break
            if self.config.manual_drive:
                # No applier thread: apply the backlog inline.
                self.tick_apply()
            else:
                self._sleep(0.02)
        self._stop.set()
        self.queue.wake()
        if self._applier is not None:
            self._applier.join(timeout=max(timeout, 1.0))
        if self._watchdog is not None:
            self._watchdog.join(timeout=1.0)
        if self._applier is not None and self._applier.is_alive():
            # The applier outlived its join (huge backlog, injected
            # apply delay): it may be mid-snapshot itself, so skip the
            # final snapshot rather than race it — the flushed WAL alone
            # already preserves everything acknowledged.
            log.warning(
                "applier still running after drain; skipping final snapshot"
            )
        else:
            self._snapshot_now()
        with self._snapshot_lock:
            self.wal.flush()
            self.wal.close()
        log.info("service drained", drained=drained, seq=self._applied_seq)
        return drained

    def quiesce(self, timeout: float = 30.0) -> bool:
        """Wait until every admitted record was applied or dropped.

        Queue depth alone is not enough: the applier takes entries in
        batches, so the queue can read empty while a batch is still
        being applied. This settles on the accounting identity instead —
        applied + apply-rejected + dropped catches up with accepted,
        where applied counts only records applied *in this process*
        (``_recovery_base`` subtracts what the snapshot and WAL replay
        contributed, which was never accepted in this lifetime). The
        mirrors are read under the intake lock, so an entry is never
        visible in the queue before its accounting. Drills and tests
        use it; the serving path never needs to.
        """
        deadline = self._clock() + timeout
        while True:
            with self._intake_lock:
                admitted = sum(self.accepted_by_feed.values())
                dropped = sum(self.dropped_by_feed.values())
            settled = (
                self.store.applied_events
                + self.store.applied_dps
                - self._recovery_base
                + self.apply_rejected
                + dropped
            )
            if self.queue.depth == 0 and settled >= admitted:
                return True
            if self._clock() >= deadline:
                return False
            if self.config.manual_drive:
                self.tick_apply()
            else:
                self._sleep(0.01)

    def stop(self) -> None:
        """Hard stop (tests): no drain, no final snapshot."""
        self._draining.set()
        if self.shipper is not None:
            self.shipper.stop()
        self._stop.set()
        self.queue.wake()
        if self._applier is not None:
            self._applier.join(timeout=5.0)
        if self._watchdog is not None:
            self._watchdog.join(timeout=1.0)
        self.wal.close()

    # -- intake ---------------------------------------------------------------

    def mint_trace_id(self) -> str:
        """A fresh node-scoped trace ID (deterministic counter + name)."""
        with self._trace_lock:
            self._trace_counter += 1
            return f"{self.node_name}-{self._trace_counter:06d}"

    def submit(
        self, feed: str, kind: str, records: List[dict],
        trace: Optional[str] = None,
    ) -> SubmitResult:
        """Validate, admit, log and enqueue one ingest batch.

        *trace* tags each accepted record's WAL line with the request
        trace ID, which is how a client-visible request stays nameable
        on every follower the record ships to.
        """
        if feed not in ALL_SERVE_FEEDS:
            result = SubmitResult(rejected=len(records))
            result.reasons["unknown-feed"] = len(records)
            return result
        result = SubmitResult()
        if self.cluster.role != ROLE_PRIMARY:
            # Followers and fenced ex-primaries take no writes: accepting
            # one would fork the sequence space. 409 + where to go.
            result.read_only = True
            result.primary_url = self.cluster.primary_url
            result.reasons["read-only"] = len(records)
            return result
        if self._draining.is_set():
            result.retry_after = self.config.retry_after
            return result
        if self.degraded and not self._probe_due():
            # Durable writes are failing (disk full): refuse fast.
            # Reads stay up; one submit per retry_after window gets
            # through below as the recovery probe.
            with self._stats_lock:
                self.refused_by_feed[feed] = (
                    self.refused_by_feed.get(feed, 0) + len(records)
                )
            result.reasons["degraded"] = len(records)
            result.retry_after = self.config.retry_after
            return result
        breaker = self.breakers[feed]
        if not breaker.allow():
            with self._stats_lock:
                self.refused_by_feed[feed] = (
                    self.refused_by_feed.get(feed, 0) + len(records)
                )
            result.retry_after = self.config.breaker_cooldown
            return result
        valid: List[dict] = []
        validator = (
            validate_event_dict if kind == KIND_ATTACK else validate_dps_record
        )
        for record in records:
            reason = validator(record)
            if reason is None:
                valid.append(record)
            else:
                result.rejected += 1
                result.reasons[reason] = result.reasons.get(reason, 0) + 1
                self._m_rejected.inc(feed=feed, reason=reason)
        if result.rejected:
            with self._stats_lock:
                self.rejected_by_feed[feed] = (
                    self.rejected_by_feed.get(feed, 0) + result.rejected
                )
        if not valid:
            return result
        retry_after = self.queue.refuse(feed, len(valid))
        if retry_after is not None:
            with self._stats_lock:
                self.refused_by_feed[feed] = (
                    self.refused_by_feed.get(feed, 0) + len(valid)
                )
            result.shed = len(valid)
            result.retry_after = retry_after
            return result
        degraded_before = self.degraded
        with self._intake_lock:
            entries = []
            append_error: Optional[OSError] = None
            for record in valid:
                # Sequence numbers advance only on a successful append:
                # an ENOSPC'd record was never acked, so its candidate
                # sequence is safely reused (WAL.append repaired any
                # partial bytes away).
                try:
                    self.wal.append(self._seq + 1, kind, record, trace=trace)
                except OSError as exc:
                    append_error = exc
                    break
                self._seq += 1
                entries.append(
                    QueueEntry(
                        seq=self._seq, kind=kind, feed=feed, record=record
                    )
                )
            if append_error is not None:
                self._enter_degraded("append", append_error)
            elif degraded_before:
                # The probe append went through: disk is back.
                self._clear_degraded()
            dropped = self.queue.push(entries) if entries else []
            if dropped:
                # Make the drop decision durable *before* acknowledging,
                # so replay and the live process agree on what was shed.
                try:
                    self.wal.append(
                        self._seq + 1,
                        KIND_SHED,
                        {
                            "seqs": [entry.seq for entry in dropped],
                            "feed": feed,
                        },
                    )
                    self._seq += 1
                except OSError as exc:
                    # Tombstone did not land: put the dropped entries
                    # back so live state matches a replay that never saw
                    # the tombstone. The queue grows past its bound for
                    # a moment; degraded mode throttles further intake.
                    self.queue.unshift(dropped)
                    dropped = []
                    self._enter_degraded("append", exc)
                for entry in dropped:
                    self.dropped_by_feed[entry.feed] = (
                        self.dropped_by_feed.get(entry.feed, 0) + 1
                    )
            if entries:
                self.accepted_by_feed[feed] = (
                    self.accepted_by_feed.get(feed, 0) + len(entries)
                )
        result.accepted = len(entries)
        not_logged = len(valid) - len(entries)
        if not_logged:
            with self._stats_lock:
                self.refused_by_feed[feed] = (
                    self.refused_by_feed.get(feed, 0) + not_logged
                )
            result.reasons["degraded"] = not_logged
            result.retry_after = self.config.retry_after
        if not entries:
            return result
        result.last_seq = entries[-1].seq
        if self.config.sync_replicas > 0:
            with self.tracer.span(
                "serve.sync.wait",
                trace_id=trace,
                node=self.node_name,
                seq=result.last_seq,
                sync_replicas=self.config.sync_replicas,
            ) as sync_span:
                confirmed = self._await_followers(
                    result.last_seq, self.config.sync_timeout_s
                )
                sync_span.set_attr(confirmed=confirmed)
            if not confirmed:
                # The batch *is* durable locally (WAL'd above) — what
                # failed is the replication guarantee. Answer 503 so the
                # client retries against a cluster that can honor it. A
                # retry may duplicate records in the stream; both copies
                # replicate and replay identically everywhere, so the
                # digest contract holds — at-least-once, not exactly-once,
                # is sync mode's documented trade.
                self.sync_refused += len(entries)
                self._m_sync_refused.inc(len(entries))
                result.reasons["sync-timeout"] = len(entries)
                result.retry_after = self.config.retry_after
        return result

    # -- replication ----------------------------------------------------------

    @property
    def applied_seq(self) -> int:
        """Highest sequence number applied to (or committed into) the store."""
        return self._applied_seq

    def _publish_cluster_gauges(self) -> None:
        self._m_role.set(ROLE_CODES.get(self.cluster.role, -1))
        self._m_epoch.set(self.cluster.epoch)

    def note_follower(self, follower_id: str, committed_seq: int) -> None:
        """Record a follower's committed cursor (status-poll piggyback)."""
        with self._sync_cond:
            self._followers[follower_id] = {
                "committed_seq": committed_seq,
                "at": self._clock(),
            }
            count = len(self._followers)
            self._sync_cond.notify_all()
        self._m_followers.set(count)
        self._m_follower_lag.set(
            max(0, self._seq - committed_seq), follower=follower_id
        )
        self._m_follower_age.set(0.0, follower=follower_id)

    def _await_followers(self, seq: int, timeout: float) -> bool:
        """Block until ``sync_replicas`` followers committed *seq*.

        With a ``sync_pump`` installed (manual drive) the wait never
        blocks on the condition variable — there is no other thread to
        signal it. Instead the pump is called between checks; it is
        expected to advance follower replication and the injected clock,
        so the deadline can expire deterministically.
        """
        deadline = self._clock() + timeout
        pump = self.sync_pump
        while True:
            with self._sync_cond:
                confirmed = sum(
                    1
                    for info in self._followers.values()
                    if info["committed_seq"] >= seq
                )
                if confirmed >= self.config.sync_replicas:
                    return True
                remaining = deadline - self._clock()
                if remaining <= 0:
                    return False
                if pump is None:
                    self._sync_cond.wait(min(remaining, 0.25))
            if pump is not None:
                pump()

    def replication_status(
        self,
        follower_id: Optional[str] = None,
        committed: Optional[int] = None,
    ) -> dict:
        """Primary-side shipping state (``GET /replication/status``).

        The **stable frontier** is the load-bearing field: ``stable_seq``
        is computed under the intake lock *before* segment sizes are
        sampled, so the byte ranges a follower fetches from this reply
        provably contain every ``shed`` tombstone that can name a
        sequence at or under the frontier — a record below it is safe to
        apply the moment it is parsed.
        """
        if follower_id and committed is not None:
            self.note_follower(follower_id, committed)
        with self._intake_lock:
            # Fsync before reporting: every byte a follower can learn
            # about from this reply is power-loss durable on this node.
            # Without this, a follower could fetch flushed-but-unsynced
            # bytes, the primary could lose them to a power cut, reuse
            # the sequence numbers for different records — and the
            # follower would commit the phantom history (found by the
            # simulation harness: digest forks after primary power
            # crashes). The fsync is amortized across the poll interval.
            self.wal.flush()
            seq = self._seq
            queued_min = self.queue.min_seq()
            stable = queued_min - 1 if queued_min is not None else seq
        segments = self.wal.segment_sizes()
        self._update_wal_gauges(segments)
        with self._sync_cond:
            followers = {
                fid: {
                    "committed_seq": int(info["committed_seq"]),
                    "seq_lag": max(0, seq - int(info["committed_seq"])),
                    "age_s": round(self._clock() - info["at"], 3),
                }
                for fid, info in sorted(self._followers.items())
            }
        for fid, info in followers.items():
            self._m_follower_lag.set(info["seq_lag"], follower=fid)
            self._m_follower_age.set(info["age_s"], follower=fid)
        status = {
            "role": self.cluster.role,
            "epoch": self.cluster.epoch,
            "primary_url": self.cluster.primary_url,
            "seq": seq,
            "applied_seq": self._applied_seq,
            "stable_seq": stable,
            "oldest_seq": self.wal.oldest_seq(),
            "segments": segments,
            "snapshot_seqs": self.snapshots.seqs(),
            "followers": followers,
            "sync_replicas": self.config.sync_replicas,
        }
        if self.shipper is not None:
            status["replication"] = self.shipper.status()
        return status

    def replicate_commit(self, batch: List[WalRecord]) -> int:
        """Commit replicated records: local WAL append, then apply.

        The follower-side write path — the shipper is its only caller
        and the only writer on a replica (external ingest is refused by
        role), so the records carry the primary's sequence numbers
        untouched and the local WAL stays byte-order == seq-order. Apply
        rejections are deterministic and counted exactly like the
        primary's, keeping the state digest contract intact.
        """
        if not batch:
            return 0
        with self._intake_lock:
            try:
                for record in batch:
                    self.wal.append(
                        record.seq, record.kind, record.record,
                        trace=record.trace,
                    )
            except OSError as exc:
                # Propagate to the shipper (it will not advance its
                # committed cursor and re-fetches the batch later; the
                # replayed duplicates are deduped by sequence number)
                # but keep the node marked degraded meanwhile.
                self._enter_degraded("append", exc)
                raise
            if self.degraded:
                self._clear_degraded()
            if batch[-1].seq > self._seq:
                self._seq = batch[-1].seq
        for record in batch:
            # A traced record gets a follower-side apply span carrying
            # the originating request's trace ID — the cross-node half
            # of the flight recorder's request story.
            if record.trace is not None:
                with self.tracer.span(
                    "serve.replicate.apply",
                    trace_id=record.trace,
                    seq=record.seq,
                    kind=record.kind,
                    node=self.node_name,
                    role=self.cluster.role,
                    epoch=self.cluster.epoch,
                ):
                    try:
                        self._apply_record(
                            record.kind, record.record, feed="replication"
                        )
                    except ValueError:
                        self.apply_rejected += 1
                        self._m_apply_rejected.inc(feed="replication")
            else:
                try:
                    self._apply_record(
                        record.kind, record.record, feed="replication"
                    )
                except ValueError:
                    self.apply_rejected += 1
                    self._m_apply_rejected.inc(feed="replication")
            self._applied_seq = max(self._applied_seq, record.seq)
            self._applied_since_snapshot += 1
            self._beat()
        self._maybe_snapshot()
        return len(batch)

    def bootstrap_from_snapshot(self, seq: int, state: dict) -> None:
        """Replace local state wholesale with a primary snapshot.

        The catch-up reset for a follower whose cursor fell below the
        primary's pruned WAL. Save-then-wipe ordering is crash-safe:
        dying between the local snapshot save and the WAL wipe leaves
        only WAL records at or below the new snapshot sequence, which
        replay skips; dying before the save leaves the previous local
        state intact and the next poll bootstraps again.
        """
        store = LiveFusedStore.from_state_dict(state, metrics=self.metrics)
        with self._snapshot_lock, self._intake_lock:
            self.store = store
            self._seq = seq
            self._applied_seq = seq
            self.snapshots.save(seq, {"seq": seq, "state": store.state_dict()})
            self.wal.close()
            for path in self.wal.segments():
                try:
                    path.unlink()
                except FileNotFoundError:
                    pass
            self.wal.open_segment(seq + 1)
            self._applied_since_snapshot = 0
            self._last_snapshot_at = self._clock()
            self._recovery_base = store.applied_events + store.applied_dps
        log.info("bootstrapped from snapshot", seq=seq)

    def promote(self) -> dict:
        """Take over as primary: stop streaming, bump the epoch, open up.

        Fetched-but-uncommitted lines the shipper still held (beyond the
        stable frontier) are discarded with it: under synchronous
        replication the old primary never acknowledged them without this
        follower committing first, so dropping them loses nothing acked.
        The epoch bump is what fences the old primary — its writes (and
        stale fence attempts) carry a smaller epoch from here on.
        """
        with self._cluster_lock:
            if self.cluster.role == ROLE_PRIMARY:
                return {
                    "promoted": False,
                    "role": self.cluster.role,
                    "epoch": self.cluster.epoch,
                    "seq": self._seq,
                    "applied_seq": self._applied_seq,
                }
            epoch_seen = self.cluster.epoch
            if self.shipper is not None:
                self.shipper.stop()
                epoch_seen = max(epoch_seen, self.shipper.known_epoch)
            self.cluster = ClusterState(
                role=ROLE_PRIMARY, epoch=epoch_seen + 1, primary_url=None
            )
            self.cluster.save(self.data_dir)
            self.promotions += 1
            self._m_promotions.inc()
            self._publish_cluster_gauges()
        # Seal the reign boundary: snapshot + fresh WAL segment, so the
        # new epoch's writes start on a segment of their own.
        self._snapshot_now()
        log.info(
            "promoted to primary", epoch=self.cluster.epoch, seq=self._seq
        )
        return {
            "promoted": True,
            "role": self.cluster.role,
            "epoch": self.cluster.epoch,
            "seq": self._seq,
            "applied_seq": self._applied_seq,
        }

    def fence(self, epoch: int, primary_url: Optional[str] = None) -> bool:
        """Step down before a newer epoch; False refuses a stale fence.

        A fenced ex-primary keeps serving reads (possibly of a diverged
        suffix the new primary never saw — that divergence is exactly
        why it must not take writes) and points clients at its
        successor. A replica getting fenced merely records the newer
        epoch and primary hint.
        """
        with self._cluster_lock:
            if epoch <= self.cluster.epoch:
                log.warning(
                    "stale fence refused",
                    requested_epoch=epoch,
                    current_epoch=self.cluster.epoch,
                )
                return False
            new_role = (
                ROLE_FENCED
                if self.cluster.role in (ROLE_PRIMARY, ROLE_FENCED)
                else self.cluster.role
            )
            self.cluster = ClusterState(
                role=new_role, epoch=epoch, primary_url=primary_url
            )
            self.cluster.save(self.data_dir)
            self.fences += 1
            self._m_fences.inc()
            self._publish_cluster_gauges()
            with self._intake_lock:
                self.wal.flush()
        log.warning(
            "fenced by newer epoch", epoch=epoch, role=new_role,
            primary=primary_url,
        )
        return True

    # -- applier --------------------------------------------------------------

    def _apply_record(self, kind: str, record: dict, feed: str) -> None:
        if kind == KIND_ATTACK:
            self.store.apply_attack(record)
        elif kind == KIND_DPS:
            self.store.apply_dps(record)
        else:  # pragma: no cover - intake validates kinds
            raise ValueError(f"unknown record kind {kind!r}")

    def _apply_loop(self) -> None:
        while True:
            batch = self.queue.take(
                max_items=self.config.apply_batch, timeout=0.1
            )
            if not batch:
                self._beat()
                if self._stop.is_set():
                    return
                continue
            self._apply_batch(batch)

    def _apply_batch(self, batch: List[QueueEntry]) -> None:
        delay = self.config.apply_delay
        for entry in batch:
            if delay:
                self._sleep(delay)
            try:
                self._apply_record(entry.kind, entry.record, entry.feed)
            except ValueError as exc:
                # Deterministic rejection (e.g. out-of-order beyond
                # tolerance): counted, breaker-charged, and — because
                # the same record replays to the same rejection —
                # recovery stays value-identical.
                self.apply_rejected += 1
                self._m_apply_rejected.inc(feed=entry.feed)
                self.breakers[entry.feed].record_failure(str(exc))
            else:
                self.breakers[entry.feed].record_success()
            self._applied_seq = max(self._applied_seq, entry.seq)
            self._applied_since_snapshot += 1
            self._beat()
        self._maybe_snapshot()

    def tick_apply(self) -> int:
        """Apply one queued batch inline; the manual-drive step.

        Returns how many entries were applied. Never blocks: an empty
        queue only beats the heartbeat. The simulation scheduler calls
        this instead of the applier thread existing.
        """
        batch = self.queue.take(
            max_items=self.config.apply_batch, timeout=None
        )
        if not batch:
            self._beat()
            return 0
        self._apply_batch(batch)
        return len(batch)

    def _beat(self) -> None:
        self._last_beat = self._clock()

    # -- degraded mode ---------------------------------------------------------

    def _probe_due(self) -> bool:
        """One submit per retry_after window probes a degraded disk."""
        return (
            self._clock() - self._last_wal_error >= self.config.retry_after
        )

    def _enter_degraded(self, op: str, exc: OSError) -> None:
        self.wal_errors += 1
        self._m_wal_errors.inc(op=op)
        self._last_wal_error = self._clock()
        if not self.degraded:
            self.degraded = True
            self.degraded_reason = f"{op}: {exc}"
            self._m_degraded.set(1)
            log.error(
                "durable writes failing; ingest degraded to read-only",
                op=op,
                error=str(exc),
            )

    def _clear_degraded(self) -> None:
        if self.degraded:
            self.degraded = False
            self.degraded_reason = ""
            self._m_degraded.set(0)
            log.info("durable writes recovered; ingest re-enabled")

    def _maybe_snapshot(self) -> None:
        due_events = (
            self._applied_since_snapshot >= self.config.snapshot_every_events
        )
        due_time = (
            self._applied_since_snapshot > 0
            and self._clock() - self._last_snapshot_at
            >= self.config.snapshot_interval_s
        )
        if due_events or due_time:
            self._snapshot_now()

    def _snapshot_now(self) -> None:
        # The snapshot lock serializes snapshot + rotation against the
        # drain path's final snapshot and WAL close.
        with self._snapshot_lock:
            seq = self._applied_seq
            payload = {"seq": seq, "state": self.store.state_dict()}
            try:
                self.snapshots.save(seq, payload)
                # Rotate under the intake lock: concurrent appends must
                # not race the segment switch, and the fresh segment
                # starts above every sequence number handed out so far.
                with self._intake_lock:
                    self.wal.rotate(self._seq + 1)
            except OSError as exc:
                # A full disk must not kill the applier: note it, stay
                # on the current WAL segment, and let the next due
                # snapshot (or ingest probe) retry. Nothing acked is at
                # risk — the WAL that backs this state is still intact.
                self._enter_degraded("snapshot", exc)
                return
            # Prune only up to the *oldest retained* snapshot, not this
            # one: if this snapshot is later found corrupt, recovery
            # falls back to an older one and needs the WAL span between
            # them intact.
            retained = self.snapshots.seqs()
            if retained and not self.config.wal_keep_all:
                self.wal.prune(retained[0])
            self._applied_since_snapshot = 0
            self._last_snapshot_at = self._clock()
            self._m_snapshot_age.set(0.0)
            log.debug("rolling snapshot", seq=seq)

    # -- watchdog -------------------------------------------------------------

    def _watch_loop(self) -> None:
        interval = max(0.05, min(1.0, self.config.heartbeat_timeout / 4))
        while not self._stop.wait(interval):
            age = self._clock() - self._last_beat
            self._m_heartbeat_age.set(age)
            self._m_snapshot_age.set(self._clock() - self._last_snapshot_at)
            try:
                self._update_wal_gauges()
            except OSError:
                pass
            self.history.maybe_sample()
            if age > self.config.heartbeat_timeout and self.queue.depth > 0:
                self.watchdog_stalls += 1
                self._m_stalls.inc()
                log.error(
                    "applier heartbeat stale",
                    age_s=round(age, 2),
                    depth=self.queue.depth,
                )

    # -- introspection --------------------------------------------------------

    def _update_wal_gauges(self, segments=None) -> tuple:
        """Refresh segment-count / bytes-on-disk gauges; returns both."""
        if segments is None:
            segments = self.wal.segment_sizes()
        total = sum(size for _first, size in segments)
        self._m_wal_segments.set(len(segments))
        self._m_wal_disk_bytes.set(total)
        return len(segments), total

    def status_doc(self, recent: int = 20) -> dict:
        """Topology + health as one JSON document (``GET /status``).

        Every value is either integral or rounded, so the document is
        byte-deterministic under an injected clock — the property the
        ops console and the simulation harness both lean on.
        """
        segments = self.wal.segment_sizes()
        seg_count, wal_bytes = self._update_wal_gauges(segments)
        seq = self._seq
        with self._sync_cond:
            followers = {
                fid: {
                    "committed_seq": int(info["committed_seq"]),
                    "seq_lag": max(0, seq - int(info["committed_seq"])),
                    "age_s": round(self._clock() - info["at"], 3),
                }
                for fid, info in sorted(self._followers.items())
            }
        doc = {
            "node": self.node_name,
            "role": self.cluster.role,
            "epoch": self.cluster.epoch,
            "primary_url": self.cluster.primary_url,
            "seq": seq,
            "applied_seq": self._applied_seq,
            "queue_depth": self.queue.depth,
            "shedding": self.queue.shedding,
            "draining": self._draining.is_set(),
            "degraded": self.degraded,
            "uptime_s": round(self._clock() - self._started_at, 3),
            "wal": {
                "segments": seg_count,
                "bytes": wal_bytes,
                "oldest_seq": self.wal.oldest_seq(),
            },
            "snapshots": {
                "seqs": self.snapshots.seqs(),
                "newest_age_s": round(
                    self._clock() - self._last_snapshot_at, 3
                ),
            },
            "followers": followers,
            "sync_replicas": self.config.sync_replicas,
            "requests": {
                "total": self.requests.total,
                "slow_threshold_s": self.requests.slow_threshold_s,
                "recent": self.requests.recent(recent),
                "slow": self.requests.slow(),
            },
        }
        if self.shipper is not None:
            doc["replication"] = self.shipper.status()
        return doc

    def stats(self) -> dict:
        """Operational snapshot for ``GET /stats`` (plain values)."""
        with self._intake_lock:
            accepted = dict(sorted(self.accepted_by_feed.items()))
            dropped = dict(sorted(self.dropped_by_feed.items()))
        with self._stats_lock:
            rejected = dict(sorted(self.rejected_by_feed.items()))
            refused = dict(sorted(self.refused_by_feed.items()))
        replication = (
            self.shipper.status() if self.shipper is not None else None
        )
        return {
            "uptime_s": self._clock() - self._started_at,
            "seq": self._seq,
            "applied_seq": self._applied_seq,
            "role": self.cluster.role,
            "epoch": self.cluster.epoch,
            "primary_url": self.cluster.primary_url,
            "replication": replication,
            "promotions": self.promotions,
            "fences": self.fences,
            "sync_refused": self.sync_refused,
            "queue_depth": self.queue.depth,
            "shedding": self.queue.shedding,
            "draining": self._draining.is_set(),
            "degraded": self.degraded,
            "degraded_reason": self.degraded_reason,
            "wal_errors": self.wal_errors,
            "accepted": accepted,
            "rejected": rejected,
            "refused": refused,
            "dropped": dropped,
            "apply_rejected": self.apply_rejected,
            "watchdog_stalls": self.watchdog_stalls,
            "snapshot_seqs": self.snapshots.seqs(),
            "snapshot_age_s": self._clock() - self._last_snapshot_at,
            "breakers": {
                feed: breaker.state
                for feed, breaker in sorted(self.breakers.items())
            },
            "recovery": self.recovery.to_dict(),
            "summary": self.store.summary(),
        }


__all__ = [
    "ALL_SERVE_FEEDS",
    "ATTACK_FEEDS",
    "FEED_DPS",
    "LiveIngestService",
    "RecoveryInfo",
    "ServeConfig",
    "WAL_DIR",
]
