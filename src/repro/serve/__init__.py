"""Live ingestion service: overload-safe streaming fusion with recovery.

The paper's measurement apparatus is a continuously running observatory —
telescope, honeypot, OpenINTEL and DPS feeds arrive as *streams*. This
package is the repo's fifth execution mode: a long-running, supervised,
crash-recoverable service (``python -m repro serve``) that ingests
observation events incrementally into a rolling fused store and answers
queries over HTTP while the stream is still flowing.

The robustness envelope, not the endpoints, is the point:

* **admission control and load shedding** (:mod:`repro.serve.admission`)
  — a bounded intake queue with high/low watermarks; a burst degrades
  throughput (503 + Retry-After, drop-oldest with per-feed counters)
  instead of growing memory until the process dies;
* **rolling durability** (:mod:`repro.serve.wal`,
  :mod:`repro.serve.snapshot`) — every accepted event is written to an
  append-only JSONL write-ahead log *before* it is acknowledged, and the
  fused state is periodically checkpointed through
  :class:`~repro.store.checkpoint.CheckpointStore`; ``kill -9`` at any
  instant recovers by snapshot-load + WAL replay, value-identical to an
  uninterrupted run;
* **supervision** (:mod:`repro.serve.service`) — the applier runs under
  a heartbeat watchdog with per-feed circuit breakers, and SIGTERM
  triggers a graceful drain (flush WAL, final snapshot, answer in-flight
  queries, exit 0);
* **replication** (:mod:`repro.serve.replication`,
  :mod:`repro.serve.client`) — a primary ships its WAL over HTTP to N
  read-only followers (``--replica-of URL``) that replay it through the
  same recovery path; failover is explicit promotion with epoch fencing,
  convergence is digest-verified, and a follower behind the pruned WAL
  bootstraps from a snapshot. One ``kill -9`` no longer takes the query
  API down — a follower keeps answering, and one of them takes over.
"""

from repro.serve.admission import AdmissionQueue, SubmitResult
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.replication import (
    ClusterState,
    ShipperCursor,
    WalShipper,
)
from repro.serve.service import LiveIngestService, RecoveryInfo, ServeConfig
from repro.serve.snapshot import SnapshotManager
from repro.serve.state import LiveFusedStore
from repro.serve.wal import WriteAheadLog

__all__ = [
    "AdmissionQueue",
    "ClusterState",
    "LiveFusedStore",
    "LiveIngestService",
    "RecoveryInfo",
    "ServeClient",
    "ServeClientError",
    "ServeConfig",
    "ShipperCursor",
    "SnapshotManager",
    "SubmitResult",
    "WalShipper",
    "WriteAheadLog",
]
