"""WAL-shipping replication: primary/follower cluster over the serve WAL.

One node is the **primary**: it owns sequence assignment, accepts writes,
and appends every accepted record to its write-ahead log. **Followers**
(`python -m repro serve --replica-of URL`) pull the primary's WAL over
plain HTTP — raw segment bytes, in order — apply the records through
their own :class:`~repro.serve.state.LiveFusedStore`, persist their own
WAL + rolling snapshots, and serve read-only queries. Because the WAL's
byte order *is* its sequence order and every apply is deterministic, a
caught-up follower's :meth:`state_digest` equals the primary's at the
same applied sequence — replication correctness is checkable with one
string compare.

The stable frontier
-------------------

The one hazard in shipping a log that also records *load shedding* is
that a ``shed`` tombstone is written **after** the records it evicts: a
drop-oldest eviction can retroactively shed a sequence the follower has
already fetched. A follower must therefore never apply a record that the
primary could still shed. The protocol closes this with the **stable
sequence**: the primary reports (computed under its intake lock, *before*
it samples segment sizes) the highest sequence below everything still
queued — a sequence at or under it has left the admission queue and can
never be named by a future tombstone. The follower only applies records
at or below the stable frontier, and computes its shed set from *every*
fetched byte (tombstones beyond the frontier included). Ordering
guarantees the frontier is safe: any tombstone naming a stable sequence
was appended before that sequence left the queue, which is before the
size sample the fetch covered.

Epoch fencing
-------------

Every node carries a monotonically increasing **epoch** persisted in an
atomically-written ``cluster.json``. Promotion
(``python -m repro serve-promote`` or ``POST /promote``) bumps the
epoch; a fencing request (``POST /replication/fence``) with a *newer*
epoch forces an old primary into the ``fenced`` role — tail sealed,
writes refused with the new primary's address — while a fence with a
stale epoch is itself refused. Split-brain thus loses: at most one node
per epoch accepts writes.

Catch-up
--------

A follower whose cursor has fallen below the primary's oldest retained
WAL segment (pruning runs up to the oldest retained snapshot) cannot
catch up from the log alone: it **bootstraps** — fetches the primary's
newest snapshot, resets its store and local WAL at that sequence, and
resumes streaming from there. Catch-up cost is therefore bounded by one
snapshot plus one snapshot-interval of WAL, regardless of how long the
follower was away.
"""

from __future__ import annotations

import json
import threading
import urllib.parse
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.log import get_logger
from repro.obs.metrics import get_registry
from repro.pipeline.runner import RetryPolicy
from repro.serve.transport import HttpTransport, TransportError
from repro.serve.wal import KIND_SHED, WAL_KINDS, WalRecord
from repro.store.atomic import atomic_write_text

log = get_logger("serve.replication")

#: Node roles. ``fenced`` is a former primary that saw a newer epoch:
#: it keeps serving reads but refuses writes, pointing at its successor.
ROLE_PRIMARY = "primary"
ROLE_REPLICA = "replica"
ROLE_FENCED = "fenced"
ALL_ROLES = (ROLE_PRIMARY, ROLE_REPLICA, ROLE_FENCED)

#: Durable cluster identity (role + epoch + primary hint), written
#: atomically so a crash can never leave a torn role file.
CLUSTER_FILE = "cluster.json"

#: Durable replication cursor (follower side), written atomically.
CURSOR_FILE = "replication.json"

#: Follower replication states, as the ``serve_replication_state`` gauge.
STATE_INIT = 0
STATE_STREAMING = 1
STATE_BOOTSTRAPPING = 2
STATE_ERROR = 3

REPLICATION_STATE_NAMES = {
    STATE_INIT: "init",
    STATE_STREAMING: "streaming",
    STATE_BOOTSTRAPPING: "bootstrapping",
    STATE_ERROR: "error",
}

#: Bytes per segment-chunk fetch.
FETCH_CHUNK_BYTES = 1 << 20


def write_json_atomic(path: Union[str, Path], payload: dict) -> Path:
    """Write *payload* as JSON via temp file + ``os.replace``.

    Peers and poll loops read these files while they are being rewritten
    (``endpoint.json``, ``cluster.json``, the replication cursor); the
    rename makes a torn read impossible — a reader sees the old complete
    document or the new one, never a prefix.
    """
    path = Path(path)
    atomic_write_text(path, json.dumps(payload, sort_keys=True) + "\n")
    return path


@dataclass
class ClusterState:
    """A node's durable cluster identity."""

    role: str = ROLE_PRIMARY
    epoch: int = 1
    primary_url: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "role": self.role,
            "epoch": self.epoch,
            "primary_url": self.primary_url,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterState":
        role = data.get("role")
        epoch = data.get("epoch")
        if role not in ALL_ROLES:
            raise ValueError(f"unknown cluster role {role!r}")
        if isinstance(epoch, bool) or not isinstance(epoch, int) or epoch < 1:
            raise ValueError(f"bad cluster epoch {epoch!r}")
        primary = data.get("primary_url")
        if primary is not None and not isinstance(primary, str):
            raise ValueError("primary_url must be a string or null")
        return cls(role=role, epoch=epoch, primary_url=primary)

    def save(self, data_dir: Union[str, Path]) -> Path:
        return write_json_atomic(
            Path(data_dir) / CLUSTER_FILE, self.to_dict()
        )

    @classmethod
    def load(cls, data_dir: Union[str, Path]) -> Optional["ClusterState"]:
        path = Path(data_dir) / CLUSTER_FILE
        try:
            return cls.from_dict(
                json.loads(path.read_text(encoding="utf-8"))
            )
        except FileNotFoundError:
            return None
        except (ValueError, OSError) as exc:
            # A cluster file that does not parse is treated as absent:
            # the caller falls back to its configured role. It cannot be
            # *torn* (atomic writes), so this is corruption, worth a log.
            log.warning("cluster file unreadable", error=str(exc))
            return None


@dataclass
class ShipperCursor:
    """Where a follower's replication stream stands, durably.

    ``offsets`` maps primary segment first-seq -> byte offset below
    which every line is *resolved* (committed locally or shed). Resuming
    from these offsets can re-fetch a little (anything between the
    stable frontier and the last fetch), never skip: duplicates are
    dropped by sequence number.
    """

    epoch: int = 0
    committed_seq: int = 0
    offsets: Dict[int, int] = field(default_factory=dict)
    primary_url: Optional[str] = None
    bootstraps: int = 0

    def to_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "committed_seq": self.committed_seq,
            "offsets": {
                str(first): offset
                for first, offset in sorted(self.offsets.items())
            },
            "primary_url": self.primary_url,
            "bootstraps": self.bootstraps,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShipperCursor":
        committed = data.get("committed_seq")
        if isinstance(committed, bool) or not isinstance(committed, int):
            raise ValueError("bad cursor committed_seq")
        offsets: Dict[int, int] = {}
        for key, value in (data.get("offsets") or {}).items():
            offsets[int(key)] = int(value)
        return cls(
            epoch=int(data.get("epoch") or 0),
            committed_seq=committed,
            offsets=offsets,
            primary_url=data.get("primary_url"),
            bootstraps=int(data.get("bootstraps") or 0),
        )

    def save(self, data_dir: Union[str, Path]) -> Path:
        return write_json_atomic(Path(data_dir) / CURSOR_FILE, self.to_dict())

    @classmethod
    def load(cls, data_dir: Union[str, Path]) -> Optional["ShipperCursor"]:
        path = Path(data_dir) / CURSOR_FILE
        try:
            return cls.from_dict(
                json.loads(path.read_text(encoding="utf-8"))
            )
        except FileNotFoundError:
            return None
        except (ValueError, OSError) as exc:
            log.warning("replication cursor unreadable", error=str(exc))
            return None


class ReplicationError(Exception):
    """A poll against the primary failed (transport or protocol)."""


@dataclass
class _ParsedLine:
    """One complete line fetched from the primary's WAL."""

    seq: int
    kind: str
    record: dict
    segment_first: int
    end_offset: int
    trace: Optional[str] = None


class WalShipper:
    """Follower-side replication loop: fetch, parse, commit, snapshot.

    Owns no state mutation itself — every commit goes through
    ``service.replicate_commit`` (WAL append + deterministic apply), so
    the follower's durability story is the same snapshot + WAL replay as
    a single node's. The shipper is the *only* writer on a replica; the
    service refuses external ingest in the replica role.
    """

    def __init__(
        self,
        service,
        primary_url: str,
        poll_interval: float = 0.25,
        follower_id: Optional[str] = None,
        fetch_chunk_bytes: int = FETCH_CHUNK_BYTES,
        retry: Optional[RetryPolicy] = None,
        timeout: float = 10.0,
        metrics=None,
        transport=None,
    ) -> None:
        self.service = service
        self.primary_url = primary_url.rstrip("/")
        self.poll_interval = poll_interval
        self.follower_id = follower_id or Path(service.data_dir).name
        self.fetch_chunk_bytes = fetch_chunk_bytes
        self.timeout = timeout
        self.transport = (
            transport if transport is not None else HttpTransport()
        )
        self.retry = retry if retry is not None else RetryPolicy(
            max_attempts=1_000_000,
            backoff_base=max(0.05, poll_interval / 2),
            backoff_max=5.0,
            jitter=True,
            jitter_seed=hash(self.follower_id) & 0xFFFF,
        )
        self.committed_seq = 0
        self.known_epoch = 0
        self.bootstraps = 0
        self.last_primary_seq = 0
        self.state = STATE_INIT
        self.polls = 0
        self.errors = 0
        #: Consecutive failed polls (drives the backoff schedule).
        self._error_streak = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        # Fetch-side state. Byte order equals seq order, so pending
        # lines are always in ascending sequence.
        self._buffers: Dict[int, bytes] = {}
        self._fetched: Dict[int, int] = {}
        self._stable_offsets: Dict[int, int] = {}
        self._pending: List[_ParsedLine] = []
        self._line_ends: List[Tuple[int, int, int]] = []  # (seq, seg, end)
        self._shed: set = set()
        self._max_parsed_seq = 0
        self._cursor_dirty = False
        #: Sticky divergence latch: once the primary is seen *behind* our
        #: committed sequence the stream is poisoned (see poll_once) and
        #: every subsequent poll refuses, even after the primary's
        #: sequence grows past us again with different bytes.
        self._diverged: Optional[str] = None
        registry = metrics if metrics is not None else get_registry()
        self._m_state = registry.gauge(
            "serve_replication_state",
            "follower replication state "
            "(0 init, 1 streaming, 2 bootstrapping, 3 error)",
        )
        self._m_lag = registry.gauge(
            "serve_replication_lag_records",
            "records the follower's committed cursor trails the primary by",
        )
        self._m_committed = registry.gauge(
            "serve_replication_committed_seq",
            "highest sequence number committed locally from the primary",
        )
        self._m_polls = registry.counter(
            "serve_replication_polls_total", "replication poll cycles"
        )
        self._m_errors = registry.counter(
            "serve_replication_errors_total",
            "replication polls that failed (transport or protocol)",
        )
        self._m_bytes = registry.counter(
            "serve_replication_fetch_bytes_total",
            "WAL bytes fetched from the primary",
        )
        self._m_commits = registry.counter(
            "serve_replication_commits_total",
            "records committed from the replication stream", ("kind",),
        )
        self._m_bootstraps = registry.counter(
            "serve_replication_bootstraps_total",
            "snapshot bootstraps (follower fell behind the pruned WAL)",
        )
        self._m_lag_bytes = registry.gauge(
            "serve_replication_lag_bytes",
            "WAL bytes the primary reports that this follower "
            "has not fetched yet",
        )
        self._m_commit_age = registry.gauge(
            "serve_replication_last_commit_age_seconds",
            "seconds since this follower last committed replicated records",
        )
        self._last_commit_at = self.service._clock()
        self._reported_bytes = 0
        self._fetched_bytes = 0
        #: Current poll cycle's trace ID (None between polls). Minted per
        #: cycle, attached to every fetch the cycle performs, so one
        #: replication round is one trace on both sides of the wire.
        self._poll_trace: Optional[str] = None

    # -- lifecycle -------------------------------------------------------------

    def resume_from(self, cursor: Optional[ShipperCursor], recovered_seq: int
                    ) -> None:
        """Seat the cursor after the service recovered its local state.

        The local WAL is the source of truth for what was committed
        (``recovered_seq``); the cursor file contributes resume offsets
        and the epoch. A missing or stale cursor only costs re-fetching —
        duplicate sequences are dropped at commit.
        """
        self.committed_seq = recovered_seq
        if cursor is not None:
            self.known_epoch = cursor.epoch
            self.bootstraps = cursor.bootstraps
            if cursor.committed_seq <= recovered_seq:
                self._stable_offsets = dict(cursor.offsets)
            else:
                # Cursor claims more than the recovered WAL holds (crash
                # between cursor write and WAL flush cannot produce this,
                # but a copied-around data dir can): distrust offsets.
                log.warning(
                    "replication cursor ahead of recovered WAL; refetching",
                    cursor_seq=cursor.committed_seq,
                    recovered_seq=recovered_seq,
                )
        self._fetched = dict(self._stable_offsets)

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-shipper", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 10.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def lag(self) -> int:
        return max(0, self.last_primary_seq - self.committed_seq)

    def status(self) -> dict:
        return {
            "primary_url": self.primary_url,
            "follower_id": self.follower_id,
            "state": REPLICATION_STATE_NAMES.get(self.state, "?"),
            "committed_seq": self.committed_seq,
            "last_primary_seq": self.last_primary_seq,
            "lag_records": self.lag(),
            "lag_bytes": self.lag_bytes(),
            "last_commit_age_s": round(
                max(0.0, self.service._clock() - self._last_commit_at), 3
            ),
            "epoch": self.known_epoch,
            "bootstraps": self.bootstraps,
            "polls": self.polls,
            "errors": self.errors,
            "pending_lines": len(self._pending),
        }

    def lag_bytes(self) -> int:
        """Reported-but-unfetched WAL bytes (0 before the first poll)."""
        return max(0, self._reported_bytes - self._fetched_bytes)

    # -- transport -------------------------------------------------------------

    def _get(self, path: str) -> bytes:
        url = f"{self.primary_url}{path}"
        headers = (
            {"X-Repro-Trace-Id": self._poll_trace}
            if self._poll_trace is not None
            else None
        )
        try:
            response = self.transport.exchange(
                "GET", url, headers=headers, timeout=self.timeout
            )
        except TransportError as error:
            raise ReplicationError(f"GET {path}: {error}") from error
        if not 200 <= response.status < 300:
            raise ReplicationError(
                f"GET {path} -> {response.status}: {response.data[:200]!r}"
            )
        return response.data

    def _get_json(self, path: str) -> dict:
        raw = self._get(path)
        try:
            data = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise ReplicationError(f"GET {path}: bad JSON") from error
        if not isinstance(data, dict):
            raise ReplicationError(f"GET {path}: expected an object")
        return data

    def _fetch_status(self) -> dict:
        query = urllib.parse.urlencode(
            {
                "follower": self.follower_id,
                "committed": self.committed_seq,
                "epoch": self.known_epoch,
            }
        )
        return self._get_json(f"/replication/status?{query}")

    # -- poll loop -------------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self.poll_once()
            except (ReplicationError, OSError) as exc:
                # OSError covers *local* trouble — a follower whose own
                # disk refuses the replicated append (ENOSPC) must keep
                # the poll loop alive to resume once space returns.
                self.errors += 1
                self._error_streak += 1
                self._m_errors.inc()
                self._set_state(STATE_ERROR)
                delay = self.retry.delay(min(self._error_streak, 64))
                log.warning(
                    "replication poll failed",
                    error=str(exc),
                    retry_in_s=round(delay, 3),
                )
                self._stop.wait(delay)
                continue
            self._error_streak = 0
            self._stop.wait(self.poll_interval)

    def poll_once(self) -> dict:
        """One full replication cycle; returns the primary status seen."""
        self.polls += 1
        self._m_polls.inc()
        # One trace per cycle: every fetch this poll performs carries it,
        # so the primary's request log names the cycle and the follower's
        # span below bounds it.
        self._poll_trace = f"{self.follower_id}-poll-{self.polls:06d}"
        try:
            with self.service.tracer.span(
                "replication.poll",
                trace_id=self._poll_trace,
                node=self.follower_id,
                primary=self.primary_url,
            ) as span:
                status = self._fetch_status()
                self._check_epoch(status)
                # Rewind must be checked *before* the bootstrap branch: a
                # rewound primary that also pruned could otherwise talk
                # this follower into bootstrapping away its own (now
                # unique) copy of acked records.
                self._check_rewind(status)
                if self._needs_bootstrap(status):
                    self._bootstrap()
                    status = self._fetch_status()
                    self._check_epoch(status)
                self._set_state(STATE_STREAMING)
                self.last_primary_seq = int(status.get("seq") or 0)
                self._fetch_new_bytes(status)
                stable = int(status.get("stable_seq") or 0)
                committed_before = self.committed_seq
                self._commit_upto(min(stable, self._max_parsed_seq))
                if self.committed_seq > committed_before:
                    self._last_commit_at = self.service._clock()
                span.set_attr(
                    committed_seq=self.committed_seq,
                    lag_records=self.lag(),
                )
        finally:
            self._poll_trace = None
        self._m_lag.set(self.lag())
        self._m_lag_bytes.set(self.lag_bytes())
        self._m_commit_age.set(
            max(0.0, self.service._clock() - self._last_commit_at)
        )
        self._m_committed.set(self.committed_seq)
        if self._cursor_dirty:
            self._persist_cursor()
        return status

    def _set_state(self, state: int) -> None:
        self.state = state
        self._m_state.set(state)

    def _check_epoch(self, status: dict) -> None:
        epoch = status.get("epoch")
        if not isinstance(epoch, int) or isinstance(epoch, bool):
            raise ReplicationError("primary status carries no epoch")
        if epoch < self.known_epoch:
            # A primary serving an older epoch than we have seen is a
            # fenced predecessor (or a rolled-back disk). Streaming from
            # it would fork history.
            raise ReplicationError(
                f"primary epoch {epoch} is stale (seen {self.known_epoch})"
            )
        if epoch > self.known_epoch:
            self.known_epoch = epoch
            self._cursor_dirty = True
        role = status.get("role")
        if role != ROLE_PRIMARY:
            log.warning(
                "replication source is not primary", role=role,
                primary=self.primary_url,
            )

    def _check_rewind(self, status: dict) -> None:
        """Fail-stop when the primary's WAL rewound below our commit.

        A primary that lost its acked-but-unfsynced WAL tail to a power
        cut can come back reporting a highest sequence *below* what this
        follower already committed. Continuing to stream would misalign
        byte offsets and silently fork history once the primary reassigns
        those sequences to different records — found by the simulation
        harness (corpus trace ``primary-rewind``). The only safe move is
        to refuse, permanently: an operator (or the failover drill) must
        re-seed this follower or promote it.
        """
        if self._diverged is not None:
            raise ReplicationError(self._diverged)
        seq = int(status.get("seq") or 0)
        if seq < self.committed_seq:
            self._diverged = (
                f"primary rewound to seq {seq} below committed "
                f"{self.committed_seq}; refusing to stream a forked history"
            )
            raise ReplicationError(self._diverged)

    # -- bootstrap -------------------------------------------------------------

    def _needs_bootstrap(self, status: dict) -> bool:
        oldest = status.get("oldest_seq")
        if oldest is None:
            return False
        return self.committed_seq + 1 < int(oldest)

    def _bootstrap(self) -> None:
        """Reset from the primary's newest snapshot (WAL was pruned past us)."""
        self._set_state(STATE_BOOTSTRAPPING)
        with self.service.tracer.span(
            "replication.bootstrap",
            trace_id=self._poll_trace,
            node=self.follower_id,
            primary=self.primary_url,
        ):
            payload = self._get_json("/replication/snapshot")
            seq = payload.get("seq")
            state = payload.get("state")
            if not isinstance(seq, int) or not isinstance(state, dict):
                raise ReplicationError("bootstrap snapshot payload malformed")
            self.service.bootstrap_from_snapshot(seq, state)
        self.committed_seq = seq
        self._buffers.clear()
        self._fetched.clear()
        self._stable_offsets.clear()
        self._pending.clear()
        self._line_ends.clear()
        self._shed.clear()
        self._max_parsed_seq = seq
        self.bootstraps += 1
        self._m_bootstraps.inc()
        self._cursor_dirty = True
        log.info(
            "bootstrapped from primary snapshot",
            seq=seq,
            primary=self.primary_url,
        )

    # -- fetch + parse ---------------------------------------------------------

    def _fetch_new_bytes(self, status: dict) -> None:
        sizes = [
            (int(first), int(size))
            for first, size in (status.get("segments") or [])
        ]
        sizes.sort()
        self._reported_bytes = sum(size for _first, size in sizes)
        for index, (first, size) in enumerate(sizes):
            next_first = (
                sizes[index + 1][0] if index + 1 < len(sizes) else None
            )
            if (
                next_first is not None
                and next_first <= self.committed_seq + 1
                and first not in self._buffers
            ):
                # Every sequence this segment can contain is already
                # committed: skip it wholesale (cursor-loss resume).
                self._fetched[first] = size
                self._stable_offsets[first] = size
                continue
            offset = self._fetched.get(first, 0)
            while offset < size and not self._stop.is_set():
                # Cap at the status-reported size: the primary fsyncs
                # before reporting, so bytes below it are power-loss
                # durable — but the segment may have grown (unsynced)
                # since, and fetching past the report would reintroduce
                # the rewind hazard the fsync barrier exists to close.
                limit = min(self.fetch_chunk_bytes, size - offset)
                chunk = self._get(
                    f"/replication/segment?first={first}"
                    f"&offset={offset}&limit={limit}"
                )
                if not chunk:
                    break
                self._m_bytes.inc(len(chunk))
                offset += len(chunk)
                self._fetched[first] = offset
                self._parse(first, chunk, offset)
        self._fetched_bytes = sum(
            min(self._fetched.get(first, 0), size) for first, size in sizes
        )

    def _parse(self, segment_first: int, chunk: bytes, end_offset: int
               ) -> None:
        """Split fetched bytes into complete lines; keep the torn tail."""
        buffer = self._buffers.get(segment_first, b"") + chunk
        # end_offset is where the buffer *ends* in the segment file; the
        # offset of each parsed line's end is recovered from it.
        consumed_upto = end_offset - len(buffer)
        while True:
            newline = buffer.find(b"\n")
            if newline == -1:
                break
            line = buffer[:newline]
            buffer = buffer[newline + 1:]
            consumed_upto += newline + 1
            text = line.strip()
            if not text:
                continue
            try:
                data = json.loads(text.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                # Mid-segment garbage cannot be a read race (we only
                # parse newline-terminated lines): the primary's log is
                # damaged. Refuse to guess.
                raise ReplicationError(
                    f"unparseable WAL line in segment {segment_first} "
                    f"at ~{consumed_upto} bytes"
                )
            seq = data.get("seq")
            kind = data.get("kind")
            record = data.get("record")
            if (
                not isinstance(seq, int)
                or kind not in WAL_KINDS
                or not isinstance(record, dict)
            ):
                raise ReplicationError(
                    f"malformed WAL record in segment {segment_first}"
                )
            self._max_parsed_seq = max(self._max_parsed_seq, seq)
            self._line_ends.append((seq, segment_first, consumed_upto))
            if kind == KIND_SHED:
                # Effective immediately — the whole point of computing
                # the shed set from *all* fetched bytes is that a
                # tombstone beyond the stable frontier still protects
                # records below it.
                self._shed.update(
                    s for s in record.get("seqs", ()) if isinstance(s, int)
                )
            elif seq > self.committed_seq:
                trace = data.get("trace")
                self._pending.append(
                    _ParsedLine(seq, kind, record, segment_first,
                                consumed_upto,
                                trace if isinstance(trace, str) else None)
                )
        self._buffers[segment_first] = buffer

    # -- commit ----------------------------------------------------------------

    def _commit_upto(self, frontier: int) -> None:
        """Commit every pending record at or below the stable frontier."""
        if frontier <= self.committed_seq:
            return
        batch: List[WalRecord] = []
        keep: List[_ParsedLine] = []
        for line in self._pending:
            if line.seq > frontier:
                keep.append(line)
            elif line.seq in self._shed or line.seq <= self.committed_seq:
                continue
            else:
                batch.append(
                    WalRecord(line.seq, line.kind, line.record, line.trace)
                )
        if batch:
            # Commit BEFORE mutating any shipper state: if the local WAL
            # append fails (disk full), the pending lines must survive
            # for the retry, or the shipper would advance committed_seq
            # over a gap once the disk frees up and never re-fetch the
            # lost records (found by the simulation harness: corpus
            # trace ``follower-enospc-gap``).
            self.service.replicate_commit(batch)
            for record in batch:
                self._m_commits.inc(kind=record.kind)
        self._pending = keep
        # Advance the resolved byte offsets: lines at or under the
        # frontier form a contiguous byte prefix (byte order == seq
        # order), so the last such line per segment is the resume point.
        ends = self._line_ends
        keep_ends: List[Tuple[int, int, int]] = []
        for seq, segment_first, end in ends:
            if seq <= frontier:
                current = self._stable_offsets.get(segment_first, 0)
                if end > current:
                    self._stable_offsets[segment_first] = end
            else:
                keep_ends.append((seq, segment_first, end))
        self._line_ends = keep_ends
        self.committed_seq = frontier
        self._shed = {s for s in self._shed if s > frontier}
        self._cursor_dirty = True

    def _persist_cursor(self) -> None:
        cursor = ShipperCursor(
            epoch=self.known_epoch,
            committed_seq=self.committed_seq,
            offsets=dict(self._stable_offsets),
            primary_url=self.primary_url,
            bootstraps=self.bootstraps,
        )
        cursor.save(self.service.data_dir)
        self._cursor_dirty = False


__all__ = [
    "ALL_ROLES",
    "CLUSTER_FILE",
    "CURSOR_FILE",
    "ClusterState",
    "FETCH_CHUNK_BYTES",
    "REPLICATION_STATE_NAMES",
    "ReplicationError",
    "ROLE_FENCED",
    "ROLE_PRIMARY",
    "ROLE_REPLICA",
    "ShipperCursor",
    "STATE_BOOTSTRAPPING",
    "STATE_ERROR",
    "STATE_INIT",
    "STATE_STREAMING",
    "WalShipper",
    "write_json_atomic",
]
