"""Rolling snapshots of fused state through the durable checkpoint store.

A snapshot is one :class:`~repro.store.checkpoint.CheckpointStore` stage
named ``snapshot-<seq>``: the atomic write + SHA-256 manifest machinery
from the batch pipeline is reused verbatim, so a snapshot on disk is
either complete and checksummed or does not exist. Rolling retention
keeps the newest ``keep`` snapshots; recovery walks them newest-first
and falls back to an older one when the newest fails verification — a
corrupted snapshot costs a longer WAL replay, never the run.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple, Union
from pathlib import Path

from repro.log import get_logger
from repro.obs.metrics import get_registry
from repro.store.checkpoint import CheckpointError, CheckpointStore

log = get_logger("serve.snapshot")

SNAPSHOT_PREFIX = "snapshot-"

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{12})$")


def snapshot_stage_name(seq: int) -> str:
    return f"{SNAPSHOT_PREFIX}{seq:012d}"


def snapshot_seq(stage_name: str) -> Optional[int]:
    match = _SNAPSHOT_RE.match(stage_name)
    return int(match.group(1)) if match else None


@dataclass
class SnapshotLoad:
    """Outcome of the newest-valid-snapshot walk."""

    seq: int = 0
    payload: Any = None
    #: Snapshots that failed verification and were discarded on the way.
    discarded: List[str] = field(default_factory=list)

    @property
    def found(self) -> bool:
        return self.payload is not None


class SnapshotManager:
    """Rolling, checksummed snapshots under one data directory."""

    def __init__(
        self,
        store: Union[str, Path, CheckpointStore],
        keep: int = 2,
        metrics=None,
    ) -> None:
        if keep < 1:
            raise ValueError("must keep at least one snapshot")
        # Paths become real CheckpointStores; anything else only has to
        # duck-type stages/save/load/discard — the simulation harness
        # substitutes an in-memory store with seeded corruption here.
        self.store = (
            CheckpointStore(store)
            if isinstance(store, (str, Path))
            else store
        )
        self.keep = keep
        registry = metrics if metrics is not None else get_registry()
        self._m_saves = registry.counter(
            "serve_snapshots_total", "rolling snapshots persisted"
        )
        self._m_discarded = registry.counter(
            "serve_snapshots_discarded_total",
            "snapshots that failed verification at load",
        )
        self._m_seq = registry.gauge(
            "serve_snapshot_seq", "sequence number of the newest snapshot"
        )

    def seqs(self) -> List[int]:
        """Snapshot sequence numbers on disk, ascending."""
        found = []
        for stage in self.store.stages():
            seq = snapshot_seq(stage)
            if seq is not None:
                found.append(seq)
        return sorted(found)

    def save(self, seq: int, payload: Any) -> str:
        """Persist one snapshot and retire the oldest beyond ``keep``."""
        name = snapshot_stage_name(seq)
        self.store.save(name, payload)
        self._m_saves.inc()
        self._m_seq.set(seq)
        for old_seq in self.seqs()[: -self.keep]:
            self.store.discard(snapshot_stage_name(old_seq))
        log.debug("snapshot saved", seq=seq)
        return name

    def load_newest_valid(self) -> SnapshotLoad:
        """Newest snapshot that verifies; corrupt ones are discarded.

        The fall-back chain is the whole point of keeping more than one:
        a snapshot that fails its checksum (or names a state version this
        build cannot read — the caller re-raises that as
        :class:`ValueError` through *validate*) silently shifts recovery
        one snapshot back, where the WAL still covers the gap.
        """
        result = SnapshotLoad()
        for seq in reversed(self.seqs()):
            name = snapshot_stage_name(seq)
            try:
                payload = self.store.load(name)
            except CheckpointError as exc:
                result.discarded.append(name)
                self._m_discarded.inc()
                log.warning(
                    "snapshot rejected; falling back",
                    snapshot=name,
                    reason=exc.reason,
                )
                self.store.discard(name)
                continue
            result.seq = seq
            result.payload = payload
            return result
        return result


__all__ = [
    "SNAPSHOT_PREFIX",
    "SnapshotLoad",
    "SnapshotManager",
    "snapshot_seq",
    "snapshot_stage_name",
]
