"""Append-only write-ahead log of accepted ingest records.

Durability contract: an event is acknowledged to the client (HTTP 202)
only after its WAL line reached the operating system — so a ``kill -9``
at any instant loses nothing that was acknowledged, and recovery is
snapshot-load + replay of the WAL tail. ``fsync`` is batched
(``fsync_every``): a process kill never loses flushed writes, only a
*power* failure can lose the last unfsynced batch, and the window is
bounded and configurable.

Layout: one directory of segment files, ``wal-<first_seq>.jsonl``. A
segment is named after the first sequence number it may contain; the
service rotates to a fresh segment at every snapshot, so pruning is
"delete every segment whose successor starts at or below the snapshot
sequence" — no rewrite, no read-modify-write, nothing to corrupt.

Records are one JSON object per line::

    {"seq": 17, "kind": "attack", "record": {...}}
    {"seq": 42, "kind": "shed",   "record": {"seqs": [18, 19], "feed": "telescope"}}

``shed`` tombstones make load shedding itself durable: when admission
drops already-logged events (drop-oldest overflow), the drop decision is
appended too, so replay skips exactly what the live process never
applied — recovery stays value-identical even across an overload burst.

Replay is tolerant of a torn tail: a crash mid-append leaves at most one
unparseable final line per segment, which is discarded (and counted) —
it was never acknowledged, so discarding it is correct, not lossy.

Because sequence assignment and the append happen under one lock, WAL
*byte order is sequence order* — which is what makes the log shippable:
a follower that copies segment bytes in order and replays them lands on
the same state. :meth:`WriteAheadLog.segment_sizes` and
:meth:`WriteAheadLog.read_chunk` are the primary-side streaming
primitives (:mod:`repro.serve.replication` pulls through them), and
``replay(upto_seq=...)`` is the truncated-replay oracle failover drills
compare a promoted follower against.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.log import get_logger
from repro.obs.metrics import get_registry
from repro.serve.disk import LocalDisk

log = get_logger("serve.wal")

#: Segment file naming: wal-<12-digit first seq>.jsonl
SEGMENT_PREFIX = "wal-"
SEGMENT_SUFFIX = ".jsonl"

#: Record kinds the log carries.
KIND_ATTACK = "attack"
KIND_DPS = "dps"
KIND_SHED = "shed"

WAL_KINDS = (KIND_ATTACK, KIND_DPS, KIND_SHED)


def segment_name(first_seq: int) -> str:
    return f"{SEGMENT_PREFIX}{first_seq:012d}{SEGMENT_SUFFIX}"


def segment_first_seq(name: str) -> Optional[int]:
    """The first-seq a segment file name encodes, or None for other files."""
    if not (name.startswith(SEGMENT_PREFIX) and name.endswith(SEGMENT_SUFFIX)):
        return None
    middle = name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)]
    if not middle.isdigit():
        return None
    return int(middle)


@dataclass(frozen=True)
class WalRecord:
    """One replayed WAL entry."""

    seq: int
    kind: str
    record: dict
    #: Request trace ID riding along with the record (None: untraced).
    #: Optional and ignored by recovery semantics — it exists so a
    #: follower applying shipped bytes can attribute the apply back to
    #: the client request that produced the write.
    trace: Optional[str] = None


@dataclass
class ReplayReport:
    """What a replay pass saw: applied, skipped and discarded lines."""

    records: int = 0
    shed_seqs: int = 0
    torn_lines: int = 0
    segments: int = 0
    #: Lines whose ``seq`` was already yielded by an earlier line. Byte
    #: order is normally sequence order, but a repair-tail + replication
    #: refetch race (or a copied-around data dir) can leave the same
    #: sequence on disk twice; replay keeps the first copy and counts
    #: the rest here instead of applying them twice.
    duplicate_seqs: int = 0


class WriteAheadLog:
    """Segmented JSONL write-ahead log with batched fsync.

    Not thread-safe by itself: the service serializes appends under its
    admission lock, which also makes WAL order the apply order.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        fsync_every: int = 64,
        metrics=None,
        disk=None,
    ) -> None:
        if fsync_every < 1:
            raise ValueError("fsync_every must be at least one append")
        self.directory = Path(directory)
        self.disk = disk if disk is not None else LocalDisk()
        self.disk.mkdir(self.directory)
        self.fsync_every = fsync_every
        self._handle = None
        self._current_path: Optional[Path] = None
        self._appends_since_fsync = 0
        registry = metrics if metrics is not None else get_registry()
        self._m_appends = registry.counter(
            "serve_wal_appends_total", "WAL records appended", ("kind",)
        )
        self._m_bytes = registry.counter(
            "serve_wal_bytes_total", "WAL bytes written"
        )
        self._m_fsyncs = registry.counter(
            "serve_wal_fsyncs_total", "WAL fsync calls"
        )

    # -- segments -------------------------------------------------------------

    def segments(self) -> List[Path]:
        """Segment files on disk, in first-seq order."""
        found = []
        for name in self.disk.listdir(self.directory):
            first = segment_first_seq(name)
            if first is not None:
                found.append((first, self.directory / name))
        return [path for _first, path in sorted(found)]

    def oldest_seq(self) -> Optional[int]:
        """First-seq of the oldest segment on disk (None: empty log).

        Everything below this may have been pruned away; a follower whose
        cursor sits under it cannot catch up from the WAL alone and must
        bootstrap from a snapshot instead.
        """
        segments = self.segments()
        if not segments:
            return None
        return segment_first_seq(segments[0].name)

    def segment_sizes(self) -> List[Tuple[int, int]]:
        """``(first_seq, byte_size)`` per segment, in first-seq order.

        Sizes are read *after* whatever was appended so far was flushed
        to the OS (every append flushes), so a byte range below a
        reported size is stable: re-reading it always yields the same
        bytes. A segment vanishing between listing and stat (pruned
        concurrently) is simply omitted — the follower notices via
        :meth:`oldest_seq` on its next status poll.
        """
        sizes: List[Tuple[int, int]] = []
        for path in self.segments():
            first = segment_first_seq(path.name)
            if first is None:  # pragma: no cover - segments() filtered
                continue
            try:
                sizes.append((first, self.disk.size(path)))
            except OSError:
                continue
        return sizes

    def read_chunk(
        self, first_seq: int, offset: int, max_bytes: int = 1 << 20
    ) -> Optional[bytes]:
        """Raw bytes of one segment from *offset* (None: no such segment).

        The replication fetch path: followers pull segment bytes in
        order and append them to their own log. The read may end
        mid-line when it races a concurrent append — the shipper buffers
        the partial tail until the rest arrives, so chunk boundaries
        need no alignment.
        """
        if offset < 0 or max_bytes < 1:
            raise ValueError("offset must be >= 0 and max_bytes >= 1")
        path = self.directory / segment_name(first_seq)
        return self.disk.read_chunk(path, offset, max_bytes)

    def open_segment(self, first_seq: int) -> None:
        """Start appending to the segment that begins at *first_seq*.

        Appending to an existing segment continues it (the recovery path
        re-opens the tail segment rather than abandoning it).
        """
        self._close_handle()
        self._current_path = self.directory / segment_name(first_seq)
        self._handle = self.disk.open_append(self._current_path)
        self._appends_since_fsync = 0

    def rotate(self, next_seq: int) -> None:
        """Close the current segment and open a fresh one at *next_seq*.

        Called right after a snapshot: records at and above *next_seq*
        land in the new segment, so every older segment holds only
        sequences the snapshot already covers once the applier catches up.
        """
        self._fsync()
        self.open_segment(next_seq)

    def prune(self, upto_seq: int) -> int:
        """Delete segments fully covered by a snapshot at *upto_seq*.

        A segment is removable when it is not the current one and the
        *next* segment starts at or below ``upto_seq + 1`` — i.e. every
        record it can contain has ``seq <= upto_seq``.
        """
        removed = 0
        segments = self.segments()
        for index, path in enumerate(segments):
            if path == self._current_path:
                continue
            if index + 1 >= len(segments):
                # The newest segment is never pruned, current or not: a
                # rotation racing this scan could otherwise delete the
                # segment the rotated-to handle is about to continue.
                continue
            next_first = segment_first_seq(segments[index + 1].name)
            if next_first is not None and next_first <= upto_seq + 1:
                try:
                    self.disk.unlink(path)
                    removed += 1
                except FileNotFoundError:
                    pass
        if removed:
            log.debug("wal segments pruned", removed=removed, upto=upto_seq)
        return removed

    # -- appending ------------------------------------------------------------

    def append(self, seq: int, kind: str, record: dict,
               trace: Optional[str] = None) -> None:
        """Append one record and flush it to the OS (ack-safe).

        *trace* optionally tags the line with the request trace ID that
        produced it; untraced lines keep the historical byte format, and
        readers that predate the field ignore the extra key.

        A failed append (ENOSPC) may have written a *partial* line; left
        in place it would glue itself onto the next successful append and
        take an acknowledged record down with it. So on ``OSError`` the
        segment is repaired — handle closed, partial bytes truncated
        away, handle reopened — before the error propagates; the caller
        (which never acked this record) may retry the sequence number.
        """
        if kind not in WAL_KINDS:
            raise ValueError(f"unknown WAL record kind: {kind!r}")
        if self._handle is None:
            self.open_segment(seq)
        payload = {"seq": seq, "kind": kind, "record": record}
        if trace is not None:
            payload["trace"] = trace
        line = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        try:
            self.disk.append(self._handle, (line + "\n").encode("utf-8"))
        except OSError:
            path = self._current_path
            try:
                self.disk.close(self._handle)
            except OSError:  # pragma: no cover - close after ENOSPC
                pass
            self._handle = None
            self._appends_since_fsync = 0
            if path is not None:
                self.repair_tail(path)
                self._current_path = path
                self._handle = self.disk.open_append(path)
            raise
        self._m_appends.inc(kind=kind)
        self._m_bytes.inc(len(line) + 1)
        self._appends_since_fsync += 1
        if self._appends_since_fsync >= self.fsync_every:
            self._fsync()

    def _fsync(self) -> None:
        if self._handle is None or self._appends_since_fsync == 0:
            return
        self.disk.fsync(self._handle)
        self._m_fsyncs.inc()
        self._appends_since_fsync = 0

    def flush(self) -> None:
        """Force everything appended so far to stable storage."""
        self._fsync()

    def _close_handle(self) -> None:
        if self._handle is not None:
            self._fsync()
            self.disk.close(self._handle)
            self._handle = None

    def close(self) -> None:
        self._close_handle()

    # -- repair ---------------------------------------------------------------

    @staticmethod
    def _valid_shape(data) -> bool:
        return (
            isinstance(data, dict)
            and isinstance(data.get("seq"), int)
            and data.get("kind") in WAL_KINDS
            and isinstance(data.get("record"), dict)
        )

    def repair_tail(self, path: Path) -> int:
        """Truncate *path* to the end of its last complete, parseable line.

        A crash mid-append leaves at most one torn final line, which
        replay tolerates — but *continuing* the segment in append mode
        would concatenate the first post-recovery record onto the
        partial line, merging an acknowledged record into an
        unparseable line that poisons the segment tail on the next
        replay. Recovery therefore cuts the torn bytes before reopening
        the segment. Returns bytes removed (0: segment was intact).
        """
        try:
            raw = self.disk.read_bytes(path)
        except OSError:
            return 0
        keep = 0
        offset = 0
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            if newline == -1:
                break  # unterminated tail line: torn by definition
            line = raw[offset:newline].strip()
            offset = newline + 1
            if line:
                try:
                    data = json.loads(line.decode("utf-8"))
                except (ValueError, UnicodeDecodeError):
                    break
                if not self._valid_shape(data):
                    break
            keep = offset
        if keep >= len(raw):
            return 0
        self.disk.truncate(path, keep)
        trimmed = len(raw) - keep
        log.warning(
            "wal tail repaired (torn bytes truncated)",
            segment=path.name,
            trimmed_bytes=trimmed,
        )
        return trimmed

    # -- replay ---------------------------------------------------------------

    def _iter_segment(
        self, path: Path, report: ReplayReport
    ) -> Iterator[dict]:
        try:
            text = self.disk.read_bytes(path).decode(
                "utf-8", errors="replace"
            )
        except OSError:
            return
        lines = text.splitlines()
        for index, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                # A torn line can only be the crash-interrupted tail;
                # anything after it in this segment is untrustworthy.
                report.torn_lines += 1
                if index < len(lines) - 1:
                    log.warning(
                        "wal line torn mid-segment; segment tail discarded",
                        segment=path.name,
                        line=index + 1,
                    )
                return
            if not self._valid_shape(data):
                report.torn_lines += 1
                return
            yield data

    def replay(
        self, after_seq: int = 0, upto_seq: Optional[int] = None
    ) -> Tuple[List[WalRecord], ReplayReport]:
        """All apply-able records with ``seq > after_seq``, in order.

        Two passes: the first collects ``shed`` tombstones (a drop
        decision is recorded *after* the sequences it drops), the second
        yields every non-shed record that is neither covered by the
        snapshot nor shed. Segments are small — they only span the
        distance since the last snapshot — so the double read is cheap.

        *upto_seq* truncates the replay at a sequence number while the
        shed set is still computed from the **whole** log: a tombstone
        with a sequence above the cut can shed a record below it (the
        drop decision is logged after the records it evicts), and the
        live process never applied that record either. This is the
        oracle failover drills replay a dead primary's log through: the
        state at ``upto_seq`` as the primary itself would have recovered
        it.
        """
        report = ReplayReport()
        shed: set = set()
        segments = self.segments()
        report.segments = len(segments)
        parsed: List[dict] = []
        for path in segments:
            for data in self._iter_segment(path, report):
                parsed.append(data)
                if data["kind"] == KIND_SHED:
                    shed.update(
                        s
                        for s in data["record"].get("seqs", ())
                        if isinstance(s, int)
                    )
        report.shed_seqs = len(shed)
        records: List[WalRecord] = []
        seen: set = set()
        for data in parsed:
            seq = data["seq"]
            if seq <= after_seq or seq in shed or data["kind"] == KIND_SHED:
                continue
            if upto_seq is not None and seq > upto_seq:
                continue
            if seq in seen:
                report.duplicate_seqs += 1
                continue
            seen.add(seq)
            trace = data.get("trace")
            records.append(WalRecord(
                seq, data["kind"], data["record"],
                trace if isinstance(trace, str) else None,
            ))
        records.sort(key=lambda r: r.seq)
        report.records = len(records)
        return records, report

    def max_seq(self) -> int:
        """Highest sequence number present anywhere in the log (0: none)."""
        report = ReplayReport()
        highest = 0
        for path in self.segments():
            for data in self._iter_segment(path, report):
                if data["seq"] > highest:
                    highest = data["seq"]
        return highest


__all__ = [
    "KIND_ATTACK",
    "KIND_DPS",
    "KIND_SHED",
    "ReplayReport",
    "WAL_KINDS",
    "WalRecord",
    "WriteAheadLog",
    "segment_first_seq",
    "segment_name",
]
