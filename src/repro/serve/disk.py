"""The disk seam under the write-ahead log.

:class:`WriteAheadLog` performs every byte of I/O through a *disk*
object instead of calling ``open``/``os.fsync`` directly. The default,
:class:`LocalDisk`, is exactly the operating-system behavior the log
always had — the seam exists so the deterministic simulation harness
(:mod:`repro.simtest`) can substitute an in-memory disk that injects
torn writes, power cuts that lose the unfsynced tail, and ``ENOSPC`` at
chosen byte offsets, all under a seeded schedule.

The interface is deliberately shaped like the WAL's access pattern (one
append handle, whole-segment reads, ranged chunk reads, truncate-and-
fsync repair) rather than like a general filesystem: a smaller surface
is easier to hold deterministic.

Durability vocabulary the simulation relies on:

* ``append`` = write + flush to the OS. A *process* kill never loses
  appended bytes.
* ``fsync`` = force to stable storage. Only a *power* failure can lose
  appended-but-unfsynced bytes — and may tear the final line.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Optional, Union


class LocalDisk:
    """Real-filesystem implementation: what production serving uses."""

    def mkdir(self, directory: Union[str, Path]) -> None:
        Path(directory).mkdir(parents=True, exist_ok=True)

    def listdir(self, directory: Union[str, Path]) -> List[str]:
        return [path.name for path in Path(directory).iterdir()]

    def size(self, path: Union[str, Path]) -> int:
        return Path(path).stat().st_size

    def exists(self, path: Union[str, Path]) -> bool:
        return Path(path).exists()

    def unlink(self, path: Union[str, Path]) -> None:
        Path(path).unlink()

    # -- append handle (one open segment at a time) ---------------------------

    def open_append(self, path: Union[str, Path]):
        return open(path, "ab")

    def append(self, handle, data: bytes) -> None:
        """Write *data* and flush it to the OS (the ack point)."""
        handle.write(data)
        handle.flush()

    def fsync(self, handle) -> None:
        os.fsync(handle.fileno())

    def close(self, handle) -> None:
        handle.close()

    # -- reads ----------------------------------------------------------------

    def read_bytes(self, path: Union[str, Path]) -> bytes:
        return Path(path).read_bytes()

    def read_chunk(
        self, path: Union[str, Path], offset: int, max_bytes: int
    ) -> Optional[bytes]:
        try:
            with open(path, "rb") as handle:
                handle.seek(offset)
                return handle.read(max_bytes)
        except OSError:
            return None

    # -- repair ---------------------------------------------------------------

    def truncate(self, path: Union[str, Path], keep_bytes: int) -> None:
        """Cut *path* to *keep_bytes* and fsync the cut (tail repair)."""
        with open(path, "r+b") as handle:
            handle.truncate(keep_bytes)
            handle.flush()
            os.fsync(handle.fileno())


__all__ = ["LocalDisk"]
