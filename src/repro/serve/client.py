"""Stdlib HTTP client for the serve API: backoff, failover, redirects.

Every caller that talks to the live service — the chaos drills, the
benchmarks, operators' scripts — needs the same three behaviors, so they
live here once instead of as scattered ``urllib`` calls:

* **503 + Retry-After**: an overloaded (or sync-replication-starved)
  node answers 503 with the seconds to wait. The client honors the
  header and adds decorrelated jitter from the existing
  :class:`~repro.pipeline.runner.RetryPolicy` — seeded, so tests and
  drills replay the same schedule — because a fleet of clients all
  sleeping exactly ``Retry-After`` reconverges as a thundering herd.
* **409 + primary hint**: a replica or fenced node refuses writes and
  names the primary. The client re-aims at the hinted URL and retries
  there — callers keep one endpoint list across a failover.
* **Connection failover**: a dead endpoint (kill -9'd primary) rotates
  the client to the next endpoint in its list; reads work against any
  node, writes land wherever the hints lead.

The client is deliberately small: JSON in, JSON out, no sessions, no
pooling — ``urllib`` opens one connection per request, which is exactly
the behavior the drills want when they kill nodes mid-burst.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.log import get_logger
from repro.pipeline.runner import RetryPolicy
from repro.serve.transport import HttpTransport, TransportError

log = get_logger("serve.client")

#: Default retry schedule: bounded attempts, decorrelated jitter so
#: concurrent clients spread out, seeded so drills are reproducible.
DEFAULT_RETRY = RetryPolicy(
    max_attempts=8,
    backoff_base=0.05,
    backoff_factor=2.0,
    backoff_max=2.0,
    jitter=True,
    jitter_seed=0,
)


class ServeClientError(Exception):
    """The request could not be completed within the retry budget."""


@dataclass
class ClientResponse:
    """One HTTP exchange: status + parsed JSON body (if any)."""

    status: int
    body: dict = field(default_factory=dict)
    endpoint: str = ""
    #: Trace ID the server echoed (or the one this client sent).
    trace_id: str = ""

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class ServeClient:
    """Ingest/query client over a primary/follower endpoint list."""

    def __init__(
        self,
        endpoints: Union[str, Sequence[str]],
        retry: Optional[RetryPolicy] = None,
        timeout: float = 10.0,
        sleep: Callable[[float], None] = time.sleep,
        transport=None,
        trace_prefix: str = "client",
    ) -> None:
        if isinstance(endpoints, str):
            endpoints = [endpoints]
        if not endpoints:
            raise ValueError("need at least one endpoint URL")
        self.endpoints: List[str] = [e.rstrip("/") for e in endpoints]
        self.retry = retry if retry is not None else DEFAULT_RETRY
        self.timeout = timeout
        self.transport = (
            transport if transport is not None else HttpTransport()
        )
        self._sleep = sleep
        self._active = 0
        self.trace_prefix = trace_prefix
        self._trace_lock = threading.Lock()
        self._trace_counter = 0
        # Visible counters the drills assert on.
        self.retries = 0
        self.failovers = 0
        self.redirects = 0

    def mint_trace_id(self) -> str:
        """Next trace ID: one per *logical* request, not per attempt."""
        with self._trace_lock:
            self._trace_counter += 1
            return f"{self.trace_prefix}-{self._trace_counter:06d}"

    # -- plumbing -------------------------------------------------------------

    @property
    def active_endpoint(self) -> str:
        return self.endpoints[self._active]

    def _use(self, endpoint: str) -> str:
        """Make *endpoint* the active one, learning it if new."""
        endpoint = endpoint.rstrip("/")
        if endpoint not in self.endpoints:
            self.endpoints.append(endpoint)
        self._active = self.endpoints.index(endpoint)
        return endpoint

    def _rotate(self) -> None:
        self._active = (self._active + 1) % len(self.endpoints)
        self.failovers += 1

    def _exchange(
        self, method: str, endpoint: str, path: str, body: Optional[dict],
        trace: Optional[str] = None,
    ) -> ClientResponse:
        """One HTTP round-trip; HTTP error statuses return, not raise."""
        data = None
        headers = {}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if trace:
            headers["X-Repro-Trace-Id"] = trace
        response = self.transport.exchange(
            method, f"{endpoint}{path}", body=data, headers=headers,
            timeout=self.timeout,
        )
        payload = response.data
        status = response.status
        retry_after = response.header("Retry-After")
        parsed: dict = {}
        if payload:
            try:
                decoded = json.loads(payload.decode("utf-8"))
                if isinstance(decoded, dict):
                    parsed = decoded
            except (ValueError, UnicodeDecodeError):
                parsed = {}
        if retry_after is not None and "retry_after" not in parsed:
            try:
                parsed["retry_after"] = float(retry_after)
            except ValueError:
                pass
        echoed = response.header("X-Repro-Trace-Id")
        return ClientResponse(
            status=status, body=parsed, endpoint=endpoint,
            trace_id=echoed if echoed else (trace or ""),
        )

    def request_once(
        self, method: str, path: str, body: Optional[dict] = None,
        endpoint: Optional[str] = None, trace: Optional[str] = None,
    ) -> ClientResponse:
        """One un-retried exchange: every status returns as-is.

        For callers that *measure* rather than converse — the benchmarks
        time individual requests and count 503s, so retry loops would
        falsify the numbers. Connection errors still raise.
        """
        target = endpoint.rstrip("/") if endpoint else self.active_endpoint
        return self._exchange(method, target, path, body, trace=trace)

    def request(
        self, method: str, path: str, body: Optional[dict] = None,
        endpoint: Optional[str] = None, trace: Optional[str] = None,
    ) -> ClientResponse:
        """Send with backoff/failover until a non-retryable answer.

        Retryable: 503 (sleep ``max(Retry-After, jittered backoff)``),
        409 with a ``primary_url`` hint (re-aim, no sleep), connection
        errors (rotate to the next endpoint, jittered backoff). Anything
        else — including 4xx — returns as-is; pinning *endpoint*
        disables failover and redirects for that call (the drills use it
        to address one specific node).

        One trace ID covers the whole logical request: minted up front
        (or passed in by the caller) and re-sent on every retry,
        redirect, and failover, so the cluster-side spans for all
        attempts correlate.
        """
        pinned = endpoint is not None
        target = endpoint.rstrip("/") if endpoint else self.active_endpoint
        trace = trace if trace is not None else self.mint_trace_id()
        last_error: Optional[str] = None
        attempts = self.retry.max_attempts
        for attempt in range(1, attempts + 1):
            try:
                response = self._exchange(
                    method, target, path, body, trace=trace
                )
            except (TransportError, OSError, TimeoutError) as exc:
                last_error = f"{target}: {exc}"
                if attempt >= attempts:
                    break
                if not pinned:
                    self._rotate()
                    target = self.active_endpoint
                self.retries += 1
                self._sleep(self.retry.delay(attempt))
                continue
            if response.status == 503:
                last_error = f"{target}: 503 {response.body.get('reasons')}"
                if attempt >= attempts:
                    break
                retry_after = float(response.body.get("retry_after") or 0.0)
                self.retries += 1
                self._sleep(max(retry_after, self.retry.delay(attempt)))
                continue
            if (
                response.status == 409
                and not pinned
                and response.body.get("read_only")
                and isinstance(response.body.get("primary_url"), str)
            ):
                hint = response.body["primary_url"]
                last_error = f"{target}: read-only, primary at {hint}"
                if attempt >= attempts:
                    break
                target = self._use(hint)
                self.redirects += 1
                continue
            return response
        raise ServeClientError(
            f"{method} {path} failed after {attempts} attempts "
            f"(last: {last_error})"
        )

    # -- convenience ----------------------------------------------------------

    def get_json(
        self, path: str, endpoint: Optional[str] = None
    ) -> dict:
        response = self.request("GET", path, endpoint=endpoint)
        if not response.ok:
            raise ServeClientError(
                f"GET {path} -> {response.status}: {response.body}"
            )
        return response.body

    def post_json(
        self, path: str, body: Optional[dict] = None,
        endpoint: Optional[str] = None,
    ) -> ClientResponse:
        return self.request("POST", path, body=body, endpoint=endpoint)

    def ingest_attacks(
        self, records: List[dict], feed: str = "telescope"
    ) -> dict:
        response = self.request(
            "POST", f"/ingest/attacks?feed={feed}", body={"records": records}
        )
        if response.status not in (202, 400):
            raise ServeClientError(
                f"ingest -> {response.status}: {response.body}"
            )
        return response.body

    def ingest_dps(self, records: List[dict]) -> dict:
        response = self.request(
            "POST", "/ingest/dps", body={"records": records}
        )
        if response.status not in (202, 400):
            raise ServeClientError(
                f"ingest dps -> {response.status}: {response.body}"
            )
        return response.body

    def stats(self, endpoint: Optional[str] = None) -> dict:
        return self.get_json("/stats", endpoint=endpoint)

    def digest(self, endpoint: Optional[str] = None) -> dict:
        return self.get_json("/digest", endpoint=endpoint)

    def replication_status(self, endpoint: Optional[str] = None) -> dict:
        return self.get_json("/replication/status", endpoint=endpoint)

    def promote(self, endpoint: str) -> dict:
        response = self.post_json("/promote", endpoint=endpoint)
        if not response.ok:
            raise ServeClientError(
                f"promote -> {response.status}: {response.body}"
            )
        self._use(endpoint)
        return response.body

    def fence(
        self, endpoint: str, epoch: int, primary_url: Optional[str] = None
    ) -> ClientResponse:
        return self.post_json(
            "/replication/fence",
            body={"epoch": epoch, "primary_url": primary_url},
            endpoint=endpoint,
        )


__all__ = [
    "ClientResponse",
    "DEFAULT_RETRY",
    "ServeClient",
    "ServeClientError",
]
