"""Chaos drill for the live service: overload, slow consumer, kill -9.

The pipeline chaos drill (:mod:`repro.pipeline.chaos`) proves the batch
executor's failure envelope; this module proves the *service's*: the
three failure modes a long-running ingester actually meets in
production, each with a deterministic verdict.

* ``ingest-burst``  — batches arrive far faster than the applier drains;
  admission must shed (503 refusals and/or drop-oldest) instead of
  growing without bound, the accounting must close exactly
  (accepted = applied + dropped), and a restart from the data dir must
  land on the same state digest — load shedding may not cost recovery
  equivalence;
* ``slow-consumer`` — the applier is artificially slowed; the service
  must enter shed mode, keep answering (no blocked submit), and leave
  shed mode again once drained (watermark hysteresis, both directions);
* ``kill9-recover`` — a real ``python -m repro serve`` subprocess is
  SIGKILLed mid-ingest and restarted; the recovered process must report
  a state digest identical to the victim's last acknowledged state, in
  bounded time.

Verdicts reuse :class:`~repro.pipeline.chaos.ScenarioResult` so the CLI
renders both drills the same way.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import List, Optional, Tuple

from repro.log import get_logger
from repro.pipeline.chaos import ScenarioResult
from repro.serve.http import ENDPOINT_FILE
from repro.serve.service import LiveIngestService, ServeConfig
from repro.serve.wal import KIND_ATTACK

log = get_logger("serve.chaos")

EXPECT_SHED = "deterministic load shedding"
EXPECT_HYSTERESIS = "shed mode entered and left"
EXPECT_EQUIVALENT = "state-equivalent recovery"


def _event(i: int) -> dict:
    """Deterministic fixture event stream (strictly ordered)."""
    return {
        "source": "telescope",
        "target": (10 << 24) + (i % 4096),
        "start_ts": float(i),
        "end_ts": float(i) + 30.0,
        "intensity": 100.0 + (i % 17),
    }


def _restart_digest(data_dir: Path, config: ServeConfig) -> str:
    """State digest a fresh process recovers to from *data_dir*."""
    recovered = LiveIngestService(
        ServeConfig(
            data_dir=data_dir,
            max_events_per_victim=config.max_events_per_victim,
            baseline_days=config.baseline_days,
            alert_factor=config.alert_factor,
        )
    )
    recovered.start()
    try:
        return recovered.store.state_digest()
    finally:
        recovered.stop()


def run_ingest_burst(work_dir: Path, budget: float = 60.0) -> ScenarioResult:
    """Overload a tiny queue; shedding must be exact and recoverable."""
    started = time.monotonic()
    data_dir = work_dir / "burst"
    config = ServeConfig(
        data_dir=data_dir,
        queue_size=64,
        high_watermark=60,
        low_watermark=16,
        snapshot_every_events=50,
        apply_delay=0.002,
    )
    service = LiveIngestService(config)
    service.start()
    sent = accepted = refused = 0
    try:
        for batch_index in range(24):
            batch = [_event(batch_index * 48 + j) for j in range(48)]
            sent += len(batch)
            result = service.submit("telescope", KIND_ATTACK, batch)
            if result.refused:
                refused += len(batch)
            else:
                accepted += result.accepted
        if not service.quiesce(timeout=budget):
            return ScenarioResult(
                "ingest-burst", EXPECT_SHED, False,
                f"queue never drained (depth {service.queue.depth})",
                time.monotonic() - started,
            )
        dropped = sum(service.dropped_by_feed.values())
        applied = service.store.applied_events
        live_digest = service.store.state_digest()
        service.drain(timeout=budget)
    finally:
        service.stop()
    problems = []
    if refused == 0 and dropped == 0:
        problems.append("no shedding under 18x overcommit")
    if accepted != applied + dropped:
        problems.append(
            f"accounting leak: accepted {accepted} != "
            f"applied {applied} + dropped {dropped}"
        )
    recovered_digest = _restart_digest(data_dir, config)
    if recovered_digest != live_digest:
        problems.append("recovered digest differs from live digest")
    elapsed = time.monotonic() - started
    if problems:
        return ScenarioResult(
            "ingest-burst", EXPECT_SHED, False, "; ".join(problems), elapsed
        )
    return ScenarioResult(
        "ingest-burst", EXPECT_SHED, True,
        f"sent {sent}, accepted {accepted}, refused {refused}, "
        f"dropped {dropped}, applied {applied}; restart digest identical",
        elapsed,
    )


def run_slow_consumer(
    work_dir: Path, budget: float = 60.0
) -> ScenarioResult:
    """A slowed applier must trip shed mode, then recover via hysteresis."""
    started = time.monotonic()
    config = ServeConfig(
        data_dir=work_dir / "slow",
        queue_size=32,
        high_watermark=24,
        low_watermark=8,
        snapshot_every_events=500,
        apply_delay=0.01,
        heartbeat_timeout=0.2,
    )
    service = LiveIngestService(config)
    service.start()
    shed_seen = False
    slowest_submit = 0.0
    try:
        for i in range(40):
            batch = [_event(i * 8 + j) for j in range(8)]
            before = time.monotonic()
            service.submit("telescope", KIND_ATTACK, batch)
            slowest_submit = max(slowest_submit, time.monotonic() - before)
            if service.queue.shedding:
                shed_seen = True
        drained = service.quiesce(timeout=budget)
        shed_cleared = not service.queue.shedding
        post = service.submit("telescope", KIND_ATTACK, [_event(10_000)])
        service.drain(timeout=budget)
    finally:
        service.stop()
    problems = []
    if not shed_seen:
        problems.append("never entered shed mode")
    if not drained:
        problems.append("queue never drained")
    if not shed_cleared:
        problems.append("shed mode never cleared after drain")
    if not post.accepted:
        problems.append("submit refused after recovery")
    if slowest_submit > 1.0:
        problems.append(f"a submit blocked for {slowest_submit:.2f}s")
    elapsed = time.monotonic() - started
    if problems:
        return ScenarioResult(
            "slow-consumer", EXPECT_HYSTERESIS, False,
            "; ".join(problems), elapsed,
        )
    return ScenarioResult(
        "slow-consumer", EXPECT_HYSTERESIS, True,
        f"shed mode entered and left; slowest submit {slowest_submit*1000:.0f}ms",
        elapsed,
    )


# -- kill -9 against a real subprocess ----------------------------------------


def wait_for_endpoint(
    data_dir: Path, timeout: float = 20.0
) -> Tuple[str, int]:
    """Block until the service wrote its endpoint file and answers."""
    path = data_dir / ENDPOINT_FILE
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if path.exists():
            try:
                info = json.loads(path.read_text(encoding="utf-8"))
                _get_json(info["host"], info["port"], "/healthz")
                return info["host"], info["port"]
            except (ValueError, KeyError, OSError):
                pass
        time.sleep(0.05)
    raise TimeoutError(f"service at {data_dir} never became ready")


def _get_json(host: str, port: int, path: str) -> dict:
    with urllib.request.urlopen(
        f"http://{host}:{port}{path}", timeout=10
    ) as response:
        return json.loads(response.read())


def _post_json(host: str, port: int, path: str, body) -> Tuple[int, dict]:
    request = urllib.request.Request(
        f"http://{host}:{port}{path}",
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _spawn_serve(data_dir: Path, extra: Tuple[str, ...] = ()) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--data-dir", str(data_dir),
            "--port", "0",
            "--snapshot-every", "20",
        ]
        + list(extra),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _await_applied(host: str, port: int, budget: float) -> dict:
    """Poll /stats until the applier caught up with intake."""
    deadline = time.monotonic() + budget
    while True:
        stats = _get_json(host, port, "/stats")
        if stats["applied_seq"] >= stats["seq"] and stats["queue_depth"] == 0:
            return stats
        if time.monotonic() >= deadline:
            raise TimeoutError("applier never caught up with intake")
        time.sleep(0.05)


def run_kill9_recover(
    work_dir: Path,
    budget: float = 120.0,
    # Not a multiple of the snapshot cadence, so recovery must exercise
    # WAL replay, not just the snapshot load.
    events: int = 130,
    recovery_budget: float = 30.0,
) -> ScenarioResult:
    """SIGKILL a live serve process mid-ingest; the restart must match."""
    started = time.monotonic()
    data_dir = work_dir / "kill9"
    victim = _spawn_serve(data_dir)
    restarted: Optional[subprocess.Popen] = None
    try:
        host, port = wait_for_endpoint(data_dir)
        for base in range(0, events, 30):
            batch = [_event(base + j) for j in range(min(30, events - base))]
            status, _body = _post_json(
                host, port, "/ingest/attacks?feed=telescope", batch
            )
            if status not in (202,):
                return ScenarioResult(
                    "kill9-recover", EXPECT_EQUIVALENT, False,
                    f"ingest answered {status}", time.monotonic() - started,
                )
        _await_applied(host, port, budget / 2)
        before = _get_json(host, port, "/digest")
        os.kill(victim.pid, signal.SIGKILL)
        victim.wait(timeout=10)
        # The endpoint file still names the dead process; remove it so
        # readiness below cannot race against the stale port.
        (data_dir / ENDPOINT_FILE).unlink()
        restart_begin = time.monotonic()
        restarted = _spawn_serve(data_dir)
        host, port = wait_for_endpoint(data_dir)
        recovery_elapsed = time.monotonic() - restart_begin
        after = _get_json(host, port, "/digest")
        stats = _get_json(host, port, "/stats")
        problems = []
        if after["digest"] != before["digest"]:
            problems.append(
                "digest mismatch after kill -9 "
                f"({before['digest'][:12]} != {after['digest'][:12]})"
            )
        if recovery_elapsed > recovery_budget:
            problems.append(
                f"recovery took {recovery_elapsed:.1f}s "
                f"(budget {recovery_budget:.0f}s)"
            )
        elapsed = time.monotonic() - started
        if problems:
            return ScenarioResult(
                "kill9-recover", EXPECT_EQUIVALENT, False,
                "; ".join(problems), elapsed,
            )
        recovery = stats["recovery"]
        return ScenarioResult(
            "kill9-recover", EXPECT_EQUIVALENT, True,
            f"digest identical after SIGKILL; snapshot seq "
            f"{recovery['snapshot_seq']}, replayed {recovery['replayed']}, "
            f"ready again in {recovery_elapsed:.1f}s",
            elapsed,
        )
    except (TimeoutError, OSError, subprocess.SubprocessError) as exc:
        return ScenarioResult(
            "kill9-recover", EXPECT_EQUIVALENT, False,
            f"{type(exc).__name__}: {exc}", time.monotonic() - started,
        )
    finally:
        for proc in (victim, restarted):
            if proc is not None and proc.poll() is None:
                proc.terminate()
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()


def run_serve_chaos_drill(
    work_dir: Path, quick: bool = False, scenario_budget: float = 120.0
) -> List[ScenarioResult]:
    """All serve scenarios; ``quick`` drops the slow-consumer soak."""
    work_dir = Path(work_dir)
    work_dir.mkdir(parents=True, exist_ok=True)
    results = [run_ingest_burst(work_dir, budget=scenario_budget)]
    if not quick:
        results.append(run_slow_consumer(work_dir, budget=scenario_budget))
    results.append(
        run_kill9_recover(work_dir, budget=scenario_budget)
    )
    for result in results:
        log.info(
            "serve chaos scenario finished",
            scenario=result.name,
            passed=result.passed,
            detail=result.detail,
        )
    return results


__all__ = [
    "EXPECT_EQUIVALENT",
    "EXPECT_HYSTERESIS",
    "EXPECT_SHED",
    "run_ingest_burst",
    "run_kill9_recover",
    "run_serve_chaos_drill",
    "run_slow_consumer",
    "wait_for_endpoint",
]
