"""Chaos drill for the live service: overload, slow consumer, kill -9.

The pipeline chaos drill (:mod:`repro.pipeline.chaos`) proves the batch
executor's failure envelope; this module proves the *service's*: the
three failure modes a long-running ingester actually meets in
production, each with a deterministic verdict.

* ``ingest-burst``  — batches arrive far faster than the applier drains;
  admission must shed (503 refusals and/or drop-oldest) instead of
  growing without bound, the accounting must close exactly
  (accepted = applied + dropped), and a restart from the data dir must
  land on the same state digest — load shedding may not cost recovery
  equivalence;
* ``slow-consumer`` — the applier is artificially slowed; the service
  must enter shed mode, keep answering (no blocked submit), and leave
  shed mode again once drained (watermark hysteresis, both directions);
* ``kill9-recover`` — a real ``python -m repro serve`` subprocess is
  SIGKILLed mid-ingest and restarted; the recovered process must report
  a state digest identical to the victim's last acknowledged state, in
  bounded time;
* ``cluster-failover`` (``chaos --serve-cluster``) — a primary with two
  ``--replica-of`` followers under synchronous-ack ingest is SIGKILLed
  mid-burst; the drill promotes the most-caught-up follower and proves
  **zero acked loss** (the promoted node's replication cursor covers
  every acknowledged sequence), **digest equivalence** (its state digest
  equals a truncated offline replay of the dead primary's own WAL — the
  oracle for "what the acked stream fuses to"), and **epoch fencing**
  (the restarted old primary is fenced by the new epoch, refuses writes
  with a 409 pointing at its successor, and refuses a *stale* fence).

All HTTP in this module goes through
:class:`~repro.serve.client.ServeClient` — the same Retry-After/failover
behavior operators get, not bespoke drill plumbing. Verdicts reuse
:class:`~repro.pipeline.chaos.ScenarioResult` so the CLI renders both
drills the same way.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import List, Optional, Tuple

from repro.log import get_logger
from repro.pipeline.chaos import ScenarioResult
from repro.pipeline.runner import RetryPolicy
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.http import ENDPOINT_FILE
from repro.serve.service import LiveIngestService, ServeConfig, WAL_DIR
from repro.serve.state import LiveFusedStore
from repro.serve.wal import KIND_ATTACK, WriteAheadLog

log = get_logger("serve.chaos")

EXPECT_SHED = "deterministic load shedding"
EXPECT_HYSTERESIS = "shed mode entered and left"
EXPECT_EQUIVALENT = "state-equivalent recovery"
EXPECT_FAILOVER = "zero acked loss + fenced old primary"

#: Client retry schedule for drills: bounded and fast, seeded jitter so
#: a failing drill replays the same timing.
_DRILL_RETRY = RetryPolicy(
    max_attempts=4,
    backoff_base=0.05,
    backoff_max=0.5,
    jitter=True,
    jitter_seed=7,
)


def _event(i: int) -> dict:
    """Deterministic fixture event stream (strictly ordered)."""
    return {
        "source": "telescope",
        "target": (10 << 24) + (i % 4096),
        "start_ts": float(i),
        "end_ts": float(i) + 30.0,
        "intensity": 100.0 + (i % 17),
    }


def _restart_digest(data_dir: Path, config: ServeConfig) -> str:
    """State digest a fresh process recovers to from *data_dir*."""
    recovered = LiveIngestService(
        ServeConfig(
            data_dir=data_dir,
            max_events_per_victim=config.max_events_per_victim,
            baseline_days=config.baseline_days,
            alert_factor=config.alert_factor,
        )
    )
    recovered.start()
    try:
        return recovered.store.state_digest()
    finally:
        recovered.stop()


def run_ingest_burst(work_dir: Path, budget: float = 60.0) -> ScenarioResult:
    """Overload a tiny queue; shedding must be exact and recoverable."""
    started = time.monotonic()
    data_dir = work_dir / "burst"
    config = ServeConfig(
        data_dir=data_dir,
        queue_size=64,
        high_watermark=60,
        low_watermark=16,
        snapshot_every_events=50,
        apply_delay=0.002,
    )
    service = LiveIngestService(config)
    service.start()
    sent = accepted = refused = 0
    try:
        for batch_index in range(24):
            batch = [_event(batch_index * 48 + j) for j in range(48)]
            sent += len(batch)
            result = service.submit("telescope", KIND_ATTACK, batch)
            if result.refused:
                refused += len(batch)
            else:
                accepted += result.accepted
        if not service.quiesce(timeout=budget):
            return ScenarioResult(
                "ingest-burst", EXPECT_SHED, False,
                f"queue never drained (depth {service.queue.depth})",
                time.monotonic() - started,
            )
        dropped = sum(service.dropped_by_feed.values())
        applied = service.store.applied_events
        live_digest = service.store.state_digest()
        service.drain(timeout=budget)
    finally:
        service.stop()
    problems = []
    if refused == 0 and dropped == 0:
        problems.append("no shedding under 18x overcommit")
    if accepted != applied + dropped:
        problems.append(
            f"accounting leak: accepted {accepted} != "
            f"applied {applied} + dropped {dropped}"
        )
    recovered_digest = _restart_digest(data_dir, config)
    if recovered_digest != live_digest:
        problems.append("recovered digest differs from live digest")
    elapsed = time.monotonic() - started
    if problems:
        return ScenarioResult(
            "ingest-burst", EXPECT_SHED, False, "; ".join(problems), elapsed
        )
    return ScenarioResult(
        "ingest-burst", EXPECT_SHED, True,
        f"sent {sent}, accepted {accepted}, refused {refused}, "
        f"dropped {dropped}, applied {applied}; restart digest identical",
        elapsed,
    )


def run_slow_consumer(
    work_dir: Path, budget: float = 60.0
) -> ScenarioResult:
    """A slowed applier must trip shed mode, then recover via hysteresis."""
    started = time.monotonic()
    config = ServeConfig(
        data_dir=work_dir / "slow",
        queue_size=32,
        high_watermark=24,
        low_watermark=8,
        snapshot_every_events=500,
        apply_delay=0.01,
        heartbeat_timeout=0.2,
    )
    service = LiveIngestService(config)
    service.start()
    shed_seen = False
    slowest_submit = 0.0
    try:
        for i in range(40):
            batch = [_event(i * 8 + j) for j in range(8)]
            before = time.monotonic()
            service.submit("telescope", KIND_ATTACK, batch)
            slowest_submit = max(slowest_submit, time.monotonic() - before)
            if service.queue.shedding:
                shed_seen = True
        drained = service.quiesce(timeout=budget)
        shed_cleared = not service.queue.shedding
        post = service.submit("telescope", KIND_ATTACK, [_event(10_000)])
        service.drain(timeout=budget)
    finally:
        service.stop()
    problems = []
    if not shed_seen:
        problems.append("never entered shed mode")
    if not drained:
        problems.append("queue never drained")
    if not shed_cleared:
        problems.append("shed mode never cleared after drain")
    if not post.accepted:
        problems.append("submit refused after recovery")
    if slowest_submit > 1.0:
        problems.append(f"a submit blocked for {slowest_submit:.2f}s")
    elapsed = time.monotonic() - started
    if problems:
        return ScenarioResult(
            "slow-consumer", EXPECT_HYSTERESIS, False,
            "; ".join(problems), elapsed,
        )
    return ScenarioResult(
        "slow-consumer", EXPECT_HYSTERESIS, True,
        f"shed mode entered and left; slowest submit {slowest_submit*1000:.0f}ms",
        elapsed,
    )


# -- kill -9 against a real subprocess ----------------------------------------


def wait_for_endpoint(
    data_dir: Path, timeout: float = 20.0
) -> Tuple[str, int]:
    """Block until the service wrote its endpoint file and answers."""
    path = data_dir / ENDPOINT_FILE
    deadline = time.monotonic() + timeout
    probe = RetryPolicy(max_attempts=1)
    while time.monotonic() < deadline:
        if path.exists():
            try:
                info = json.loads(path.read_text(encoding="utf-8"))
                url = f"http://{info['host']}:{info['port']}"
                ServeClient([url], retry=probe, timeout=5.0).get_json(
                    "/healthz"
                )
                return info["host"], info["port"]
            except (ValueError, KeyError, OSError, ServeClientError):
                pass
        time.sleep(0.05)
    raise TimeoutError(f"service at {data_dir} never became ready")


def _node_url(data_dir: Path, timeout: float = 20.0) -> str:
    host, port = wait_for_endpoint(data_dir, timeout=timeout)
    return f"http://{host}:{port}"


def _client(*urls: str, trace_prefix: str = "client") -> ServeClient:
    return ServeClient(
        list(urls), retry=_DRILL_RETRY, timeout=10.0,
        trace_prefix=trace_prefix,
    )


def _spawn_serve(data_dir: Path, extra: Tuple[str, ...] = ()) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--data-dir", str(data_dir),
            "--port", "0",
            "--snapshot-every", "20",
        ]
        + list(extra),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _await_applied(client: ServeClient, url: str, budget: float) -> dict:
    """Poll /stats until the applier caught up with intake."""
    deadline = time.monotonic() + budget
    while True:
        stats = client.stats(endpoint=url)
        if stats["applied_seq"] >= stats["seq"] and stats["queue_depth"] == 0:
            return stats
        if time.monotonic() >= deadline:
            raise TimeoutError("applier never caught up with intake")
        time.sleep(0.05)


def run_kill9_recover(
    work_dir: Path,
    budget: float = 120.0,
    # Not a multiple of the snapshot cadence, so recovery must exercise
    # WAL replay, not just the snapshot load.
    events: int = 130,
    recovery_budget: float = 30.0,
) -> ScenarioResult:
    """SIGKILL a live serve process mid-ingest; the restart must match."""
    started = time.monotonic()
    data_dir = work_dir / "kill9"
    victim = _spawn_serve(data_dir)
    restarted: Optional[subprocess.Popen] = None
    try:
        url = _node_url(data_dir)
        client = _client(url)
        for base in range(0, events, 30):
            batch = [_event(base + j) for j in range(min(30, events - base))]
            response = client.post_json(
                "/ingest/attacks?feed=telescope", {"records": batch},
                endpoint=url,
            )
            if response.status != 202:
                return ScenarioResult(
                    "kill9-recover", EXPECT_EQUIVALENT, False,
                    f"ingest answered {response.status}",
                    time.monotonic() - started,
                )
        _await_applied(client, url, budget / 2)
        before = client.digest(endpoint=url)
        os.kill(victim.pid, signal.SIGKILL)
        victim.wait(timeout=10)
        # The endpoint file still names the dead process; remove it so
        # readiness below cannot race against the stale port.
        (data_dir / ENDPOINT_FILE).unlink()
        restart_begin = time.monotonic()
        restarted = _spawn_serve(data_dir)
        url = _node_url(data_dir)
        recovery_elapsed = time.monotonic() - restart_begin
        client = _client(url)
        after = client.digest(endpoint=url)
        stats = client.stats(endpoint=url)
        problems = []
        if after["digest"] != before["digest"]:
            problems.append(
                "digest mismatch after kill -9 "
                f"({before['digest'][:12]} != {after['digest'][:12]})"
            )
        if recovery_elapsed > recovery_budget:
            problems.append(
                f"recovery took {recovery_elapsed:.1f}s "
                f"(budget {recovery_budget:.0f}s)"
            )
        elapsed = time.monotonic() - started
        if problems:
            return ScenarioResult(
                "kill9-recover", EXPECT_EQUIVALENT, False,
                "; ".join(problems), elapsed,
            )
        recovery = stats["recovery"]
        return ScenarioResult(
            "kill9-recover", EXPECT_EQUIVALENT, True,
            f"digest identical after SIGKILL; snapshot seq "
            f"{recovery['snapshot_seq']}, replayed {recovery['replayed']}, "
            f"ready again in {recovery_elapsed:.1f}s",
            elapsed,
        )
    except (TimeoutError, OSError, subprocess.SubprocessError) as exc:
        return ScenarioResult(
            "kill9-recover", EXPECT_EQUIVALENT, False,
            f"{type(exc).__name__}: {exc}", time.monotonic() - started,
        )
    finally:
        for proc in (victim, restarted):
            if proc is not None and proc.poll() is None:
                proc.terminate()
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()


# -- cluster failover ----------------------------------------------------------


def _oracle_digest(primary_dir: Path, upto_seq: int) -> str:
    """Digest of a clean, truncated replay of the dead primary's WAL.

    The ground truth for failover: the state the acked stream fuses to
    at ``upto_seq``, computed offline from the victim's intact data dir
    with the same deterministic apply the live nodes use (including the
    whole-log shed set — a tombstone past the cut still sheds records
    under it). A promoted follower that matches this digest provably
    holds the primary's acknowledged history, not an approximation.
    """
    wal = WriteAheadLog(primary_dir / WAL_DIR)
    records, _report = wal.replay(after_seq=0, upto_seq=upto_seq)
    store = LiveFusedStore(
        baseline_days=7, alert_factor=3.0, max_events_per_victim=256
    )
    for record in records:
        try:
            if record.kind == KIND_ATTACK:
                store.apply_attack(record.record)
            else:
                store.apply_dps(record.record)
        except ValueError:
            # Deterministic apply rejection: the live nodes skipped this
            # record identically.
            continue
    return store.state_digest()


def _merge_cluster_trace(work_dir: Path, node_dirs: List[Path]) -> List[str]:
    """Merge per-node ``trace.jsonl`` files; return cross-node trace IDs.

    Reads the flight-recorder spans each surviving node exported at
    graceful shutdown, writes the union to ``cluster-trace.jsonl``, and
    returns the burst-client trace IDs whose spans were recorded on two
    or more distinct nodes — the end-to-end propagation proof: the ID a
    client attached at ingress came back out of another node's WAL
    apply path.
    """
    spans: List[dict] = []
    for node_dir in node_dirs:
        path = node_dir / "trace.jsonl"
        if not path.exists():
            continue
        for line in path.read_text(encoding="utf-8").splitlines():
            if line:
                try:
                    spans.append(json.loads(line))
                except ValueError:
                    continue
    (work_dir / "cluster-trace.jsonl").write_text(
        "".join(
            json.dumps(span, sort_keys=True) + "\n" for span in spans
        ),
        encoding="utf-8",
    )
    nodes_by_trace: dict = {}
    for span in spans:
        attrs = span.get("attrs") or {}
        trace_id = attrs.get("trace_id")
        node = attrs.get("node")
        if isinstance(trace_id, str) and trace_id.startswith("burst-") and node:
            nodes_by_trace.setdefault(trace_id, set()).add(node)
    return sorted(
        trace_id
        for trace_id, nodes in nodes_by_trace.items()
        if len(nodes) >= 2
    )


def _settled_committed(client: ServeClient, url: str, budget: float) -> int:
    """A follower's committed seq once it stops advancing (primary dead)."""
    deadline = time.monotonic() + budget
    last = -1
    while time.monotonic() < deadline:
        rep = client.stats(endpoint=url).get("replication") or {}
        committed = int(rep.get("committed_seq") or 0)
        if committed == last:
            return committed
        last = committed
        time.sleep(0.2)
    return max(0, last)


def run_cluster_failover(
    work_dir: Path, quick: bool = False, scenario_budget: float = 240.0
) -> ScenarioResult:
    """Kill -9 the primary mid-burst; promote; verify loss, digest, fence."""
    started = time.monotonic()
    work_dir = Path(work_dir)
    work_dir.mkdir(parents=True, exist_ok=True)
    primary_dir = work_dir / "cluster-primary"
    follower_dirs = [work_dir / "cluster-f1", work_dir / "cluster-f2"]
    batches = 8 if quick else 24
    batch_size = 25
    # The primary never snapshots: its WAL then spans the whole run from
    # sequence one, which is what makes the offline oracle replay — and
    # the restarted old primary's recovery — cover everything. Sync-ack
    # with one replica means every 202 is committed on a follower before
    # the client hears it: the invariant the kill tries to break.
    primary_flags = (
        "--snapshot-every", "100000", "--snapshot-interval", "100000",
        "--sync-replicas", "1", "--sync-timeout", "20",
        "--retry-after", "0.2",
    )
    procs: List[subprocess.Popen] = []
    try:
        primary_proc = _spawn_serve(primary_dir, primary_flags)
        procs.append(primary_proc)
        primary_url = _node_url(primary_dir)
        follower_procs: List[subprocess.Popen] = []
        for index, follower_dir in enumerate(follower_dirs):
            # --metrics arms the flight recorder: a graceful exit leaves
            # trace.jsonl (with WAL-propagated client trace IDs) and
            # metrics artifacts in each follower's data dir.
            follower_procs.append(
                _spawn_serve(
                    follower_dir,
                    (
                        "--replica-of", primary_url,
                        "--follower-id", f"f{index + 1}",
                        "--poll-interval", "0.05",
                        "--snapshot-every", "100000",
                        "--snapshot-interval", "100000",
                        "--metrics",
                    ),
                )
            )
        procs.extend(follower_procs)
        follower_urls = [_node_url(d) for d in follower_dirs]
        client = _client(primary_url, *follower_urls)
        # Both followers must be registered before the burst, or the
        # first sync-ack batch eats the whole sync timeout.
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            status = client.replication_status(endpoint=primary_url)
            if len(status.get("followers") or {}) >= len(follower_urls):
                break
            time.sleep(0.1)
        else:
            raise TimeoutError("followers never registered with the primary")

        # Burst from a separate thread, kill -9 mid-flight.
        burst_state = {"acked": 0, "sent": 0, "refused_after_kill": False}

        def _burst() -> None:
            # Distinct trace prefix: the cross-node evidence below must
            # match *this* client's writes, not drill bookkeeping polls.
            sender = _client(primary_url, trace_prefix="burst")
            for batch_index in range(batches):
                batch = [
                    _event(batch_index * batch_size + j)
                    for j in range(batch_size)
                ]
                burst_state["sent"] += len(batch)
                try:
                    response = sender.post_json(
                        "/ingest/attacks?feed=telescope",
                        {"records": batch},
                        endpoint=primary_url,
                    )
                except ServeClientError:
                    # The primary is dead: nothing past this point was
                    # acknowledged, so nothing past this point is owed.
                    burst_state["refused_after_kill"] = True
                    return
                if response.status == 202:
                    burst_state["acked"] = max(
                        burst_state["acked"],
                        int(response.body.get("last_seq") or 0),
                    )

        burst = threading.Thread(target=_burst, name="cluster-burst")
        burst.start()
        kill_threshold = (batches * batch_size) // 3
        while burst.is_alive() and burst_state["acked"] < kill_threshold:
            time.sleep(0.02)
        os.kill(primary_proc.pid, signal.SIGKILL)
        primary_proc.wait(timeout=10)
        burst.join(timeout=scenario_budget / 3)
        acked = burst_state["acked"]

        # Promote the most-caught-up follower (highest settled cursor).
        committed_by_url = {
            url: _settled_committed(client, url, budget=20.0)
            for url in follower_urls
        }
        promoted_url = max(committed_by_url, key=committed_by_url.get)
        standby_url = next(u for u in follower_urls if u != promoted_url)
        if quick:
            client.promote(promoted_url)
        else:
            # Full drill exercises the operator path, not just the API.
            completed = subprocess.run(
                [
                    sys.executable, "-m", "repro", "serve-promote",
                    "--url", promoted_url,
                ],
                capture_output=True, text=True, timeout=60,
            )
            if completed.returncode != 0:
                raise RuntimeError(
                    f"serve-promote failed: {completed.stderr.strip()}"
                )
        health = client.get_json("/healthz", endpoint=promoted_url)
        new_epoch = int(health["epoch"])

        problems: List[str] = []
        if health["role"] != "primary":
            problems.append(f"promoted node's role is {health['role']!r}")
        promoted_stats = client.stats(endpoint=promoted_url)
        promoted_committed = int(
            (promoted_stats.get("replication") or {}).get("committed_seq")
            or 0
        )
        if promoted_committed < acked:
            problems.append(
                f"acked records lost: cursor {promoted_committed} "
                f"< acked {acked}"
            )
        # Digest equivalence against the truncated oracle — checked
        # before any post-failover write can move the promoted state.
        promoted_digest = client.digest(endpoint=promoted_url)
        oracle = _oracle_digest(
            primary_dir, int(promoted_digest["applied_seq"])
        )
        if promoted_digest["digest"] != oracle:
            problems.append(
                "promoted digest diverges from the primary's WAL replay "
                f"({promoted_digest['digest'][:12]} != {oracle[:12]})"
            )
        standby_digest = client.digest(endpoint=standby_url)
        standby_oracle = _oracle_digest(
            primary_dir, int(standby_digest["applied_seq"])
        )
        if standby_digest["digest"] != standby_oracle:
            problems.append("standby follower digest diverges from oracle")
        # The new primary takes writes.
        post = client.post_json(
            "/ingest/attacks?feed=telescope",
            {"records": [_event(batches * batch_size + 1)]},
            endpoint=promoted_url,
        )
        if post.status != 202:
            problems.append(
                f"promoted node refused a write ({post.status})"
            )
        # Resurrect the old primary and fence it: it must refuse writes
        # (pointing at its successor) and refuse a stale-epoch fence.
        (primary_dir / ENDPOINT_FILE).unlink()
        procs.append(_spawn_serve(primary_dir, primary_flags))
        old_url = _node_url(primary_dir)
        fence = client.fence(old_url, new_epoch, primary_url=promoted_url)
        if fence.status != 200:
            problems.append(f"fence answered {fence.status}")
        stale = client.fence(old_url, 1, primary_url=promoted_url)
        if stale.status != 409:
            problems.append(
                f"stale-epoch fence was not refused ({stale.status})"
            )
        fenced_write = client.post_json(
            "/ingest/attacks?feed=telescope",
            {"records": [_event(0)]},
            endpoint=old_url,
        )
        if fenced_write.status != 409:
            problems.append(
                f"fenced primary accepted a write ({fenced_write.status})"
            )
        elif fenced_write.body.get("primary_url") != promoted_url:
            problems.append("fenced 409 does not hint the new primary")
        # Flight-recorder evidence, gathered over HTTP while the
        # followers still serve: one /status document and the rolling
        # metrics history from the new primary.
        promoted_status = client.get_json("/status", endpoint=promoted_url)
        (work_dir / "promoted-status.json").write_text(
            json.dumps(promoted_status, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        history = client.get_json(
            "/metrics/history?last=5", endpoint=promoted_url
        )
        if not history.get("window_count"):
            problems.append("/metrics/history returned no windows")
        lag_gauges = {}
        windows = history.get("windows") or [{}]
        for key, value in (windows[-1].get("gauges") or {}).items():
            if key.startswith("serve_replication_lag"):
                lag_gauges[key] = value
        # Graceful follower shutdown *before* reading artifacts: the
        # flight recorder flushes trace.jsonl and metrics on SIGTERM.
        for proc in follower_procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in follower_procs:
            if proc.poll() is None:
                proc.wait(timeout=30)
        cross_node = _merge_cluster_trace(work_dir, follower_dirs)
        if not cross_node:
            problems.append(
                "no burst trace ID appears in spans on two distinct nodes"
            )
        # Leave a machine-readable verdict where CI can pick it up.
        verdict = {
            "acked_last_seq": acked,
            "sent_records": burst_state["sent"],
            "promoted_url": promoted_url,
            "promoted_committed_seq": promoted_committed,
            "promoted_applied_seq": int(promoted_digest["applied_seq"]),
            "promoted_digest": promoted_digest["digest"],
            "oracle_digest": oracle,
            "new_epoch": new_epoch,
            "history_windows": int(history.get("window_count") or 0),
            "replication_lag_gauges": lag_gauges,
            "follower_lag": promoted_status.get("followers", {}),
            "requests_seen": promoted_status.get("requests", {}).get(
                "total", 0
            ),
            "cross_node_traces": cross_node[:5],
            "problems": problems,
        }
        (work_dir / "cluster-failover-verdict.json").write_text(
            json.dumps(verdict, indent=2) + "\n", encoding="utf-8"
        )
        elapsed = time.monotonic() - started
        if problems:
            return ScenarioResult(
                "cluster-failover", EXPECT_FAILOVER, False,
                "; ".join(problems), elapsed,
            )
        return ScenarioResult(
            "cluster-failover", EXPECT_FAILOVER, True,
            f"acked {acked} seqs; promoted follower cursor "
            f"{promoted_committed} covers them; digest == WAL-replay "
            f"oracle at seq {promoted_digest['applied_seq']}; old primary "
            f"fenced at epoch {new_epoch}, stale fence refused; "
            f"{len(cross_node)} trace IDs span two nodes, "
            f"{verdict['history_windows']} history windows",
            elapsed,
        )
    except (
        TimeoutError, OSError, RuntimeError,
        ServeClientError, subprocess.SubprocessError,
    ) as exc:
        return ScenarioResult(
            "cluster-failover", EXPECT_FAILOVER, False,
            f"{type(exc).__name__}: {exc}", time.monotonic() - started,
        )
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()


def run_serve_chaos_drill(
    work_dir: Path, quick: bool = False, scenario_budget: float = 120.0
) -> List[ScenarioResult]:
    """All serve scenarios; ``quick`` drops the slow-consumer soak."""
    work_dir = Path(work_dir)
    work_dir.mkdir(parents=True, exist_ok=True)
    results = [run_ingest_burst(work_dir, budget=scenario_budget)]
    if not quick:
        results.append(run_slow_consumer(work_dir, budget=scenario_budget))
    results.append(
        run_kill9_recover(work_dir, budget=scenario_budget)
    )
    for result in results:
        log.info(
            "serve chaos scenario finished",
            scenario=result.name,
            passed=result.passed,
            detail=result.detail,
        )
    return results


__all__ = [
    "EXPECT_EQUIVALENT",
    "EXPECT_FAILOVER",
    "EXPECT_HYSTERESIS",
    "EXPECT_SHED",
    "run_cluster_failover",
    "run_ingest_burst",
    "run_kill9_recover",
    "run_serve_chaos_drill",
    "run_slow_consumer",
    "wait_for_endpoint",
]
