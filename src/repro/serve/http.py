"""The query and ingest API over :class:`LiveIngestService` (stdlib HTTP).

Endpoints::

    GET  /healthz                     liveness + drain flag
    GET  /summary                     live Table-1-style aggregates
    GET  /attacks?ip=A.B.C.D          recent events against one victim
    GET  /attacks?prefix=A.B.C.0/24   ... against any victim in a /24 or /16
    GET  /victims?prefix=A.B.C.0/24   victim IPs seen in a prefix
    GET  /domains?domain=example.com  latest DPS status for one domain
    GET  /domains                     DPS coverage counts
    GET  /stats                       operational stats (queue, shed, recovery)
    GET  /digest                      state digest (the equivalence oracle)
    GET  /metrics                     Prometheus text exposition
    GET  /metrics/history[?last=N]    rolling flight-recorder windows
    GET  /status                      one-document topology + health snapshot
    POST /ingest/attacks?feed=F       ingest attack events (202 / 503 / 409)
    POST /ingest/dps                  ingest DPS status records (202 / 503 / 409)

Replication (cluster wiring; see :mod:`repro.serve.replication`)::

    GET  /replication/status          shipping state + stable frontier
                                      (?follower=ID&committed=N piggybacks
                                      the follower's cursor for sync acks)
    GET  /replication/segment?first=N&offset=M[&limit=K]
                                      raw WAL segment bytes (octet-stream,
                                      X-Repro-Epoch / X-Repro-Role headers)
    GET  /replication/snapshot        newest snapshot payload (bootstrap)
    POST /promote                     follower takes over as primary
    POST /replication/fence           {"epoch": E, "primary_url": U} — step
                                      down before a newer epoch (409: stale)

Ingest bodies are JSON: either a bare array of records or
``{"records": [...]}``. A refused batch answers **503** with a
``Retry-After`` header — the admission queue is above its high
watermark, a feed's circuit breaker is open, or the service is draining
— and the client is expected to back off and resend; nothing refused was
logged, so nothing refused is owed durability. A write sent to a replica
or fenced node answers **409** with ``primary_url`` naming where writes
go — read-only enforcement, not backpressure, so retrying here is
pointless and redirecting is right.

Every request carries a trace ID: an incoming ``X-Repro-Trace-Id``
header is honored (so a client's ID follows its write into the WAL and
across replication), otherwise the node mints one. The ID is echoed in
the response header, recorded in the service's bounded request log
(with a slow-request capture ring), timed into the
``serve_http_request_seconds`` histogram, and — when tracing is on —
attached to a ``serve.http`` span.

The server is a ``ThreadingHTTPServer``: handler threads only validate
and append (WAL + queue), the single applier thread owns all state
mutation, and reads hit indexes guarded by the GIL plus the store's
atomic-append discipline. ``run_service`` is the process entrypoint the
CLI uses: it binds, writes ``endpoint.json`` (host, port, pid) into the
data dir so drills and tests can discover an ephemeral port, installs
SIGTERM/SIGINT handlers that drain gracefully, and exits 0.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.log import get_logger
from repro.net.addressing import parse_ipv4
from repro.obs.timeseries import HISTORY_FILE
from repro.serve.replication import write_json_atomic
from repro.serve.service import (
    ATTACK_FEEDS,
    FEED_DPS,
    LiveIngestService,
    ServeConfig,
)
from repro.serve.wal import KIND_ATTACK, KIND_DPS

log = get_logger("serve.http")

#: File the running service writes its bound address into (discovery for
#: drills and tests that start the service on an ephemeral port).
ENDPOINT_FILE = "endpoint.json"

MAX_BODY_BYTES = 8 * 1024 * 1024


def _parse_prefix(text: str) -> Tuple[int, int]:
    """``A.B.C.0/24`` -> (base address, length); /24 and /16 only."""
    if "/" not in text:
        raise ValueError("prefix must look like A.B.C.0/24")
    base_text, _, length_text = text.partition("/")
    length = int(length_text)
    if length not in (24, 16):
        raise ValueError("prefix queries support /24 and /16 only")
    return parse_ipv4(base_text), length


class ServeRequestHandler(BaseHTTPRequestHandler):
    """Routes requests to the service; JSON in, JSON out."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> LiveIngestService:
        return self.server.service  # type: ignore[attr-defined]

    # -- plumbing -------------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        log.debug("http", request=format % args)

    def send_response(self, code: int, message: Optional[str] = None) -> None:
        # First (and only) place every handler passes through on its way
        # out: remember the status for the request log and echo the
        # trace ID so callers can correlate their request with spans.
        self._status_code = code
        super().send_response(code, message)
        trace_id = getattr(self, "_trace_id", None)
        if trace_id:
            self.send_header("X-Repro-Trace-Id", trace_id)

    def _instrumented(self, method: str, route) -> None:
        """Wrap one request in trace/span/request-log/latency plumbing."""
        service = self.service
        endpoint = urlparse(self.path).path
        incoming = self.headers.get("X-Repro-Trace-Id")
        self._trace_id = incoming if incoming else service.mint_trace_id()
        self._status_code = 0
        started = service._clock()
        with service.tracer.span(
            "serve.http",
            trace_id=self._trace_id,
            endpoint=endpoint,
            method=method,
            node=service.node_name,
            role=service.cluster.role,
            epoch=service.cluster.epoch,
        ) as span:
            route()
            span.set_attr(status=self._status_code)
        duration_s = service._clock() - started
        service.requests.record(
            self._trace_id,
            endpoint,
            method,
            self._status_code,
            duration_s,
            node=service.node_name,
            role=service.cluster.role,
        )
        self.server.request_seconds.observe(  # type: ignore[attr-defined]
            duration_s,
            endpoint=endpoint,
            method=method,
            status=str(self._status_code),
        )

    def _send_json(
        self,
        status: int,
        body: dict,
        retry_after: Optional[float] = None,
        close: bool = False,
    ) -> None:
        payload = json.dumps(body, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        if retry_after is not None:
            self.send_header("Retry-After", f"{retry_after:g}")
        if close:
            # Used when the request body was left unread: on a
            # keep-alive connection those bytes would otherwise be
            # parsed as the next request.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(payload)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        payload = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_bytes(self, payload: bytes) -> None:
        """Raw bytes with cluster headers (the WAL segment fetch path)."""
        self.send_response(200)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(len(payload)))
        self.send_header("X-Repro-Epoch", str(self.service.cluster.epoch))
        self.send_header("X-Repro-Role", self.service.cluster.role)
        self.end_headers()
        self.wfile.write(payload)

    def _read_json_object(self) -> Optional[dict]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0 or length > MAX_BODY_BYTES:
            self._send_json(400, {"error": "JSON body required"}, close=True)
            return None
        try:
            data = json.loads(self.rfile.read(length).decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            self._send_json(400, {"error": "body is not valid JSON"})
            return None
        if not isinstance(data, dict):
            self._send_json(400, {"error": "expected a JSON object"})
            return None
        return data

    def _read_records(self) -> Optional[list]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0 or length > MAX_BODY_BYTES:
            # The body (oversized, or pending with no declared length)
            # stays unread, so this connection cannot be reused.
            self._send_json(
                400, {"error": "body required (JSON records)"}, close=True
            )
            return None
        try:
            data = json.loads(self.rfile.read(length).decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            self._send_json(400, {"error": "body is not valid JSON"})
            return None
        if isinstance(data, dict) and isinstance(data.get("records"), list):
            return data["records"]
        if isinstance(data, list):
            return data
        self._send_json(
            400, {"error": 'expected a JSON array or {"records": [...]}'}
        )
        return None

    def _query(self) -> dict:
        return {
            key: values[-1]
            for key, values in parse_qs(urlparse(self.path).query).items()
        }

    def _limit(self, query: dict, default: int = 50) -> int:
        try:
            return max(1, min(1000, int(query.get("limit", default))))
        except ValueError:
            return default

    # -- GET ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802
        self._instrumented("GET", self._route_get)

    def _route_get(self) -> None:
        path = urlparse(self.path).path
        query = self._query()
        try:
            if path == "/healthz":
                self._get_healthz()
            elif path == "/summary":
                self._send_json(200, self.service.store.summary())
            elif path == "/attacks":
                self._get_attacks(query)
            elif path == "/victims":
                base, length = _parse_prefix(query.get("prefix", ""))
                victims = self.service.store.victims_in_prefix(base, length)
                self._send_json(
                    200,
                    {
                        "prefix": query["prefix"],
                        "count": len(victims),
                        "victims": victims,
                    },
                )
            elif path == "/domains":
                self._get_domains(query)
            elif path == "/stats":
                self._send_json(200, self.service.stats())
            elif path == "/digest":
                self._send_json(
                    200,
                    {
                        "digest": self.service.store.state_digest(),
                        "applied_seq": self.service._applied_seq,
                    },
                )
            elif path == "/metrics":
                self._send_text(
                    200,
                    self.service.metrics.render_prometheus(),
                    "text/plain; version=0.0.4",
                )
            elif path == "/metrics/history":
                self._get_metrics_history(query)
            elif path == "/status":
                self._send_json(200, self.service.status_doc())
            elif path == "/replication/status":
                self._get_replication_status(query)
            elif path == "/replication/segment":
                self._get_segment(query)
            elif path == "/replication/snapshot":
                self._get_snapshot()
            else:
                self._send_json(404, {"error": f"no such endpoint: {path}"})
        except ValueError as exc:
            self._send_json(400, {"error": str(exc)})

    def _get_healthz(self) -> None:
        service = self.service
        seg_count, wal_bytes = service._update_wal_gauges()
        self._send_json(
            200,
            {
                "ok": True,
                "draining": service._draining.is_set(),
                "degraded": service.degraded,
                "role": service.cluster.role,
                "epoch": service.cluster.epoch,
                "primary_url": service.cluster.primary_url,
                "wal_segments": seg_count,
                "wal_bytes": wal_bytes,
                "snapshot_age_s": round(
                    service._clock() - service._last_snapshot_at, 3
                ),
            },
        )

    def _get_metrics_history(self, query: dict) -> None:
        last: Optional[int] = None
        if "last" in query:
            try:
                last = max(0, int(query["last"]))
            except ValueError:
                raise ValueError("?last= must be an integer")
        self._send_json(200, self.service.history.history_doc(last))

    def _get_attacks(self, query: dict) -> None:
        limit = self._limit(query)
        if "ip" in query:
            victim = parse_ipv4(query["ip"])
            events = self.service.store.events_for_ip(victim, limit=limit)
            self._send_json(
                200, {"ip": query["ip"], "count": len(events), "events": events}
            )
        elif "prefix" in query:
            base, length = _parse_prefix(query["prefix"])
            events = self.service.store.events_for_prefix(
                base, length, limit=limit
            )
            self._send_json(
                200,
                {
                    "prefix": query["prefix"],
                    "count": len(events),
                    "events": events,
                },
            )
        else:
            raise ValueError("need ?ip= or ?prefix=")

    def _get_domains(self, query: dict) -> None:
        store = self.service.store
        if "domain" in query:
            status = store.domain_status(query["domain"])
            if status is None:
                self._send_json(
                    404, {"error": f"domain not seen: {query['domain']}"}
                )
            else:
                self._send_json(200, status)
        else:
            self._send_json(
                200,
                {
                    "domains": len(store._dps),
                    "protected": store.protected_domains(),
                },
            )

    # -- replication ----------------------------------------------------------

    def _get_replication_status(self, query: dict) -> None:
        follower = query.get("follower")
        committed: Optional[int] = None
        if "committed" in query:
            try:
                committed = int(query["committed"])
            except ValueError:
                raise ValueError("?committed= must be an integer")
        self._send_json(
            200, self.service.replication_status(follower, committed)
        )

    def _get_segment(self, query: dict) -> None:
        try:
            first = int(query["first"])
            offset = int(query.get("offset", 0))
            limit = int(query.get("limit", 1 << 20))
        except (KeyError, ValueError):
            raise ValueError("need ?first=N&offset=M[&limit=K]")
        limit = max(1, min(limit, 8 << 20))
        chunk = self.service.wal.read_chunk(first, offset, limit)
        if chunk is None:
            # Pruned (or never existed): the follower's next status poll
            # sees the new oldest_seq and bootstraps if it must.
            self._send_json(
                404, {"error": f"no WAL segment starting at seq {first}"}
            )
            return
        self._send_bytes(chunk)

    def _get_snapshot(self) -> None:
        loaded = self.service.snapshots.load_newest_valid()
        if not loaded.found:
            self._send_json(404, {"error": "no valid snapshot yet"})
            return
        self._send_json(200, loaded.payload)

    # -- POST -----------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802
        self._instrumented("POST", self._route_post)

    def _route_post(self) -> None:
        path = urlparse(self.path).path
        query = self._query()
        if path == "/promote":
            self._send_json(200, self.service.promote())
        elif path == "/replication/fence":
            self._post_fence()
        elif path == "/ingest/attacks":
            feed = query.get("feed", ATTACK_FEEDS[0])
            if feed not in ATTACK_FEEDS:
                self._send_json(
                    400,
                    {
                        "error": f"unknown feed {feed!r} "
                        f"(feeds: {', '.join(ATTACK_FEEDS)})"
                    },
                )
                return
            self._ingest(feed, KIND_ATTACK)
        elif path == "/ingest/dps":
            self._ingest(FEED_DPS, KIND_DPS)
        else:
            self._send_json(404, {"error": f"no such endpoint: {path}"})

    def _post_fence(self) -> None:
        body = self._read_json_object()
        if body is None:
            return
        epoch = body.get("epoch")
        if not isinstance(epoch, int) or isinstance(epoch, bool):
            self._send_json(400, {"error": '"epoch" must be an integer'})
            return
        primary_url = body.get("primary_url")
        if primary_url is not None and not isinstance(primary_url, str):
            self._send_json(400, {"error": '"primary_url" must be a string'})
            return
        if self.service.fence(epoch, primary_url):
            self._send_json(
                200,
                {
                    "fenced": True,
                    "role": self.service.cluster.role,
                    "epoch": self.service.cluster.epoch,
                },
            )
        else:
            self._send_json(
                409,
                {
                    "fenced": False,
                    "error": "stale epoch",
                    "epoch": self.service.cluster.epoch,
                },
            )

    def _ingest(self, feed: str, kind: str) -> None:
        records = self._read_records()
        if records is None:
            return
        result = self.service.submit(feed, kind, records, trace=self._trace_id)
        status = result.http_status()
        self._send_json(
            status,
            result.to_dict(),
            retry_after=result.retry_after if status == 503 else None,
        )


class ServeHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that carries the service for its handlers."""

    daemon_threads = True

    def __init__(self, address, service: LiveIngestService) -> None:
        super().__init__(address, ServeRequestHandler)
        self.service = service
        self.request_seconds = service.metrics.histogram(
            "serve_http_request_seconds",
            "HTTP request wall time by endpoint/method/status",
            ("endpoint", "method", "status"),
        )


def write_endpoint_file(
    data_dir: Path, host: str, port: int, pid: int
) -> Path:
    # Atomic (temp + rename): drill poll loops and cluster peers read
    # this file while it is being (re)written and must never see a torn
    # prefix of the old and new address.
    return write_json_atomic(
        Path(data_dir) / ENDPOINT_FILE,
        {"host": host, "port": port, "pid": pid},
    )


def read_endpoint_file(data_dir: Path) -> dict:
    return json.loads(
        (Path(data_dir) / ENDPOINT_FILE).read_text(encoding="utf-8")
    )


def run_service(
    config: ServeConfig,
    host: str = "127.0.0.1",
    port: int = 0,
    metrics=None,
    tracer=None,
    install_signals: bool = True,
    ready_event: Optional[threading.Event] = None,
) -> int:
    """Boot the service, serve until SIGTERM/SIGINT, drain, exit 0.

    Binding before recovery would let queries race an unrecovered store,
    so the order is: recover + start applier, bind, write the endpoint
    file, serve. On signal the HTTP listener closes first (no new work),
    then the service drains (backlog applied, final snapshot, WAL
    flushed) — the graceful half of the crash-safety story; the
    ungraceful half is the WAL.
    """
    import os

    service = LiveIngestService(config, metrics=metrics, tracer=tracer)
    info = service.start()
    server = ServeHTTPServer((host, port), service)
    bound_host, bound_port = server.server_address[:2]
    write_endpoint_file(service.data_dir, bound_host, bound_port, os.getpid())
    stop = threading.Event()

    def _handle(signum, frame) -> None:
        log.info("signal received; draining", signal=signum)
        stop.set()

    if install_signals:
        signal.signal(signal.SIGTERM, _handle)
        signal.signal(signal.SIGINT, _handle)
    server_thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"poll_interval": 0.1},
        name="repro-serve-http",
        daemon=True,
    )
    server_thread.start()
    log.info(
        "serving",
        host=bound_host,
        port=bound_port,
        recovered=not info.fresh_start,
        replayed=info.replayed,
    )
    if ready_event is not None:
        ready_event.set()
    try:
        while not stop.wait(0.2):
            pass
    finally:
        server.shutdown()
        server.server_close()
        server_thread.join(timeout=2.0)
        service.drain()
        try:
            # Final flight-recorder window + persisted history, so even a
            # short-lived node leaves a non-empty JSONL behind.
            service.history.sample()
            (service.data_dir / HISTORY_FILE).write_text(
                service.history.to_jsonl(), encoding="utf-8"
            )
        except OSError:
            pass
    return 0


__all__ = [
    "ENDPOINT_FILE",
    "ServeHTTPServer",
    "ServeRequestHandler",
    "read_endpoint_file",
    "run_service",
    "write_endpoint_file",
]
