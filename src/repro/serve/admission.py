"""Admission control: bounded intake with watermarks and load shedding.

The intake queue between the HTTP ingest handlers and the applier thread
is the component that decides whether a traffic burst degrades
*throughput* or kills the *process*. Policy, all deterministic:

* depth reaches the **high watermark** → the service starts *refusing*
  new batches (HTTP 503 with ``Retry-After``) until the applier drains
  the queue back to the **low watermark** (hysteresis, so the service
  does not flap at the boundary);
* a race of concurrent accepted batches can still overflow ``maxsize``
  → **drop-oldest**: the oldest queued entries are evicted to make room,
  counted per feed. The service records each eviction as a ``shed``
  tombstone in the WAL, so recovery replays exactly what the live
  process applied;
* every decision is a counter (``serve_shed_total{feed,policy}``) and the
  queue depth / shedding flag are gauges, so an overload is visible in
  ``/metrics`` while it is happening, not after the postmortem.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.log import get_logger
from repro.obs.metrics import get_registry

log = get_logger("serve.admission")

#: Shed policies, as metric label values.
POLICY_REFUSE = "refuse"
POLICY_DROP_OLDEST = "drop-oldest"


@dataclass(frozen=True)
class QueueEntry:
    """One admitted (already WAL-logged) record awaiting apply."""

    seq: int
    kind: str
    feed: str
    record: dict


@dataclass
class SubmitResult:
    """What one ingest batch got: accepted seqs, rejects, 503 — or 409.

    ``last_seq`` is the highest sequence number assigned to this batch
    (0 when nothing was accepted): the client-visible ack watermark that
    failover drills compare a promoted follower's replication cursor
    against. ``read_only`` marks a write refused by a replica or fenced
    node — an HTTP 409 carrying ``primary_url`` as the place to go.
    """

    accepted: int = 0
    rejected: int = 0
    shed: int = 0
    retry_after: Optional[float] = None
    reasons: Dict[str, int] = field(default_factory=dict)
    last_seq: int = 0
    read_only: bool = False
    primary_url: Optional[str] = None

    @property
    def refused(self) -> bool:
        return self.retry_after is not None

    def http_status(self) -> int:
        """The HTTP status this outcome maps to.

        One place instead of per-handler conditionals: 409 for writes
        refused by role, 503 for anything refused with a Retry-After
        (shedding, draining, degraded disk, sync timeout), 400 when the
        whole batch failed validation, else 202.
        """
        if self.read_only:
            return 409
        if self.refused:
            return 503
        if self.accepted == 0 and self.rejected:
            return 400
        return 202

    def to_dict(self) -> dict:
        body = {
            "accepted": self.accepted,
            "rejected": self.rejected,
            "shed": self.shed,
            "reasons": self.reasons,
        }
        if self.accepted:
            body["last_seq"] = self.last_seq
        if self.retry_after is not None:
            body["retry_after"] = self.retry_after
        if self.read_only:
            body["read_only"] = True
            body["primary_url"] = self.primary_url
        return body


class AdmissionQueue:
    """Bounded FIFO with high/low watermarks and drop-oldest overflow."""

    def __init__(
        self,
        maxsize: int = 4096,
        high_watermark: Optional[int] = None,
        low_watermark: Optional[int] = None,
        retry_after: float = 1.0,
        metrics=None,
    ) -> None:
        if maxsize < 2:
            raise ValueError("queue bound must be at least two entries")
        self.maxsize = maxsize
        self.high_watermark = (
            high_watermark if high_watermark is not None
            else max(1, (maxsize * 4) // 5)
        )
        self.low_watermark = (
            low_watermark if low_watermark is not None
            else max(0, maxsize // 2)
        )
        if not 0 <= self.low_watermark < self.high_watermark <= maxsize:
            raise ValueError(
                "watermarks must satisfy 0 <= low < high <= maxsize"
            )
        if retry_after <= 0:
            raise ValueError("retry_after must be positive")
        self.retry_after = retry_after
        self._entries: List[QueueEntry] = []
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._shedding = False
        registry = metrics if metrics is not None else get_registry()
        self._m_depth = registry.gauge(
            "serve_queue_depth", "entries awaiting apply"
        )
        self._m_shedding = registry.gauge(
            "serve_shedding", "1 while the service refuses ingest batches"
        )
        self._m_shed = registry.counter(
            "serve_shed_total", "records shed by admission control",
            ("feed", "policy"),
        )
        self._m_admitted = registry.counter(
            "serve_admitted_total", "records admitted past the watermarks",
            ("feed",),
        )

    # -- state ----------------------------------------------------------------

    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def shedding(self) -> bool:
        with self._lock:
            return self._shedding

    def min_seq(self) -> Optional[int]:
        """Smallest sequence number still queued (None: queue empty).

        Entries are queued in sequence order, so this is the head
        entry's seq. Replication's *stable frontier* rests on it: a
        sequence below every queued entry can no longer be evicted by
        drop-oldest, so no future ``shed`` tombstone can name it — a
        follower may apply it without waiting for more of the log.
        """
        with self._lock:
            return self._entries[0].seq if self._entries else None

    def _update_shedding_locked(self) -> None:
        depth = len(self._entries)
        if not self._shedding and depth >= self.high_watermark:
            self._shedding = True
            log.warning(
                "admission entered shed mode", depth=depth,
                high_watermark=self.high_watermark,
            )
        elif self._shedding and depth <= self.low_watermark:
            self._shedding = False
            log.info(
                "admission left shed mode", depth=depth,
                low_watermark=self.low_watermark,
            )
        self._m_shedding.set(1 if self._shedding else 0)
        self._m_depth.set(depth)

    # -- intake side -----------------------------------------------------------

    def refuse(self, feed: str, count: int) -> Optional[float]:
        """503 check: ``Retry-After`` seconds while shedding, else None.

        Counts the refused batch so a sustained overload is visible as a
        per-feed rate, and deterministic: the same depth sequence always
        produces the same refusals.
        """
        with self._lock:
            if self._shedding:
                self._m_shed.inc(count, feed=feed, policy=POLICY_REFUSE)
                return self.retry_after
            return None

    def push(self, entries: List[QueueEntry]) -> List[QueueEntry]:
        """Enqueue admitted entries; returns entries evicted (drop-oldest).

        Eviction only triggers past ``maxsize`` (concurrent batches that
        each individually passed the watermark check); the evicted
        entries are handed back so the caller can tombstone them in the
        WAL — a drop the recovery path would otherwise re-apply.
        """
        if not entries:
            return []
        dropped: List[QueueEntry] = []
        with self._lock:
            self._entries.extend(entries)
            overflow = len(self._entries) - self.maxsize
            if overflow > 0:
                dropped = self._entries[:overflow]
                del self._entries[:overflow]
                for entry in dropped:
                    self._m_shed.inc(
                        feed=entry.feed, policy=POLICY_DROP_OLDEST
                    )
            for entry in entries:
                self._m_admitted.inc(feed=entry.feed)
            self._update_shedding_locked()
            self._not_empty.notify_all()
        if dropped:
            log.warning(
                "queue overflow; oldest entries dropped",
                dropped=len(dropped),
                maxsize=self.maxsize,
            )
        return dropped

    def unshift(self, entries: List[QueueEntry]) -> None:
        """Put evicted entries back at the head, oldest first.

        The undo for :meth:`push`'s drop-oldest handback, used when the
        drop could not be made durable (the shed tombstone append
        failed): the entries were never taken by the applier, so
        restoring them at the head preserves sequence order. Depth may
        transiently exceed ``maxsize``; the watermark flags update so
        intake keeps refusing until the applier drains the excess.
        """
        if not entries:
            return
        with self._lock:
            self._entries[:0] = entries
            self._update_shedding_locked()
            self._not_empty.notify_all()

    # -- applier side ----------------------------------------------------------

    def take(
        self, max_items: int = 256, timeout: Optional[float] = 0.2
    ) -> List[QueueEntry]:
        """Dequeue up to *max_items* entries, waiting up to *timeout*."""
        with self._not_empty:
            if not self._entries and timeout:
                self._not_empty.wait(timeout)
            if not self._entries:
                return []
            batch = self._entries[:max_items]
            del self._entries[:max_items]
            self._update_shedding_locked()
            return batch

    def wake(self) -> None:
        """Nudge a waiting applier (shutdown path)."""
        with self._not_empty:
            self._not_empty.notify_all()


__all__ = [
    "AdmissionQueue",
    "POLICY_DROP_OLDEST",
    "POLICY_REFUSE",
    "QueueEntry",
    "SubmitResult",
]
