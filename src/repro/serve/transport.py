"""The wire seam: one exchange interface under every serve-layer caller.

:class:`~repro.serve.client.ServeClient` and
:class:`~repro.serve.replication.WalShipper` both used to open their own
``urllib`` connections, which made their network behavior impossible to
substitute without monkeypatching. They now share this interface:

* ``exchange`` performs one request/response round-trip. HTTP error
  *statuses* (4xx/5xx) return as a :class:`TransportResponse` — they are
  protocol answers, not transport failures.
* A failure to complete the round-trip at all (connection refused, DNS,
  timeout) raises :class:`TransportError`.

:class:`HttpTransport` is the production implementation. The
deterministic simulation harness (:mod:`repro.simtest`) provides
``SimTransport``, which routes ``sim://node`` URLs to in-process service
objects under a seeded fault schedule — same interface, no sockets.

:class:`TransportError` subclasses :class:`OSError` so callers that
already treat connection trouble as ``OSError`` keep working unchanged.
"""

from __future__ import annotations

import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Dict, Optional


class TransportError(OSError):
    """The round-trip could not be completed (no response at all)."""


@dataclass
class TransportResponse:
    """One raw HTTP-shaped answer: status, body bytes, headers."""

    status: int
    data: bytes = b""
    headers: Dict[str, str] = field(default_factory=dict)

    def header(self, name: str) -> Optional[str]:
        """Case-insensitive header lookup."""
        lowered = name.lower()
        for key, value in self.headers.items():
            if key.lower() == lowered:
                return value
        return None


class HttpTransport:
    """Production transport: one ``urllib`` connection per exchange."""

    def exchange(
        self,
        method: str,
        url: str,
        body: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
        timeout: float = 10.0,
    ) -> TransportResponse:
        request = urllib.request.Request(
            url, data=body, headers=dict(headers or {}), method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=timeout
            ) as response:
                return TransportResponse(
                    status=response.status,
                    data=response.read(),
                    headers=dict(response.headers.items()),
                )
        except urllib.error.HTTPError as error:
            data = error.read()
            header_items = dict(error.headers.items())
            error.close()
            return TransportResponse(
                status=error.code, data=data, headers=header_items
            )
        except (urllib.error.URLError, OSError) as error:
            raise TransportError(f"{method} {url}: {error}") from error


__all__ = ["HttpTransport", "TransportError", "TransportResponse"]
