"""The darknet itself: capture assembly and non-attack noise.

A telescope receives far more than backscatter — scans, misconfigurations
and bugs all land in unused space. The RSDoS pipeline must filter that
pollution, so the capture layer mixes in a configurable noise load:
scan traffic (TCP SYNs, not a response signature), misconfigured UDP
senders, and sub-threshold backscatter-like dribbles that real detectors
must discard via the Moore et al. filters.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Iterable, Iterator, List

from repro.attacks.attacker import GroundTruthAttack
from repro.net.addressing import Prefix
from repro.net.packet import (
    ICMP_ECHO_REPLY,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    PacketBatch,
    TCP_ACK,
    TCP_SYN,
)
from repro.telescope.backscatter import BackscatterConfig, BackscatterModel

DEFAULT_TELESCOPE_PREFIX = Prefix.from_string("44.0.0.0/8")


@dataclass(frozen=True)
class NoiseConfig:
    """Volume of non-attack traffic reaching the telescope."""

    seed: int = 5
    scans_per_day: int = 120
    misconfig_per_day: int = 40
    # Backscatter-like dribbles below the RSDoS thresholds.
    subthreshold_per_day: int = 25
    noise_source_space: int = 1 << 28  # sources drawn outside victim pools


class TelescopeNoise:
    """Generates scan / misconfiguration / sub-threshold noise batches."""

    def __init__(self, config: NoiseConfig = NoiseConfig()) -> None:
        self.config = config
        self._rng = Random(config.seed)

    def generate(self, n_days: int) -> Iterator[PacketBatch]:
        """Yield noise batches covering *n_days* of capture (time-sorted
        within each day only; callers sort the merged capture)."""
        for day in range(n_days):
            yield from self._scan_batches(day)
            yield from self._misconfig_batches(day)
            yield from self._subthreshold_batches(day)

    def _noise_source(self) -> int:
        return 0x60000000 + self._rng.randrange(self.config.noise_source_space)

    def _scan_batches(self, day: int) -> Iterator[PacketBatch]:
        rng = self._rng
        for _ in range(self.config.scans_per_day):
            src = self._noise_source()
            start = day * 86400.0 + rng.uniform(0.0, 86400.0)
            # A scanner sweeps the telescope: SYN packets, which are NOT a
            # response signature and must be ignored by the classifier.
            for minute in range(rng.randint(1, 10)):
                count = rng.randint(20, 400)
                yield PacketBatch(
                    timestamp=start + minute * 60.0,
                    src=src,
                    proto=PROTO_TCP,
                    count=count,
                    bytes=count * 40,
                    distinct_dsts=count,
                    src_ports=frozenset({rng.randrange(1024, 65536)}),
                    tcp_flags=TCP_SYN,
                )

    def _misconfig_batches(self, day: int) -> Iterator[PacketBatch]:
        rng = self._rng
        for _ in range(self.config.misconfig_per_day):
            src = self._noise_source()
            start = day * 86400.0 + rng.uniform(0.0, 86400.0)
            count = rng.randint(1, 50)
            yield PacketBatch(
                timestamp=start,
                src=src,
                proto=PROTO_UDP,
                count=count,
                bytes=count * 120,
                distinct_dsts=min(count, 4),
                src_ports=frozenset({rng.randrange(1024, 65536)}),
            )

    def _subthreshold_batches(self, day: int) -> Iterator[PacketBatch]:
        """Legit-looking backscatter that fails the Moore et al. filters."""
        rng = self._rng
        for _ in range(self.config.subthreshold_per_day):
            src = self._noise_source()
            start = day * 86400.0 + rng.uniform(0.0, 86400.0)
            style = rng.random()
            if style < 0.5:
                # Too few packets in total (< 25).
                count = rng.randint(1, 20)
                yield PacketBatch(
                    timestamp=start,
                    src=src,
                    proto=PROTO_TCP,
                    count=count,
                    bytes=count * 54,
                    distinct_dsts=count,
                    src_ports=frozenset({80}),
                    tcp_flags=TCP_SYN | TCP_ACK,
                )
            elif style < 0.8:
                # Enough packets but too short (< 60 s): one dense burst.
                count = rng.randint(25, 28)
                yield PacketBatch(
                    timestamp=start,
                    src=src,
                    proto=PROTO_ICMP,
                    count=count,
                    bytes=count * 54,
                    distinct_dsts=count,
                    icmp_type=ICMP_ECHO_REPLY,
                )
            else:
                # Long but far too slow (max rate < 0.5 pps).
                for minute in range(0, 10, 3):
                    yield PacketBatch(
                        timestamp=start + minute * 60.0,
                        src=src,
                        proto=PROTO_TCP,
                        count=3,
                        bytes=3 * 54,
                        distinct_dsts=3,
                        src_ports=frozenset({443}),
                        tcp_flags=TCP_SYN | TCP_ACK,
                    )


class NetworkTelescope:
    """Assembles the full time-sorted capture the detector consumes."""

    def __init__(
        self,
        prefix: Prefix = DEFAULT_TELESCOPE_PREFIX,
        backscatter: BackscatterModel = None,
        noise: TelescopeNoise = None,
    ) -> None:
        self.prefix = prefix
        fraction = prefix.size / float(1 << 32)
        if backscatter is None:
            backscatter = BackscatterModel(
                BackscatterConfig(telescope_fraction=fraction)
            )
        self.backscatter = backscatter
        self.noise = noise

    def capture(
        self, attacks: Iterable[GroundTruthAttack], n_days: int = 0
    ) -> List[PacketBatch]:
        """Observe *attacks* (plus noise when configured), time-sorted."""
        batches: List[PacketBatch] = []
        for attack in attacks:
            batches.extend(self.backscatter.observe(attack))
        if self.noise is not None and n_days > 0:
            batches.extend(self.noise.generate(n_days))
        batches.sort(key=lambda b: b.timestamp)
        return batches
