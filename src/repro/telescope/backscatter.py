"""Backscatter synthesis: what a victim under attack sends the darknet.

A victim of a randomly spoofed flood answers each attack packet toward the
spoofed source address. With uniform spoofing over the 32-bit space, a /8
telescope receives 1/256 of those responses. The model accounts for:

* vector-specific response signatures — SYN floods elicit SYN/ACKs (or RSTs
  on closed ports), UDP floods elicit ICMP destination-unreachable messages
  quoting the offending datagram, ICMP echo floods elicit echo replies;
* victim responsiveness — firewalls and rate-limited stacks answer only a
  fraction of the flood;
* victim capacity — an overwhelmed victim cannot answer faster than its
  provisioning allows, and may collapse partway through a successful attack
  (which is why the paper prefers honeypot durations for the migration
  analysis: telescope durations under-estimate successful attacks).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from random import Random
from typing import Iterator

from repro.attacks.attacker import (
    ATTACK_DIRECT,
    GroundTruthAttack,
    VECTOR_ICMP_FLOOD,
    VECTOR_OTHER_FLOOD,
    VECTOR_SYN_FLOOD,
    VECTOR_UDP_FLOOD,
)
from repro.net.packet import (
    ICMP_DEST_UNREACH,
    ICMP_ECHO_REPLY,
    PROTO_ICMP,
    PROTO_TCP,
    PacketBatch,
    TCP_ACK,
    TCP_RST,
    TCP_SYN,
)


@dataclass(frozen=True)
class BackscatterConfig:
    """Victim response behaviour."""

    seed: int = 4
    telescope_fraction: float = 1.0 / 256.0  # a /8 sees 2^24 / 2^32
    syn_ack_probability: float = 0.8  # vs RST for TCP responses
    response_probability: float = 0.9  # fraction of flood packets answered
    udp_response_probability: float = 0.55  # ICMP unreachable often filtered
    # Victim response capacity: log-normal cap in packets/second.
    capacity_mu: float = math.log(400_000.0)
    capacity_sigma: float = 1.2
    # Victims overwhelmed beyond this load factor collapse: backscatter
    # stops after a fraction of the attack duration.
    collapse_load_factor: float = 4.0
    collapse_after_fraction: float = 0.6
    backscatter_packet_bytes: int = 54


class BackscatterModel:
    """Turns ground-truth direct attacks into telescope packet batches."""

    def __init__(self, config: BackscatterConfig = BackscatterConfig()) -> None:
        self.config = config
        self._rng = Random(config.seed)

    def observe(self, attack: GroundTruthAttack) -> Iterator[PacketBatch]:
        """Yield per-minute backscatter batches the telescope captures.

        Non-direct attacks yield nothing: reflection attacks spoof only the
        victim's address. Unspoofed direct attacks also yield nothing — the
        victim answers the real (botnet) sources, so no backscatter reaches
        unused space; this is the telescope's structural blind spot.
        """
        if attack.kind != ATTACK_DIRECT or not attack.spoofed:
            return
        rng = self._rng
        cfg = self.config

        response_prob = (
            cfg.udp_response_probability
            if attack.vector in (VECTOR_UDP_FLOOD, VECTOR_OTHER_FLOOD)
            else cfg.response_probability
        )
        capacity = rng.lognormvariate(cfg.capacity_mu, cfg.capacity_sigma)
        response_rate = min(attack.rate, capacity) * response_prob
        telescope_rate = response_rate * cfg.telescope_fraction
        if telescope_rate <= 0:
            return

        effective_duration = attack.duration
        if attack.rate > capacity * cfg.collapse_load_factor:
            effective_duration = attack.duration * cfg.collapse_after_fraction

        flags, icmp_type, quoted, proto = _response_shape(attack, rng, cfg)
        ports = frozenset(attack.ports)

        minute = 0
        while minute * 60.0 < effective_duration:
            window = min(60.0, effective_duration - minute * 60.0)
            expected = telescope_rate * window
            count = _poisson(rng, expected)
            if count > 0:
                timestamp = attack.start + minute * 60.0 + rng.uniform(0.0, 1.0)
                yield PacketBatch(
                    timestamp=timestamp,
                    src=attack.target,
                    proto=proto,
                    count=count,
                    bytes=count * cfg.backscatter_packet_bytes,
                    distinct_dsts=_distinct_spoofed(count, rng),
                    src_ports=ports,
                    tcp_flags=flags,
                    icmp_type=icmp_type,
                    quoted_proto=quoted,
                )
            minute += 1


def _response_shape(attack, rng: Random, cfg: BackscatterConfig):
    """(tcp_flags, icmp_type, quoted_proto, ip_proto) of the response."""
    if attack.vector == VECTOR_SYN_FLOOD:
        if rng.random() < cfg.syn_ack_probability:
            return TCP_SYN | TCP_ACK, -1, None, PROTO_TCP
        return TCP_RST, -1, None, PROTO_TCP
    if attack.vector == VECTOR_UDP_FLOOD:
        return 0, ICMP_DEST_UNREACH, attack.ip_proto, PROTO_ICMP
    if attack.vector == VECTOR_ICMP_FLOOD:
        return 0, ICMP_ECHO_REPLY, None, PROTO_ICMP
    # Other protocols elicit ICMP protocol-unreachable quoting them.
    return 0, ICMP_DEST_UNREACH, attack.ip_proto, PROTO_ICMP


def _distinct_spoofed(count: int, rng: Random) -> int:
    """Distinct telescope addresses hit by *count* uniformly spoofed packets.

    With 2^24 telescope addresses, collisions are negligible at per-minute
    batch sizes; model a small collision loss for very large counts.
    """
    if count < 1000:
        return count
    space = float(1 << 24)
    expected = space * (1.0 - math.exp(-count / space))
    return max(1, int(expected))


def _poisson(rng: Random, lam: float) -> int:
    if lam <= 0:
        return 0
    if lam > 500:
        return max(0, int(rng.gauss(lam, lam**0.5) + 0.5))
    limit = math.exp(-lam)
    k, product = 0, 1.0
    while True:
        product *= rng.random()
        if product <= limit:
            return k
        k += 1
