"""UCSD Network Telescope substitute.

A /8 darknet passively collecting unsolicited traffic. Randomly and
uniformly spoofed DoS attacks elicit victim responses ("backscatter") of
which 1/256 statistically lands inside the telescope. The detection pipeline
is a re-implementation of the Moore et al. methodology as shipped in the
Corsaro RSDoS plugin: backscatter classification, flow aggregation on the
victim address with a 300-second timeout, and conservative low-intensity
filters (≥25 packets, ≥60 s, ≥0.5 pps max per-minute rate).
"""

from repro.telescope.backscatter import BackscatterConfig, BackscatterModel
from repro.telescope.darknet import NetworkTelescope, NoiseConfig, TelescopeNoise
from repro.telescope.flows import FlowState, FlowTable
from repro.telescope.rsdos import RSDoSDetector, RSDoSConfig, TelescopeEvent

__all__ = [
    "BackscatterConfig",
    "BackscatterModel",
    "NetworkTelescope",
    "NoiseConfig",
    "TelescopeNoise",
    "FlowState",
    "FlowTable",
    "RSDoSDetector",
    "RSDoSConfig",
    "TelescopeEvent",
]
