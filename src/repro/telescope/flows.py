"""Flow aggregation for the RSDoS detector.

Backscatter packets are grouped into attack "flows" keyed on the victim
address (the *source* of the backscatter), exactly as Moore et al. describe.
A flow expires after a configurable idle timeout (300 s in the paper); the
expired state is handed to the classifier.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Set, Tuple

from repro.net.packet import PROTO_ICMP, PROTO_TCP, PacketBatch


@dataclass
class FlowState:
    """Accumulated per-victim backscatter state."""

    victim: int
    first_ts: float
    last_ts: float
    packets: int = 0
    bytes: int = 0
    distinct_sources: int = 0  # spoofed sources == telescope dsts hit
    ports: Set[int] = field(default_factory=set)
    proto_packets: Dict[int, int] = field(default_factory=dict)
    minute_counts: Dict[int, int] = field(default_factory=dict)
    tcp_responses: int = 0
    icmp_responses: int = 0

    def add(self, batch: PacketBatch) -> None:
        """Fold one backscatter batch into the flow."""
        self.last_ts = max(self.last_ts, batch.timestamp)
        self.first_ts = min(self.first_ts, batch.timestamp)
        self.packets += batch.count
        self.bytes += batch.bytes
        self.distinct_sources += batch.distinct_dsts
        self.ports.update(batch.src_ports)
        attack_proto = batch.attack_proto
        self.proto_packets[attack_proto] = (
            self.proto_packets.get(attack_proto, 0) + batch.count
        )
        minute = int(batch.timestamp // 60)
        self.minute_counts[minute] = self.minute_counts.get(minute, 0) + batch.count
        if batch.proto == PROTO_TCP:
            self.tcp_responses += batch.count
        elif batch.proto == PROTO_ICMP:
            self.icmp_responses += batch.count

    @property
    def duration(self) -> float:
        return self.last_ts - self.first_ts

    @property
    def max_ppm(self) -> int:
        """Largest packet count observed in any single minute."""
        return max(self.minute_counts.values()) if self.minute_counts else 0

    @property
    def dominant_proto(self) -> int:
        """Attack protocol accounting for most packets."""
        if not self.proto_packets:
            return 0
        return max(self.proto_packets.items(), key=lambda kv: kv[1])[0]


class FlowTable:
    """Victim-keyed flow table with idle-timeout expiry.

    ``add`` returns any flows expired by the advancing clock; time must be
    fed in non-decreasing order (the capture layer sorts batches).

    Expiry is driven by a lazy min-heap of ``(last_ts, victim)`` entries.
    A flow is pushed once at creation; a sweep pops entries older than the
    cutoff and either expires the flow (its ``last_ts`` really is stale)
    or re-pushes it under its refreshed timestamp. Each flow thus costs
    O(log n) at creation and amortized O(log n) per idle-timeout window,
    instead of the reference sweep's O(live flows) scan on every sweep
    tick. Construct with ``indexed=False`` to keep the reference full-scan
    sweep (used by the equivalence tests and benchmarks).
    """

    def __init__(
        self,
        timeout: float = 300.0,
        sweep_interval: float = 60.0,
        indexed: bool = True,
    ) -> None:
        if timeout <= 0:
            raise ValueError("flow timeout must be positive")
        self.timeout = timeout
        self._sweep_interval = sweep_interval
        self._flows: Dict[int, FlowState] = {}
        self._last_sweep = float("-inf")
        self._indexed = indexed
        self._heap: List[Tuple[float, int]] = []
        self._seq: Dict[int, int] = {}
        self._next_seq = 0

    def __len__(self) -> int:
        return len(self._flows)

    def add(self, batch: PacketBatch) -> List[FlowState]:
        """Fold a batch in; return flows that expired before it arrived."""
        expired = self._maybe_sweep(batch.timestamp)
        flow = self._flows.get(batch.src)
        if flow is not None and batch.timestamp - flow.last_ts > self.timeout:
            expired.append(self._flows.pop(batch.src))
            self._seq.pop(batch.src, None)
            flow = None
        if flow is None:
            flow = FlowState(
                victim=batch.src, first_ts=batch.timestamp, last_ts=batch.timestamp
            )
            self._flows[batch.src] = flow
            if self._indexed:
                self._seq[batch.src] = self._next_seq
                self._next_seq += 1
                heapq.heappush(self._heap, (flow.last_ts, batch.src))
        flow.add(batch)
        return expired

    def _maybe_sweep(self, now: float) -> List[FlowState]:
        if now - self._last_sweep < self._sweep_interval:
            return []
        self._last_sweep = now
        cutoff = now - self.timeout
        if not self._indexed:
            expired = [f for f in self._flows.values() if f.last_ts < cutoff]
            for flow in expired:
                del self._flows[flow.victim]
            return expired
        # Pop every entry older than the cutoff. A popped flow that was
        # refreshed since its entry was pushed is re-enqueued under its
        # current last_ts instead of expired. The expired set is re-sorted
        # by flow creation order so the result matches the reference
        # full-scan sweep exactly.
        ordered: List[Tuple[int, FlowState]] = []
        heap = self._heap
        flows = self._flows
        while heap and heap[0][0] < cutoff:
            _, victim = heapq.heappop(heap)
            flow = flows.get(victim)
            if flow is None:
                continue  # entry outlived its flow
            if flow.last_ts < cutoff:
                ordered.append((self._seq.pop(victim), flows.pop(victim)))
            else:
                heapq.heappush(heap, (flow.last_ts, victim))
        ordered.sort(key=lambda pair: pair[0])
        return [flow for _, flow in ordered]

    def flush(self) -> Iterator[FlowState]:
        """Expire every remaining flow (end of capture)."""
        flows = list(self._flows.values())
        self._flows.clear()
        self._heap.clear()
        self._seq.clear()
        yield from flows
