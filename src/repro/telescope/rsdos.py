"""RSDoS: randomly spoofed DoS attack detection (Moore et al. / Corsaro).

The three-step process from the paper:

1. **Backscatter classification** — keep only response packets (TCP
   SYN/ACK or RST; the nine ICMP reply/error types).
2. **Flow aggregation** — group by victim address (backscatter source),
   expiring flows after 300 idle seconds.
3. **Attack classification & filtering** — compute per-flow statistics
   (packets, bytes, duration, distinct spoofed sources, distinct ports,
   maximum per-minute packet rate) and discard low-intensity flows:
   fewer than 25 packets, shorter than 60 seconds, or peaking below
   0.5 packets per second.

The emitted :class:`TelescopeEvent` corresponds to one row of the paper's
telescope data set. A max rate of 0.5 pps *at the telescope* corresponds to
an estimated 128 pps at the victim (multiply by 256 for a /8).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from itertools import compress
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.net.columnar import (
    SKETCH_PACKED_BYTES_SHIFT,
    SKETCH_PACKED_DSTS_SHIFT,
    SKETCH_PACKED_FIELD_MASK,
    SKETCH_PACKED_ICMP_SHIFT,
    PacketColumns,
)
from repro.net.packet import PROTO_ICMP, PROTO_TCP, PacketBatch
from repro.sketch.engine import FlowSketch, SketchConfig
from repro.telescope.flows import FlowState, FlowTable

#: Factor converting /8-telescope packet rates to estimated victim rates.
TELESCOPE_SCALE_FACTOR = 256


@dataclass(frozen=True)
class RSDoSConfig:
    """Detection thresholds (defaults are the paper's)."""

    flow_timeout: float = 300.0
    min_packets: int = 25
    min_duration: float = 60.0
    min_max_pps: float = 0.5


@dataclass(frozen=True)
class TelescopeEvent:
    """One detected randomly spoofed attack."""

    victim: int
    start_ts: float
    end_ts: float
    packets: int
    bytes: int
    distinct_sources: int
    ports: Tuple[int, ...]
    ip_proto: int
    max_ppm: int
    tcp_responses: int
    icmp_responses: int

    @property
    def duration(self) -> float:
        return self.end_ts - self.start_ts

    @property
    def max_pps(self) -> float:
        """Maximum packets/second at the telescope, over any minute."""
        return self.max_ppm / 60.0

    @property
    def estimated_victim_pps(self) -> float:
        """Estimated attack packet rate at the victim (×256 for a /8)."""
        return self.max_pps * TELESCOPE_SCALE_FACTOR

    @property
    def single_port(self) -> bool:
        """Whether the attack targeted exactly one port (Table 7)."""
        return len(self.ports) == 1


class RSDoSDetector:
    """Streaming detector over a time-sorted batch capture.

    ``indexed=False`` runs the flow table's reference full-scan expiry
    instead of the lazy min-heap — the original seed behavior, kept for
    equivalence tests and as the benchmark baseline.
    """

    def __init__(
        self, config: RSDoSConfig = RSDoSConfig(), indexed: bool = True
    ) -> None:
        self.config = config
        self._flows = FlowTable(timeout=config.flow_timeout, indexed=indexed)
        self.batches_seen = 0
        self.backscatter_batches = 0
        self.flows_discarded = 0

    def process(self, batch: PacketBatch) -> List[TelescopeEvent]:
        """Feed one batch; return events whose flows just expired."""
        self.batches_seen += 1
        if not batch.is_backscatter:
            return []
        self.backscatter_batches += 1
        expired = self._flows.add(batch)
        return self._classify_all(expired)

    def run(self, batches: Iterable[PacketBatch]) -> Iterator[TelescopeEvent]:
        """Process an entire capture, including the final flush."""
        for batch in batches:
            yield from self.process(batch)
        yield from self.flush()

    def flush(self) -> List[TelescopeEvent]:
        """Expire all open flows at end of capture."""
        return self._classify_all(self._flows.flush())

    def _classify_all(self, flows: Iterable[FlowState]) -> List[TelescopeEvent]:
        events = []
        for flow in flows:
            event = self.classify(flow)
            if event is None:
                self.flows_discarded += 1
            else:
                events.append(event)
        return events

    def classify(self, flow: FlowState) -> Optional[TelescopeEvent]:
        """Apply the Moore et al. filters; None means discarded."""
        cfg = self.config
        if flow.packets < cfg.min_packets:
            return None
        if flow.duration < cfg.min_duration:
            return None
        if flow.max_ppm / 60.0 < cfg.min_max_pps:
            return None
        return TelescopeEvent(
            victim=flow.victim,
            start_ts=flow.first_ts,
            end_ts=flow.last_ts,
            packets=flow.packets,
            bytes=flow.bytes,
            distinct_sources=flow.distinct_sources,
            ports=tuple(sorted(flow.ports)),
            ip_proto=flow.dominant_proto,
            max_ppm=flow.max_ppm,
            tcp_responses=flow.tcp_responses,
            icmp_responses=flow.icmp_responses,
        )


# Flow-record slots for the columnar fast path (plain lists instead of
# FlowState instances; indices documented here once):
# 0 victim, 1 first_ts, 2 last_ts, 3 packets, 4 bytes, 5 distinct_sources,
# 6 ports set, 7 proto_packets dict, 8 minute_counts dict,
# 9 tcp_responses, 10 icmp_responses, 11 creation seq.
def detect_columns(
    config: RSDoSConfig,
    columns: PacketColumns,
    shard_index: int = 0,
    n_shards: int = 1,
) -> List[TelescopeEvent]:
    """RSDoS detection over a columnar capture — the object path inlined.

    Produces the exact event list :class:`RSDoSDetector` yields over
    ``columns.to_batches()`` (same events, same order): the backscatter
    filter, sweep cadence, idle-timeout expiry, per-flow accumulators and
    Moore et al. thresholds are all replicated against flat columns, with
    flows held as plain lists and expiry driven by the same lazy min-heap
    as :class:`~repro.telescope.flows.FlowTable`.
    """
    ports_flat = columns.ports

    timeout = config.flow_timeout
    min_packets = config.min_packets
    min_duration = config.min_duration
    min_ppm = config.min_max_pps * 60.0
    heappush, heappop = heapq.heappush, heapq.heappop

    flows: dict = {}
    heap: List[Tuple[float, int]] = []
    events: List[TelescopeEvent] = []
    last_sweep = float("-inf")
    next_seq = 0
    sharded = n_shards > 1

    def classify(record: list) -> None:
        if record[3] < min_packets:
            return
        if record[2] - record[1] < min_duration:
            return
        minute_counts = record[8]
        max_ppm = max(minute_counts.values()) if minute_counts else 0
        if max_ppm < min_ppm:
            return
        proto_packets = record[7]
        events.append(
            TelescopeEvent(
                victim=record[0],
                start_ts=record[1],
                end_ts=record[2],
                packets=record[3],
                bytes=record[4],
                distinct_sources=record[5],
                ports=tuple(sorted(record[6])),
                ip_proto=max(proto_packets.items(), key=lambda kv: kv[1])[0],
                max_ppm=max_ppm,
                tcp_responses=record[9],
                icmp_responses=record[10],
            )
        )

    port_offsets = columns.port_offsets
    for (
        is_backscatter,
        victim,
        now,
        proto,
        count,
        size,
        dsts,
        attack_proto,
        lo,
        hi,
    ) in zip(
        columns.backscatter,
        columns.srcs,
        columns.timestamps,
        columns.protos,
        columns.counts,
        columns.sizes,
        columns.distinct_dsts,
        columns.attack_protos,
        port_offsets,
        port_offsets[1:],
    ):
        if not is_backscatter:
            continue
        if sharded and victim % n_shards != shard_index:
            continue
        if now - last_sweep >= 60.0:  # FlowTable's sweep_interval default
            last_sweep = now
            cutoff = now - timeout
            swept: List[Tuple[int, list]] = []
            while heap and heap[0][0] < cutoff:
                _, entry_victim = heappop(heap)
                record = flows.get(entry_victim)
                if record is None:
                    continue  # entry outlived its flow
                if record[2] < cutoff:
                    del flows[entry_victim]
                    swept.append((record[11], record))
                else:
                    heappush(heap, (record[2], entry_victim))
            if swept:
                swept.sort(key=lambda pair: pair[0])
                for _, record in swept:
                    classify(record)
        record = flows.get(victim)
        if record is not None and now - record[2] > timeout:
            del flows[victim]
            classify(record)
            record = None
        if record is None:
            record = [victim, now, now, 0, 0, 0, set(), {}, {}, 0, 0, next_seq]
            next_seq += 1
            flows[victim] = record
            heappush(heap, (now, victim))
        if now > record[2]:
            record[2] = now
        elif now < record[1]:
            record[1] = now
        record[3] += count
        record[4] += size
        record[5] += dsts
        if hi > lo:
            record[6].update(ports_flat[lo:hi])
        if proto == PROTO_TCP:
            record[9] += count
        else:  # PROTO_ICMP (only backscatter protocols reach here)
            record[10] += count
        proto_packets = record[7]
        proto_packets[attack_proto] = proto_packets.get(attack_proto, 0) + count
        minute = int(now // 60)
        minute_counts = record[8]
        minute_counts[minute] = minute_counts.get(minute, 0) + count

    for record in flows.values():
        classify(record)
    return events


# Sketch-tier heavy-record slots (one record per victim, not per flow):
# 0 first_ts, 1 last_ts, 2 packed counters. Slot 2 carries the codec's
# precomputed ``sketch_packed`` sum — tcp responses, icmp responses,
# bytes and distinct sources in 64-bit fields of a single integer (see
# :mod:`repro.net.columnar`) — so the hot loop maintains all four
# running sums with one add.


class _PackedPackets:
    """Eviction-count reader for the packed record: tcp + icmp fields.

    A module-level class (not a lambda) so sketches survive the pickle
    hop between supervised pool shards; value-equal by type so the merge
    guard accepts two telescope sketches.
    """

    __slots__ = ()

    def __call__(self, record: list) -> int:
        packed = record[2]
        return (packed & SKETCH_PACKED_FIELD_MASK) + (
            (packed >> SKETCH_PACKED_ICMP_SHIFT) & SKETCH_PACKED_FIELD_MASK
        )

    def __eq__(self, other: object) -> bool:
        return type(other) is _PackedPackets

    def __hash__(self) -> int:
        return hash(_PackedPackets)


def _combine_telescope_records(mine: list, theirs: list) -> None:
    """Fold two per-victim records (shard merge): min/max stamps, sum stats."""
    if theirs[0] < mine[0]:
        mine[0] = theirs[0]
    if theirs[1] > mine[1]:
        mine[1] = theirs[1]
    # One add folds all four packed counter fields (non-negative, 64-bit
    # headroom each — same soundness argument as the hot loop's add).
    mine[2] += theirs[2]


class TelescopeSketch:
    """Mergeable sketch-tier summary of one telescope capture shard.

    Holds the detection config alongside the :class:`FlowSketch` so a
    merged summary can classify itself into approximate
    :class:`TelescopeEvent` rows without re-plumbing thresholds.
    """

    def __init__(
        self, config: RSDoSConfig, sketch_config: SketchConfig
    ) -> None:
        self.config = config
        self.sketch = FlowSketch(sketch_config, count_slot=_PackedPackets())

    def merge(self, other: "TelescopeSketch") -> "TelescopeSketch":
        if self.config != other.config:
            raise ValueError(
                f"cannot merge telescope sketches with different detection "
                f"configs: {self.config} vs {other.config}"
            )
        self.sketch.merge(other.sketch, _combine_telescope_records)
        return self

    @classmethod
    def merge_all(
        cls, summaries: Iterable["TelescopeSketch"]
    ) -> "TelescopeSketch":
        merged = None
        for summary in summaries:
            merged = summary if merged is None else merged.merge(summary)
        if merged is None:
            raise ValueError("merge_all needs at least one summary")
        return merged

    def cardinality(self) -> float:
        """Approximate distinct victims observed (HLL estimate)."""
        return self.sketch.cardinality()

    def estimate(self, victim: int) -> int:
        """Upper-bound backscatter packet count for one victim."""
        return self.sketch.estimate(victim)

    def top_victims(self, k: int) -> List[Tuple[int, int]]:
        """Top-``k`` victims by estimated packets, count-desc, key tiebreak."""
        ranked = sorted(
            (
                (victim, self.sketch.estimate(victim))
                for victim in self.sketch.heavy
            ),
            key=lambda pair: (-pair[1], pair[0]),
        )
        return ranked[:k]

    def events(self) -> List[TelescopeEvent]:
        """Classify the per-victim aggregates into approximate events.

        One event per victim (no idle-gap splitting). The rate filter
        uses the sound upper bound ``max_ppm <= packets``, so at victim
        granularity the sketch tier never drops a victim the exact tier
        reports (as long as no eviction occurred); the reported
        ``max_ppm`` is the honest per-minute average. ``ports`` are not
        tracked at this tier and ``ip_proto`` is inferred from the
        response-protocol majority.
        """
        cfg = self.config
        min_packets = cfg.min_packets
        min_duration = cfg.min_duration
        min_ppm = cfg.min_max_pps * 60.0
        sketch = self.sketch
        spilled = sketch.evictions > 0
        spill_estimate = sketch.spill.estimate
        mask = SKETCH_PACKED_FIELD_MASK
        events: List[TelescopeEvent] = []
        for victim, record in sketch.heavy.items():
            packed = record[2]
            tcp = packed & mask
            icmp = (packed >> SKETCH_PACKED_ICMP_SHIFT) & mask
            packets = tcp + icmp
            if spilled:
                packets += spill_estimate(victim)
            # max_ppm <= packets always, so `packets < min_ppm` soundly
            # rejects anything the exact rate filter would reject.
            if packets < min_packets or packets < min_ppm:
                continue
            first_ts = record[0]
            last_ts = record[1]
            duration = last_ts - first_ts
            if duration < min_duration:
                continue
            approx_ppm = int(round(packets * 60.0 / max(60.0, duration)))
            events.append(
                TelescopeEvent(
                    victim=victim,
                    start_ts=first_ts,
                    end_ts=last_ts,
                    packets=packets,
                    bytes=(packed >> SKETCH_PACKED_BYTES_SHIFT) & mask,
                    distinct_sources=packed >> SKETCH_PACKED_DSTS_SHIFT,
                    ports=(),
                    ip_proto=PROTO_TCP if tcp >= icmp else PROTO_ICMP,
                    max_ppm=approx_ppm,
                    tcp_responses=tcp,
                    icmp_responses=icmp,
                )
            )
        events.sort(key=lambda event: (event.start_ts, event.victim))
        return events


def detect_sketch(
    config: RSDoSConfig,
    columns: PacketColumns,
    shard_index: int = 0,
    n_shards: int = 1,
    sketch_config: Optional[SketchConfig] = None,
) -> TelescopeSketch:
    """Sketch-tier ingestion of a columnar capture: one summary per shard.

    The hot path is a single dict lookup plus two in-place mutations per
    backscatter row — no flow table, no expiry heap, no per-minute
    dicts — which is what buys the >5x over :func:`detect_columns`.
    Non-backscatter rows are skipped at C speed via
    :func:`itertools.compress`, and the codec's precomputed
    ``sketch_packed`` column collapses all four per-row counter updates
    (tcp, icmp, bytes, distinct sources) into one integer add. Returns
    the mergeable :class:`TelescopeSketch`; call ``events()`` on the
    (merged) summary to materialize approximate events.
    """
    summary = TelescopeSketch(config, sketch_config or SketchConfig())
    sketch = summary.sketch
    heavy = sketch.heavy
    admit = sketch.admit
    rows = compress(
        zip(columns.srcs, columns.timestamps, columns.sketch_packed),
        columns.backscatter,
    )
    if n_shards > 1:
        for victim, now, packed in rows:
            if victim % n_shards != shard_index:
                continue
            try:
                record = heavy[victim]
                record[1] = now
                record[2] += packed
            except KeyError:
                admit(victim, [now, now, packed])
    else:
        for victim, now, packed in rows:
            try:
                record = heavy[victim]
                record[1] = now
                record[2] += packed
            except KeyError:
                admit(victim, [now, now, packed])
    sketch.rows += len(columns)
    return summary
