"""RSDoS: randomly spoofed DoS attack detection (Moore et al. / Corsaro).

The three-step process from the paper:

1. **Backscatter classification** — keep only response packets (TCP
   SYN/ACK or RST; the nine ICMP reply/error types).
2. **Flow aggregation** — group by victim address (backscatter source),
   expiring flows after 300 idle seconds.
3. **Attack classification & filtering** — compute per-flow statistics
   (packets, bytes, duration, distinct spoofed sources, distinct ports,
   maximum per-minute packet rate) and discard low-intensity flows:
   fewer than 25 packets, shorter than 60 seconds, or peaking below
   0.5 packets per second.

The emitted :class:`TelescopeEvent` corresponds to one row of the paper's
telescope data set. A max rate of 0.5 pps *at the telescope* corresponds to
an estimated 128 pps at the victim (multiply by 256 for a /8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.net.packet import PacketBatch
from repro.telescope.flows import FlowState, FlowTable

#: Factor converting /8-telescope packet rates to estimated victim rates.
TELESCOPE_SCALE_FACTOR = 256


@dataclass(frozen=True)
class RSDoSConfig:
    """Detection thresholds (defaults are the paper's)."""

    flow_timeout: float = 300.0
    min_packets: int = 25
    min_duration: float = 60.0
    min_max_pps: float = 0.5


@dataclass(frozen=True)
class TelescopeEvent:
    """One detected randomly spoofed attack."""

    victim: int
    start_ts: float
    end_ts: float
    packets: int
    bytes: int
    distinct_sources: int
    ports: Tuple[int, ...]
    ip_proto: int
    max_ppm: int
    tcp_responses: int
    icmp_responses: int

    @property
    def duration(self) -> float:
        return self.end_ts - self.start_ts

    @property
    def max_pps(self) -> float:
        """Maximum packets/second at the telescope, over any minute."""
        return self.max_ppm / 60.0

    @property
    def estimated_victim_pps(self) -> float:
        """Estimated attack packet rate at the victim (×256 for a /8)."""
        return self.max_pps * TELESCOPE_SCALE_FACTOR

    @property
    def single_port(self) -> bool:
        """Whether the attack targeted exactly one port (Table 7)."""
        return len(self.ports) == 1


class RSDoSDetector:
    """Streaming detector over a time-sorted batch capture."""

    def __init__(self, config: RSDoSConfig = RSDoSConfig()) -> None:
        self.config = config
        self._flows = FlowTable(timeout=config.flow_timeout)
        self.batches_seen = 0
        self.backscatter_batches = 0
        self.flows_discarded = 0

    def process(self, batch: PacketBatch) -> List[TelescopeEvent]:
        """Feed one batch; return events whose flows just expired."""
        self.batches_seen += 1
        if not batch.is_backscatter:
            return []
        self.backscatter_batches += 1
        expired = self._flows.add(batch)
        return self._classify_all(expired)

    def run(self, batches: Iterable[PacketBatch]) -> Iterator[TelescopeEvent]:
        """Process an entire capture, including the final flush."""
        for batch in batches:
            yield from self.process(batch)
        yield from self.flush()

    def flush(self) -> List[TelescopeEvent]:
        """Expire all open flows at end of capture."""
        return self._classify_all(self._flows.flush())

    def _classify_all(self, flows: Iterable[FlowState]) -> List[TelescopeEvent]:
        events = []
        for flow in flows:
            event = self.classify(flow)
            if event is None:
                self.flows_discarded += 1
            else:
                events.append(event)
        return events

    def classify(self, flow: FlowState) -> Optional[TelescopeEvent]:
        """Apply the Moore et al. filters; None means discarded."""
        cfg = self.config
        if flow.packets < cfg.min_packets:
            return None
        if flow.duration < cfg.min_duration:
            return None
        if flow.max_ppm / 60.0 < cfg.min_max_pps:
            return None
        return TelescopeEvent(
            victim=flow.victim,
            start_ts=flow.first_ts,
            end_ts=flow.last_ts,
            packets=flow.packets,
            bytes=flow.bytes,
            distinct_sources=flow.distinct_sources,
            ports=tuple(sorted(flow.ports)),
            ip_proto=flow.dominant_proto,
            max_ppm=flow.max_ppm,
            tcp_responses=flow.tcp_responses,
            icmp_responses=flow.icmp_responses,
        )
