"""End-to-end simulation: generate the Internet, attack it, measure it.

``run_simulation`` executes the full reproduction pipeline:

1. generate topology, address census, hosting ecosystem, DNS zones;
2. schedule two years of ground-truth attacks;
3. run the behavioural DPS-migration model (mutating DNS timelines);
4. observe the attacks through the telescope (backscatter + RSDoS) and the
   honeypot fleet (request logs + event extraction);
5. compile the OpenINTEL measurement and detect DPS usage from DNS;
6. annotate and fuse the event data sets.

Each step is a standalone stage function so the resilient orchestrator in
:mod:`repro.pipeline.runner` can wrap every stage with timing, retries,
checkpointing and fault injection while ``run_simulation`` stays the plain
fast path. The observation/measurement stages accept optional fault
injectors (see :mod:`repro.faults`) that degrade the feed the way the real
lossy infrastructures would.

The result object carries every layer so tests, examples and benchmarks can
reach both ground truth and observations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.attacks.attacker import GroundTruthAttack
from repro.attacks.schedule import AttackSchedule, TargetPools
from repro.core.events import AttackDataset
from repro.core.fusion import FusedDataset
from repro.core.webmap import WebHostingIndex
from repro.dns.openintel import OpenIntelDataset, OpenIntelPlatform
from repro.dns.nameservers import NameServerDirectory
from repro.dns.zone import Zone, ZoneGenerator
from repro.dps.detection import BGPDiversionLog, DPSDetector, DPSUsageDataset
from repro.dps.migration_sim import MigrationLedger, MigrationSimulator
from repro.dps.providers import DPSProvider, build_providers
from repro.honeypot.amppot import AmpPotFleet
from repro.honeypot.columnar import RequestColumns
from repro.honeypot.detection import (
    AmpPotEvent,
    HoneypotDetector,
    HoneypotSketch,
    detect_columns as detect_honeypot_columns,
    detect_sketch as detect_honeypot_sketch,
)
from repro.net.columnar import PacketColumns
from repro.internet.hosting import HostingEcosystem
from repro.internet.population import ActiveAddressCensus
from repro.internet.topology import InternetTopology
from repro.log import get_logger
from repro.pipeline.config import ScenarioConfig
from repro.telescope.backscatter import BackscatterModel
from repro.telescope.darknet import NetworkTelescope, TelescopeNoise
from repro.sketch.engine import export_sketch_metrics
from repro.telescope.rsdos import (
    RSDoSDetector,
    TelescopeEvent,
    TelescopeSketch,
    detect_columns as detect_telescope_columns,
    detect_sketch as detect_telescope_sketch,
)

log = get_logger("simulation")

#: Capture representations the observation stages accept. ``"object"`` is
#: the reference per-batch path; ``"columnar"`` encodes captures into
#: structure-of-arrays columns and detects over them (byte-identical
#: events, several times faster).
CAPTURE_CODECS = ("object", "columnar")

#: Detection tiers the observation stages dispatch on. ``"exact"`` is the
#: reference per-batch detector, ``"columnar"`` the inlined exact fast
#: path, ``"sketch"`` the approximate bounded-memory engine
#: (:mod:`repro.sketch`). ``None``/``"auto"`` matches the capture codec:
#: object captures take the exact path, columnar captures the columnar
#: path — the pre-tier behavior.
DETECT_TIERS = ("exact", "columnar", "sketch")


def resolve_detect_tier(detect_tier, codec: str = "object") -> str:
    """Map an optional tier request onto a concrete tier name."""
    if detect_tier is None or detect_tier == "auto":
        return "columnar" if codec == "columnar" else "exact"
    if detect_tier not in DETECT_TIERS:
        raise ValueError(
            f"unknown detect tier {detect_tier!r} "
            f"(tiers: {', '.join(sorted(DETECT_TIERS))})"
        )
    return detect_tier


@dataclass
class SimulationResult:
    """Everything one scenario run produces."""

    config: ScenarioConfig
    topology: InternetTopology
    census: ActiveAddressCensus
    ecosystem: HostingEcosystem
    zones: List[Zone]
    providers: List[DPSProvider]
    ns_directory: NameServerDirectory
    diversion_log: BGPDiversionLog
    ledger: MigrationLedger
    ground_truth: List[GroundTruthAttack]
    telescope_events: List[TelescopeEvent]
    honeypot_events: List[AmpPotEvent]
    fused: FusedDataset
    openintel: OpenIntelDataset
    dps_usage: DPSUsageDataset
    web_index: WebHostingIndex
    # Attached by the resilient runner; None for plain fault-free runs.
    quality: Optional["DataQualityReport"] = None

    @property
    def n_days(self) -> int:
        return self.config.n_days


# -- stage functions ---------------------------------------------------------


@dataclass
class InternetLayer:
    """Stage 1 output: the synthetic Internet every later stage reads."""

    topology: InternetTopology
    census: ActiveAddressCensus
    ecosystem: HostingEcosystem
    zones: List[Zone]
    providers: List[DPSProvider]
    ns_directory: NameServerDirectory
    self_hosted_web_ips: List[int] = field(default_factory=list)


def build_internet(config: ScenarioConfig) -> InternetLayer:
    """Stage 1: topology, census, hosting, zones, providers, name servers."""
    topology = InternetTopology.generate(config.topology_config())
    census = ActiveAddressCensus.from_topology(
        topology, config.active_fraction, config.census_seed()
    )
    ecosystem = HostingEcosystem.generate(topology, config.hosting_config())
    zone_generator = ZoneGenerator(ecosystem, config.zone_config())
    zones = zone_generator.generate()
    providers = build_providers(topology)
    ns_directory = NameServerDirectory.build(ecosystem, providers, topology)
    log.debug(
        "internet generated",
        ases=len(topology.ases),
        zones=len(zones),
        providers=len(providers),
    )
    return InternetLayer(
        topology=topology,
        census=census,
        ecosystem=ecosystem,
        zones=zones,
        providers=providers,
        ns_directory=ns_directory,
        self_hosted_web_ips=zone_generator.self_hosted_web_ips(),
    )


def schedule_attacks(
    config: ScenarioConfig, internet: InternetLayer
) -> List[GroundTruthAttack]:
    """Stage 2: two years of ground-truth attacks against the pools."""
    dps_infra_ips = [
        address
        for provider in internet.providers
        for address in provider.edge_addresses()
    ]
    pools = TargetPools.build(
        internet.topology,
        internet.ecosystem,
        self_hosted_web_ips=internet.self_hosted_web_ips,
        dps_infra_ips=dps_infra_ips,
    )
    # Name servers share the mail/infrastructure target pool: both are
    # non-Web supporting services the paper found under attack.
    pools.mail.extend(internet.ns_directory.addresses())
    schedule = AttackSchedule(
        pools,
        internet.topology.geo,
        config.schedule_config(),
        config.direct_attack_config(),
        config.reflection_attack_config(),
    )
    attacks = schedule.generate()
    log.debug("attacks scheduled", attacks=len(attacks), days=config.n_days)
    return attacks


def run_migration(
    config: ScenarioConfig,
    internet: InternetLayer,
    ground_truth: List[GroundTruthAttack],
) -> Tuple[BGPDiversionLog, MigrationLedger]:
    """Stage 3: behavioural DPS migration (mutates zone timelines)."""
    diversion_log = BGPDiversionLog()
    migration = MigrationSimulator(
        internet.zones,
        internet.providers,
        internet.ecosystem,
        config.migration_config(),
        diversion_log=diversion_log,
    )
    ledger = migration.run(ground_truth, config.n_days)
    return diversion_log, ledger


def telescope_capture(
    config: ScenarioConfig,
    ground_truth: List[GroundTruthAttack],
    fault=None,
    codec: str = "object",
):
    """The darknet capture (optionally degraded), materialized.

    Capture generation consumes a *shared sequential* RNG across attacks
    (backscatter and noise models), so it cannot be sharded without
    changing the stream; it runs once, and only the RNG-free detection
    downstream fans out. Fault filtering happens here too, so injector
    counters mutate in the calling process rather than in a fork child
    whose memory is thrown away.

    ``codec="columnar"`` returns the capture as
    :class:`~repro.net.columnar.PacketColumns` (encoded after fault
    filtering), which the detection shards consume through the columnar
    fast path.
    """
    if codec not in CAPTURE_CODECS:
        raise ValueError(
            f"unknown capture codec {codec!r} "
            f"(codecs: {', '.join(sorted(CAPTURE_CODECS))})"
        )
    noise = (
        TelescopeNoise(config.telescope_noise_config())
        if config.telescope_noise
        else None
    )
    telescope = NetworkTelescope(
        backscatter=BackscatterModel(config.backscatter_config()), noise=noise
    )
    capture = telescope.capture(ground_truth, n_days=config.n_days)
    if fault is not None:
        capture = fault.filter(capture)
    if codec == "columnar":
        return PacketColumns.from_batches(capture)
    return list(capture)


def _telescope_order(events: List[TelescopeEvent]) -> List[TelescopeEvent]:
    """Canonical event order: (start_ts, victim) is unique per event.

    The detector emits events in flow-expiry order, which depends on the
    interleaving of *other* victims' traffic — exactly the thing victim
    sharding changes. The flow content itself is a function of each
    victim's own batches only, so sorting both the serial and the merged
    sharded output into this canonical order makes them identical lists.
    """
    return sorted(events, key=lambda e: (e.start_ts, e.victim))


def detect_telescope_shard(
    config: ScenarioConfig,
    capture: List,
    shard_index: int,
    n_shards: int,
    detect_tier: Optional[str] = None,
):
    """RSDoS over one victim-partition of the capture.

    Flows are keyed by victim (``batch.src``) and their content depends
    only on that victim's batches, so partitioning by ``victim % n`` and
    re-sorting reproduces the serial result exactly. Day-based sharding
    would *not*: flows and gap timeouts cross day boundaries.

    ``detect_tier`` selects the detector; ``None`` matches the capture
    representation (the pre-tier behavior). The ``"sketch"`` tier
    returns a mergeable :class:`~repro.telescope.rsdos.TelescopeSketch`
    instead of an event list — :func:`merge_telescope_shards`
    materializes events from it.
    """
    codec = "columnar" if isinstance(capture, PacketColumns) else "object"
    tier = resolve_detect_tier(detect_tier, codec)
    if tier == "sketch":
        columns = (
            capture
            if isinstance(capture, PacketColumns)
            else PacketColumns.from_batches(capture)
        )
        return detect_telescope_sketch(
            config.rsdos_config(),
            columns,
            shard_index,
            n_shards,
            sketch_config=config.sketch_config(),
        )
    if tier == "columnar":
        columns = (
            capture
            if isinstance(capture, PacketColumns)
            else PacketColumns.from_batches(capture)
        )
        return detect_telescope_columns(
            config.rsdos_config(), columns, shard_index, n_shards
        )
    batches = (
        capture.to_batches() if isinstance(capture, PacketColumns) else capture
    )
    detector = RSDoSDetector(config.rsdos_config())
    sharded = (b for b in batches if b.src % n_shards == shard_index)
    return list(detector.run(sharded))


def observe_telescope(
    config: ScenarioConfig,
    ground_truth: List[GroundTruthAttack],
    fault=None,
    codec: str = "object",
    detect_tier: Optional[str] = None,
) -> List[TelescopeEvent]:
    """Stage 4: the darknet capture, optionally degraded, then RSDoS."""
    capture = telescope_capture(config, ground_truth, fault=fault, codec=codec)
    events = merge_telescope_shards(
        [detect_telescope_shard(config, capture, 0, 1, detect_tier)]
    )
    log.debug(
        "telescope observed",
        events=len(events),
        degraded=fault is not None and fault.dropped_batches > 0,
    )
    return events


def merge_telescope_shards(shards: List) -> List[TelescopeEvent]:
    """Merge per-shard detections into the canonical (serial) order.

    Accepts either per-shard event lists (exact/columnar tiers) or
    per-shard :class:`~repro.telescope.rsdos.TelescopeSketch` summaries,
    which are merged structurally before approximate events are
    materialized; fill/error gauges are exported for the merged sketch.
    """
    if shards and isinstance(shards[0], TelescopeSketch):
        summary = TelescopeSketch.merge_all(shards)
        export_sketch_metrics("telescope", summary.sketch)
        return _telescope_order(summary.events())
    merged: List[TelescopeEvent] = []
    for shard in shards:
        merged.extend(shard)
    return _telescope_order(merged)


def honeypot_capture(
    config: ScenarioConfig,
    ground_truth: List[GroundTruthAttack],
    fault=None,
    codec: str = "object",
):
    """The fleet's request log (optionally degraded), materialized.

    Like :func:`telescope_capture`: the fleet models draw from shared
    sequential RNG state, so capture is generated once and only the
    detection shards fan out. ``codec="columnar"`` returns
    :class:`~repro.honeypot.columnar.RequestColumns`.
    """
    if codec not in CAPTURE_CODECS:
        raise ValueError(
            f"unknown capture codec {codec!r} "
            f"(codecs: {', '.join(sorted(CAPTURE_CODECS))})"
        )
    fleet = AmpPotFleet(config.fleet_config())
    request_log = fleet.capture(
        ground_truth, n_days=config.n_days if config.honeypot_noise else 0
    )
    if fault is not None:
        request_log = fault.filter(request_log)
    if codec == "columnar":
        return RequestColumns.from_batches(request_log)
    return list(request_log)


def _honeypot_order(events: List[AmpPotEvent]) -> List[AmpPotEvent]:
    """Canonical order: (start_ts, victim, protocol) is unique per event."""
    return sorted(events, key=lambda e: (e.start_ts, e.victim, e.protocol))


def detect_honeypot_shard(
    config: ScenarioConfig,
    request_log: List,
    shard_index: int,
    n_shards: int,
    detect_tier: Optional[str] = None,
):
    """Honeypot event extraction over one victim-partition of the log.

    Flows are keyed by (victim, protocol); a victim partition keeps every
    flow whole, and closure content is gap-driven per key (sweep timing
    only changes *when* a flow closes, never what it contains).

    ``detect_tier`` selects the detector; ``None`` matches the capture
    representation. The ``"sketch"`` tier returns a mergeable
    :class:`~repro.honeypot.detection.HoneypotSketch`.
    """
    codec = "columnar" if isinstance(request_log, RequestColumns) else "object"
    tier = resolve_detect_tier(detect_tier, codec)
    if tier == "sketch":
        columns = (
            request_log
            if isinstance(request_log, RequestColumns)
            else RequestColumns.from_batches(request_log)
        )
        return detect_honeypot_sketch(
            config.honeypot_detection_config(),
            columns,
            shard_index,
            n_shards,
            sketch_config=config.sketch_config(),
        )
    if tier == "columnar":
        columns = (
            request_log
            if isinstance(request_log, RequestColumns)
            else RequestColumns.from_batches(request_log)
        )
        return detect_honeypot_columns(
            config.honeypot_detection_config(), columns, shard_index, n_shards
        )
    batches = (
        request_log.to_batches()
        if isinstance(request_log, RequestColumns)
        else request_log
    )
    detector = HoneypotDetector(config.honeypot_detection_config())
    sharded = (b for b in batches if b.victim % n_shards == shard_index)
    return list(detector.run(sharded))


def observe_honeypots(
    config: ScenarioConfig,
    ground_truth: List[GroundTruthAttack],
    fault=None,
    codec: str = "object",
    detect_tier: Optional[str] = None,
) -> List[AmpPotEvent]:
    """Stage 4b: the fleet's request log, optionally degraded, then events."""
    request_log = honeypot_capture(
        config, ground_truth, fault=fault, codec=codec
    )
    events = merge_honeypot_shards(
        [detect_honeypot_shard(config, request_log, 0, 1, detect_tier)]
    )
    log.debug("honeypots observed", events=len(events))
    return events


def merge_honeypot_shards(shards: List) -> List[AmpPotEvent]:
    """Merge per-shard detections into the canonical (serial) order.

    Accepts either per-shard event lists or per-shard
    :class:`~repro.honeypot.detection.HoneypotSketch` summaries (sketch
    tier), which are merged structurally before approximate events are
    materialized; fill/error gauges are exported for the merged sketch.
    """
    if shards and isinstance(shards[0], HoneypotSketch):
        summary = HoneypotSketch.merge_all(shards)
        export_sketch_metrics("honeypot", summary.sketch)
        return _honeypot_order(summary.events())
    merged: List[AmpPotEvent] = []
    for shard in shards:
        merged.extend(shard)
    return _honeypot_order(merged)


def measure_dns_shard(
    config: ScenarioConfig,
    internet: InternetLayer,
    diversion_log: BGPDiversionLog,
    shard_index: int,
    n_shards: int,
) -> Tuple[OpenIntelDataset, DPSUsageDataset]:
    """Stage 5 over one contiguous chunk of the zone list.

    Both the OpenINTEL compilation and the DPS scan iterate zones
    independently and append in zone order, so measuring contiguous
    chunks and concatenating in chunk order reproduces the serial
    output exactly — including ``first_seen`` dict insertion order.
    """
    from repro.exec.shard import split_even

    zones = split_even(internet.zones, n_shards)[shard_index]
    platform = OpenIntelPlatform(list(zones), config.n_days)
    openintel = platform.measure(ns_directory=internet.ns_directory)
    detector = DPSDetector(internet.providers, diversion_log=diversion_log)
    dps_usage = detector.scan(zones, config.n_days)
    return openintel, dps_usage


def merge_dns_shards(
    config: ScenarioConfig,
    parts: List[Tuple[OpenIntelDataset, DPSUsageDataset]],
) -> Tuple[OpenIntelDataset, DPSUsageDataset]:
    """Concatenate zone-chunk measurements back into the serial datasets."""
    openintel = OpenIntelDataset(
        n_days=config.n_days,
        zone_stats=[z for part, _ in parts for z in part.zone_stats],
        hosting_intervals=[
            iv for part, _ in parts for iv in part.hosting_intervals
        ],
        first_seen={
            name: day
            for part, _ in parts
            for name, day in part.first_seen.items()
        },
        mail_intervals=[
            iv for part, _ in parts for iv in part.mail_intervals
        ],
        ns_intervals=[iv for part, _ in parts for iv in part.ns_intervals],
    )
    dps_usage = DPSUsageDataset(
        usages=[u for _, part in parts for u in part.usages],
        n_days=config.n_days,
    )
    return openintel, dps_usage


def apply_dns_faults(
    openintel: OpenIntelDataset,
    dps_usage: DPSUsageDataset,
    openintel_fault=None,
    dps_fault=None,
) -> Tuple[OpenIntelDataset, DPSUsageDataset]:
    """Degrade the merged measurement; runs in the supervising process
    so injector counters are not lost in a fork child."""
    if openintel_fault is not None:
        openintel = openintel_fault.degrade(openintel)
    if dps_fault is not None:
        dps_usage = dps_fault.corrupt(dps_usage)
    return openintel, dps_usage


def measure_dns(
    config: ScenarioConfig,
    internet: InternetLayer,
    diversion_log: BGPDiversionLog,
    openintel_fault=None,
    dps_fault=None,
) -> Tuple[OpenIntelDataset, DPSUsageDataset]:
    """Stage 5: daily DNS measurement and DPS-signature detection."""
    openintel, dps_usage = measure_dns_shard(
        config, internet, diversion_log, 0, 1
    )
    return apply_dns_faults(
        openintel, dps_usage, openintel_fault=openintel_fault,
        dps_fault=dps_fault,
    )


def fuse_observations(
    internet: InternetLayer,
    telescope_events: List[TelescopeEvent],
    honeypot_events: List[AmpPotEvent],
    openintel: OpenIntelDataset,
) -> Tuple[FusedDataset, WebHostingIndex]:
    """Stage 6: annotate, fuse, and index the Web hosting intervals."""
    telescope_dataset = AttackDataset.from_telescope_events(
        telescope_events
    ).annotated(internet.topology.geo, internet.topology.routing)
    honeypot_dataset = AttackDataset.from_honeypot_events(
        honeypot_events
    ).annotated(internet.topology.geo, internet.topology.routing)
    fused = FusedDataset(telescope_dataset, honeypot_dataset)
    web_index = WebHostingIndex(openintel.hosting_intervals)
    return fused, web_index


def assemble_result(
    config: ScenarioConfig,
    internet: InternetLayer,
    diversion_log: BGPDiversionLog,
    ledger: MigrationLedger,
    ground_truth: List[GroundTruthAttack],
    telescope_events: List[TelescopeEvent],
    honeypot_events: List[AmpPotEvent],
    fused: FusedDataset,
    openintel: OpenIntelDataset,
    dps_usage: DPSUsageDataset,
    web_index: WebHostingIndex,
) -> SimulationResult:
    return SimulationResult(
        config=config,
        topology=internet.topology,
        census=internet.census,
        ecosystem=internet.ecosystem,
        zones=internet.zones,
        providers=internet.providers,
        ns_directory=internet.ns_directory,
        diversion_log=diversion_log,
        ledger=ledger,
        ground_truth=ground_truth,
        telescope_events=telescope_events,
        honeypot_events=honeypot_events,
        fused=fused,
        openintel=openintel,
        dps_usage=dps_usage,
        web_index=web_index,
    )


def run_simulation(config: ScenarioConfig = ScenarioConfig()) -> SimulationResult:
    """Run the full pipeline for one scenario (the healthy fast path)."""
    internet = build_internet(config)
    ground_truth = schedule_attacks(config, internet)
    diversion_log, ledger = run_migration(config, internet, ground_truth)
    telescope_events = observe_telescope(config, ground_truth)
    honeypot_events = observe_honeypots(config, ground_truth)
    openintel, dps_usage = measure_dns(config, internet, diversion_log)
    fused, web_index = fuse_observations(
        internet, telescope_events, honeypot_events, openintel
    )
    return assemble_result(
        config,
        internet,
        diversion_log,
        ledger,
        ground_truth,
        telescope_events,
        honeypot_events,
        fused,
        openintel,
        dps_usage,
        web_index,
    )
