"""End-to-end simulation: generate the Internet, attack it, measure it.

``run_simulation`` executes the full reproduction pipeline:

1. generate topology, address census, hosting ecosystem, DNS zones;
2. schedule two years of ground-truth attacks;
3. run the behavioural DPS-migration model (mutating DNS timelines);
4. observe the attacks through the telescope (backscatter + RSDoS) and the
   honeypot fleet (request logs + event extraction);
5. compile the OpenINTEL measurement and detect DPS usage from DNS;
6. annotate and fuse the event data sets.

The result object carries every layer so tests, examples and benchmarks can
reach both ground truth and observations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.attacks.attacker import GroundTruthAttack
from repro.attacks.schedule import AttackSchedule, TargetPools
from repro.core.events import AttackDataset
from repro.core.fusion import FusedDataset
from repro.core.webmap import WebHostingIndex
from repro.dns.openintel import OpenIntelDataset, OpenIntelPlatform
from repro.dns.nameservers import NameServerDirectory
from repro.dns.zone import Zone, ZoneGenerator
from repro.dps.detection import BGPDiversionLog, DPSDetector, DPSUsageDataset
from repro.dps.migration_sim import MigrationLedger, MigrationSimulator
from repro.dps.providers import DPSProvider, build_providers
from repro.honeypot.amppot import AmpPotFleet
from repro.honeypot.detection import AmpPotEvent, HoneypotDetector
from repro.internet.hosting import HostingEcosystem
from repro.internet.population import ActiveAddressCensus
from repro.internet.topology import InternetTopology
from repro.pipeline.config import ScenarioConfig
from repro.telescope.backscatter import BackscatterModel
from repro.telescope.darknet import NetworkTelescope, TelescopeNoise
from repro.telescope.rsdos import RSDoSDetector, TelescopeEvent


@dataclass
class SimulationResult:
    """Everything one scenario run produces."""

    config: ScenarioConfig
    topology: InternetTopology
    census: ActiveAddressCensus
    ecosystem: HostingEcosystem
    zones: List[Zone]
    providers: List[DPSProvider]
    ns_directory: NameServerDirectory
    diversion_log: BGPDiversionLog
    ledger: MigrationLedger
    ground_truth: List[GroundTruthAttack]
    telescope_events: List[TelescopeEvent]
    honeypot_events: List[AmpPotEvent]
    fused: FusedDataset
    openintel: OpenIntelDataset
    dps_usage: DPSUsageDataset
    web_index: WebHostingIndex

    @property
    def n_days(self) -> int:
        return self.config.n_days


def run_simulation(config: ScenarioConfig = ScenarioConfig()) -> SimulationResult:
    """Run the full pipeline for one scenario."""
    # 1. The Internet.
    topology = InternetTopology.generate(config.topology_config())
    census = ActiveAddressCensus.from_topology(
        topology, config.active_fraction, config.census_seed()
    )
    ecosystem = HostingEcosystem.generate(topology, config.hosting_config())
    zone_generator = ZoneGenerator(ecosystem, config.zone_config())
    zones = zone_generator.generate()
    providers = build_providers(topology)
    ns_directory = NameServerDirectory.build(ecosystem, providers, topology)

    # 2. Ground-truth attacks.
    dps_infra_ips = [
        address for provider in providers for address in provider.edge_addresses()
    ]
    pools = TargetPools.build(
        topology,
        ecosystem,
        self_hosted_web_ips=zone_generator.self_hosted_web_ips(),
        dps_infra_ips=dps_infra_ips,
    )
    # Name servers share the mail/infrastructure target pool: both are
    # non-Web supporting services the paper found under attack.
    pools.mail.extend(ns_directory.addresses())
    schedule = AttackSchedule(
        pools,
        topology.geo,
        config.schedule_config(),
        config.direct_attack_config(),
        config.reflection_attack_config(),
    )
    ground_truth = schedule.generate()

    # 3. Behavioural DPS migration (mutates zone timelines).
    diversion_log = BGPDiversionLog()
    migration = MigrationSimulator(
        zones,
        providers,
        ecosystem,
        config.migration_config(),
        diversion_log=diversion_log,
    )
    ledger = migration.run(ground_truth, config.n_days)

    # 4. Observation: telescope.
    noise = (
        TelescopeNoise(config.telescope_noise_config())
        if config.telescope_noise
        else None
    )
    telescope = NetworkTelescope(
        backscatter=BackscatterModel(config.backscatter_config()), noise=noise
    )
    capture = telescope.capture(ground_truth, n_days=config.n_days)
    telescope_events = list(RSDoSDetector(config.rsdos_config()).run(capture))

    # 4b. Observation: honeypots.
    fleet = AmpPotFleet(config.fleet_config())
    request_log = fleet.capture(
        ground_truth, n_days=config.n_days if config.honeypot_noise else 0
    )
    honeypot_events = list(
        HoneypotDetector(config.honeypot_detection_config()).run(request_log)
    )

    # 5. DNS measurement and DPS detection.
    platform = OpenIntelPlatform(zones, config.n_days)
    openintel = platform.measure(ns_directory=ns_directory)
    detector = DPSDetector(providers, diversion_log=diversion_log)
    dps_usage = detector.scan(zones, config.n_days)

    # 6. Fusion.
    telescope_dataset = AttackDataset.from_telescope_events(
        telescope_events
    ).annotated(topology.geo, topology.routing)
    honeypot_dataset = AttackDataset.from_honeypot_events(
        honeypot_events
    ).annotated(topology.geo, topology.routing)
    fused = FusedDataset(telescope_dataset, honeypot_dataset)
    web_index = WebHostingIndex(openintel.hosting_intervals)

    return SimulationResult(
        config=config,
        topology=topology,
        census=census,
        ecosystem=ecosystem,
        zones=zones,
        providers=providers,
        ns_directory=ns_directory,
        diversion_log=diversion_log,
        ledger=ledger,
        ground_truth=ground_truth,
        telescope_events=telescope_events,
        honeypot_events=honeypot_events,
        fused=fused,
        openintel=openintel,
        dps_usage=dps_usage,
        web_index=web_index,
    )
