"""Serialization of event data sets (JSON Lines) with untrusted-input loading.

A run's observed events can be persisted and reloaded without re-simulating,
the way the real study's event data sets are files decoupled from the
infrastructure that produced them. Saved files are written atomically and
durably (temp file + fsync + rename + parent-directory fsync), and loading
treats the file as *untrusted*: every record is validated against the
:class:`~repro.core.events.AttackEvent` schema, and malformed, duplicate or
out-of-range records are routed to a quarantine (dead-letter) JSONL with a
stable reason code instead of crashing the load. One truncated line in a
two-year feed must cost one record, not the run.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.core.events import (
    AttackEvent,
    EVENT_SCHEMA_VERSION,
    validate_event_dict,
)
from repro.log import get_logger
from repro.obs.metrics import get_registry
from repro.store.atomic import fsync_directory

log = get_logger("datasets")

#: Reason codes produced by the loader itself (the schema validator in
#: :mod:`repro.core.events` produces the field-level ones).
REASON_UNPARSEABLE = "unparseable-json"
REASON_DUPLICATE = "duplicate"

#: Common suffix for dead-letter files, so they are recognisable on disk.
QUARANTINE_SUFFIX = ".quarantine.jsonl"


def quarantine_path_for(
    events_path: Union[str, Path],
    feed: str = "",
    directory: Optional[Union[str, Path]] = None,
) -> Path:
    """Dead-letter path for one feed's load, namespaced per feed.

    Historically the convention was ``<events file>.quarantine.jsonl``;
    when several feeds load files with the same name into one run
    directory, their dead-letter writes collide and the last load's
    atomic replace silently erases the earlier feed's rejected records.
    Passing *feed* yields ``<events file>.<feed>.quarantine.jsonl``, so
    each feed keeps its own file. *directory* overrides the parent (by
    default the quarantine sits next to its events file).
    """
    events_path = Path(events_path)
    base = Path(directory) if directory is not None else events_path.parent
    middle = f".{feed}" if feed else ""
    return base / f"{events_path.name}{middle}{QUARANTINE_SUFFIX}"


def event_to_dict(event: AttackEvent) -> dict:
    return {
        "source": event.source,
        "target": event.target,
        "start_ts": event.start_ts,
        "end_ts": event.end_ts,
        "intensity": event.intensity,
        "ip_proto": event.ip_proto,
        "ports": list(event.ports),
        "reflector_protocol": event.reflector_protocol,
        "packets": event.packets,
        "country": event.country,
        "asn": event.asn,
    }


def event_from_dict(data: dict) -> AttackEvent:
    return AttackEvent(
        source=data["source"],
        target=data["target"],
        start_ts=data["start_ts"],
        end_ts=data["end_ts"],
        intensity=data["intensity"],
        ip_proto=data.get("ip_proto", 0),
        ports=tuple(data.get("ports", ())),
        reflector_protocol=data.get("reflector_protocol"),
        packets=data.get("packets", 0),
        country=data.get("country", "??"),
        asn=data.get("asn"),
    )


def save_events_jsonl(
    events: Iterable[AttackEvent], path: Union[str, Path]
) -> int:
    """Write events as JSON Lines, atomically and durably; returns the count.

    The file is written to a same-directory temp path and moved into place
    with :func:`os.replace`, so an interrupted run (crash, kill, injected
    stage failure) can never leave a truncated data set behind — readers
    see either the previous complete file or the new complete file. After
    the rename the parent directory is fsynced, so the *rename itself*
    survives power loss, and the temp file is only unlinked when the
    replace did not happen (never racing a successful rename against a
    concurrent writer's fresh temp file).
    """
    count = 0
    dumps = json.dumps
    with _atomic_text_writer(path) as handle:
        # Chunked writes: lines are batched and joined so the hot loop
        # performs one handle.write per WRITE_CHUNK_LINES events instead
        # of one per event. The bytes are identical to the line-at-a-time
        # path (each line still ends in exactly one newline).
        chunk: list = []
        for event in events:
            chunk.append(dumps(event_to_dict(event)))
            count += 1
            if len(chunk) >= WRITE_CHUNK_LINES:
                handle.write("\n".join(chunk) + "\n")
                chunk.clear()
        if chunk:
            handle.write("\n".join(chunk) + "\n")
    log.debug("events saved", path=str(path), events=count)
    return count


#: Lines per buffered write in the chunked JSONL serializers.
WRITE_CHUNK_LINES = 4096

#: Userspace buffer for the atomic text writer: large enough that a
#: chunked write rarely crosses into the OS more than once.
WRITE_BUFFER_BYTES = 1 << 20


@contextmanager
def _atomic_text_writer(path: Union[str, Path]):
    """Same-directory temp file that durably replaces *path* on success."""
    path = Path(path)
    tmp_path = path.with_name(path.name + ".tmp")
    replaced = False
    try:
        with open(
            tmp_path, "w", encoding="utf-8", buffering=WRITE_BUFFER_BYTES
        ) as handle:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
        replaced = True
        fsync_directory(path.parent)
    finally:
        if not replaced:
            try:
                tmp_path.unlink()
            except FileNotFoundError:
                pass


# -- validated loading --------------------------------------------------------


@dataclass(frozen=True)
class QuarantinedRecord:
    """One rejected input line and why it was rejected."""

    line_no: int
    reason: str
    raw: str

    def to_dict(self) -> dict:
        return {
            "line_no": self.line_no,
            "reason": self.reason,
            "raw": self.raw,
            "schema_version": EVENT_SCHEMA_VERSION,
        }


@dataclass
class FeedLoadReport:
    """Data-quality accounting for one validated JSONL load."""

    path: str
    loaded: int = 0
    quarantined: List[QuarantinedRecord] = field(default_factory=list)
    quarantine_path: Optional[str] = None
    #: Which feed the file belongs to ("telescope", "honeypot", ...);
    #: namespaces the dead-letter file and keys per-feed counts in the
    #: data-quality report. Empty for ad-hoc loads.
    feed: str = ""

    @property
    def rejected(self) -> int:
        return len(self.quarantined)

    @property
    def duplicates(self) -> int:
        return sum(
            1 for r in self.quarantined if r.reason == REASON_DUPLICATE
        )

    def reason_counts(self) -> Dict[str, int]:
        """Stable ``reason code -> count`` map (sorted by reason)."""
        counts: Dict[str, int] = {}
        for record in self.quarantined:
            counts[record.reason] = counts.get(record.reason, 0) + 1
        return dict(sorted(counts.items()))

    def describe(self) -> str:
        parts = [f"{self.loaded} loaded", f"{self.rejected} quarantined"]
        reasons = self.reason_counts()
        if reasons:
            parts.append(
                ", ".join(f"{reason}×{n}" for reason, n in reasons.items())
            )
        return "; ".join(parts)


class MalformedRecordError(ValueError):
    """Strict-mode load hit a record the schema rejects."""

    def __init__(self, path: str, record: QuarantinedRecord) -> None:
        super().__init__(
            f"{path}:{record.line_no}: {record.reason}"
        )
        self.path = path
        self.record = record


def read_events_jsonl(
    path: Union[str, Path],
    strict: bool = False,
    quarantine_path: Optional[Union[str, Path]] = None,
    feed: str = "",
) -> Tuple[List[AttackEvent], FeedLoadReport]:
    """Read a JSONL event feed, validating every record.

    Tolerant mode (default) skips-and-counts bad records; strict mode
    raises :class:`MalformedRecordError` on the first one (the historical
    behaviour, for pipelines that prefer to stop on corrupt input). When
    *quarantine_path* is given, rejected records are written there as a
    dead-letter JSONL (one object per record with ``line_no``, ``reason``
    and the raw line) — only created when something was rejected. *feed*
    names the feed the file belongs to: it tags the report (for per-feed
    accounting in the quality report) and, when no explicit
    *quarantine_path* was given, selects the collision-free default
    dead-letter path from :func:`quarantine_path_for`.
    """
    path = Path(path)
    if quarantine_path is None and feed:
        quarantine_path = quarantine_path_for(path, feed)
    report = FeedLoadReport(path=str(path), feed=feed)
    events: List[AttackEvent] = []
    seen: Set[AttackEvent] = set()
    # errors="replace": a corrupt byte must surface as an unparseable
    # *record* (quarantined with a reason), not kill the whole read with
    # a UnicodeDecodeError halfway through the file.
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            reason: Optional[str] = None
            event: Optional[AttackEvent] = None
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                reason = REASON_UNPARSEABLE
            else:
                reason = validate_event_dict(data)
                if reason is None:
                    event = event_from_dict(data)
                    if event in seen:
                        reason, event = REASON_DUPLICATE, None
            if reason is not None:
                rejected = QuarantinedRecord(line_no, reason, line)
                if strict:
                    raise MalformedRecordError(str(path), rejected)
                report.quarantined.append(rejected)
                continue
            seen.add(event)
            events.append(event)
    report.loaded = len(events)
    if report.quarantined:
        dropped = get_registry().counter(
            "records_quarantined_total",
            "records routed to the dead-letter file",
            ("feed", "reason"),
        )
        feed_label = feed or "unknown"
        for reason, count in report.reason_counts().items():
            dropped.inc(count, feed=feed_label, reason=reason)
    if quarantine_path is not None and report.quarantined:
        report.quarantine_path = str(quarantine_path)
        write_quarantine_jsonl(report.quarantined, quarantine_path)
    if report.rejected:
        log.warning(
            "records quarantined",
            path=str(path),
            loaded=report.loaded,
            rejected=report.rejected,
            reasons=",".join(
                f"{r}×{n}" for r, n in report.reason_counts().items()
            ),
        )
    else:
        log.debug("events loaded", path=str(path), events=report.loaded)
    return events, report


def load_events_jsonl(
    path: Union[str, Path],
    strict: bool = False,
    quarantine_path: Optional[Union[str, Path]] = None,
    feed: str = "",
) -> List[AttackEvent]:
    """Read events back from a JSON Lines file (validated, tolerant).

    Convenience wrapper over :func:`read_events_jsonl` for callers that
    only want the events; pass ``strict=True`` to crash on the first bad
    record instead of quarantining it.
    """
    events, _report = read_events_jsonl(
        path, strict=strict, quarantine_path=quarantine_path, feed=feed
    )
    return events


def write_quarantine_jsonl(
    records: Iterable[QuarantinedRecord], path: Union[str, Path]
) -> int:
    """Write rejected records as a dead-letter JSONL file (atomically)."""
    count = 0
    dumps = json.dumps
    with _atomic_text_writer(path) as handle:
        chunk: list = []
        for record in records:
            chunk.append(dumps(record.to_dict(), sort_keys=True))
            count += 1
            if len(chunk) >= WRITE_CHUNK_LINES:
                handle.write("\n".join(chunk) + "\n")
                chunk.clear()
        if chunk:
            handle.write("\n".join(chunk) + "\n")
    return count


__all__ = [
    "QUARANTINE_SUFFIX",
    "REASON_DUPLICATE",
    "REASON_UNPARSEABLE",
    "FeedLoadReport",
    "quarantine_path_for",
    "MalformedRecordError",
    "QuarantinedRecord",
    "event_from_dict",
    "event_to_dict",
    "load_events_jsonl",
    "read_events_jsonl",
    "save_events_jsonl",
    "write_quarantine_jsonl",
]
