"""Serialization of event data sets (JSON Lines).

A run's observed events can be persisted and reloaded without re-simulating,
the way the real study's event data sets are files decoupled from the
infrastructure that produced them.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable, List, Union

from repro.core.events import AttackEvent


def event_to_dict(event: AttackEvent) -> dict:
    return {
        "source": event.source,
        "target": event.target,
        "start_ts": event.start_ts,
        "end_ts": event.end_ts,
        "intensity": event.intensity,
        "ip_proto": event.ip_proto,
        "ports": list(event.ports),
        "reflector_protocol": event.reflector_protocol,
        "packets": event.packets,
        "country": event.country,
        "asn": event.asn,
    }


def event_from_dict(data: dict) -> AttackEvent:
    return AttackEvent(
        source=data["source"],
        target=data["target"],
        start_ts=data["start_ts"],
        end_ts=data["end_ts"],
        intensity=data["intensity"],
        ip_proto=data.get("ip_proto", 0),
        ports=tuple(data.get("ports", ())),
        reflector_protocol=data.get("reflector_protocol"),
        packets=data.get("packets", 0),
        country=data.get("country", "??"),
        asn=data.get("asn"),
    )


def save_events_jsonl(
    events: Iterable[AttackEvent], path: Union[str, Path]
) -> int:
    """Write events as JSON Lines, atomically; returns the number written.

    The file is written to a same-directory temp path and moved into place
    with :func:`os.replace`, so an interrupted run (crash, kill, injected
    stage failure) can never leave a truncated data set behind — readers
    see either the previous complete file or the new complete file.
    """
    path = Path(path)
    tmp_path = path.with_name(path.name + ".tmp")
    count = 0
    try:
        with open(tmp_path, "w", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event_to_dict(event)) + "\n")
                count += 1
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    finally:
        if tmp_path.exists():
            tmp_path.unlink()
    return count


def load_events_jsonl(path: Union[str, Path]) -> List[AttackEvent]:
    """Read events back from a JSON Lines file."""
    events: List[AttackEvent] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(event_from_dict(json.loads(line)))
    return events
