"""Scenario configuration: one master knob set deriving every component.

A :class:`ScenarioConfig` pins the scale (days, domains, attack volumes,
AS count) and a master seed; per-component seeds are derived from the
master so any scenario is fully reproducible from a single integer. The
presets trade runtime for fidelity:

* ``small()``   — seconds; CI and unit-test scale.
* ``default()`` — tens of seconds; examples and development.
* ``paper()``   — the full 731-day window at reduced density; minutes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.attacks.direct import DirectAttackConfig
from repro.attacks.reflection import ReflectionAttackConfig
from repro.attacks.schedule import ScheduleConfig
from repro.dns.zone import ZoneConfig
from repro.dps.migration_sim import MigrationConfig
from repro.honeypot.amppot import FleetConfig
from repro.honeypot.detection import DetectionConfig
from repro.internet.hosting import HostingConfig
from repro.internet.topology import TopologyConfig
from repro.sketch.engine import SketchConfig
from repro.telescope.backscatter import BackscatterConfig
from repro.telescope.darknet import NoiseConfig
from repro.telescope.rsdos import RSDoSConfig


def _derive(seed: int, tag: str) -> int:
    """Stable per-component seed derivation from the master seed."""
    value = seed & 0xFFFFFFFF
    for char in tag:
        value = (value * 1000003) ^ ord(char)
        value &= 0xFFFFFFFF
    return value


@dataclass(frozen=True)
class ScenarioConfig:
    """Master scenario parameters."""

    seed: int = 42
    n_days: int = 120
    n_domains: int = 8000
    n_ases: int = 400
    direct_per_day: float = 40.0
    reflection_per_day: float = 27.0
    n_honeypots: int = 24
    active_fraction: float = 0.55
    telescope_noise: bool = True
    honeypot_noise: bool = True

    @classmethod
    def small(cls) -> "ScenarioConfig":
        """Unit-test scale: runs in a few seconds."""
        return cls(
            n_days=60,
            n_domains=2500,
            n_ases=150,
            direct_per_day=18.0,
            reflection_per_day=12.0,
        )

    @classmethod
    def default(cls) -> "ScenarioConfig":
        return cls()

    @classmethod
    def paper(cls) -> "ScenarioConfig":
        """The full two-year window (2015-03-01 .. 2017-02-28: 731 days).

        Sized so that the paper's headline ratio — roughly a third of the
        active /24 blocks attacked at least once — emerges from the attack
        volume against the synthetic address census.
        """
        return cls(
            n_days=731,
            n_domains=20_000,
            n_ases=280,
            direct_per_day=80.0,
            reflection_per_day=55.0,
        )

    # -- derived component configs ------------------------------------------

    def topology_config(self) -> TopologyConfig:
        return TopologyConfig(
            seed=_derive(self.seed, "topology"),
            n_ases=self.n_ases,
            active_fraction=self.active_fraction,
        )

    def hosting_config(self) -> HostingConfig:
        return HostingConfig(seed=_derive(self.seed, "hosting"))

    def zone_config(self) -> ZoneConfig:
        return ZoneConfig(
            seed=_derive(self.seed, "zone"),
            n_domains=self.n_domains,
            n_days=self.n_days,
        )

    def schedule_config(self) -> ScheduleConfig:
        return ScheduleConfig(
            seed=_derive(self.seed, "schedule"),
            n_days=self.n_days,
            direct_per_day=self.direct_per_day,
            reflection_per_day=self.reflection_per_day,
        )

    def direct_attack_config(self) -> DirectAttackConfig:
        return DirectAttackConfig()

    def reflection_attack_config(self) -> ReflectionAttackConfig:
        return ReflectionAttackConfig()

    def backscatter_config(self) -> BackscatterConfig:
        return BackscatterConfig(seed=_derive(self.seed, "backscatter"))

    def telescope_noise_config(self) -> NoiseConfig:
        return NoiseConfig(seed=_derive(self.seed, "tel-noise"))

    def rsdos_config(self) -> RSDoSConfig:
        return RSDoSConfig()

    def fleet_config(self) -> FleetConfig:
        return FleetConfig(
            seed=_derive(self.seed, "fleet"), n_instances=self.n_honeypots
        )

    def honeypot_detection_config(self) -> DetectionConfig:
        return DetectionConfig()

    def sketch_config(self) -> SketchConfig:
        """Geometry for the sketch detection tier.

        The hash seed derives from the master seed so sketch register
        states are reproducible per scenario; the default capacity is
        deliberately above the distinct-victim counts of every preset so
        sharded sketch detection stays result-identical to single-shard
        (no eviction, exact heavy-table union).
        """
        return SketchConfig(seed=_derive(self.seed, "sketch"))

    def migration_config(self) -> MigrationConfig:
        return MigrationConfig(seed=_derive(self.seed, "migration"))

    def census_seed(self) -> int:
        return _derive(self.seed, "census")

    def with_seed(self, seed: int) -> "ScenarioConfig":
        return replace(self, seed=seed)
