"""End-to-end orchestration: scenario configs, simulation, serialization."""

from repro.pipeline.config import ScenarioConfig
from repro.pipeline.simulation import SimulationResult, run_simulation
from repro.pipeline.datasets import (
    load_events_jsonl,
    save_events_jsonl,
)

__all__ = [
    "ScenarioConfig",
    "SimulationResult",
    "run_simulation",
    "load_events_jsonl",
    "save_events_jsonl",
]
