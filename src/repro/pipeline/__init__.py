"""End-to-end orchestration: scenario configs, simulation, serialization,
resilient stage running and data-quality reporting."""

from repro.pipeline.config import ScenarioConfig
from repro.pipeline.simulation import SimulationResult, run_simulation
from repro.pipeline.datasets import (
    FeedLoadReport,
    MalformedRecordError,
    load_events_jsonl,
    read_events_jsonl,
    save_events_jsonl,
)
from repro.pipeline.quality import (
    DataQualityReport,
    FeedQuality,
    HeadlineMetrics,
    RecordQuality,
    StageReport,
)
from repro.pipeline.runner import (
    ResilientPipeline,
    RetryPolicy,
    StageFailedError,
    TransientStageError,
    run_resilient,
)

__all__ = [
    "ScenarioConfig",
    "SimulationResult",
    "run_simulation",
    "FeedLoadReport",
    "MalformedRecordError",
    "load_events_jsonl",
    "read_events_jsonl",
    "save_events_jsonl",
    "DataQualityReport",
    "FeedQuality",
    "HeadlineMetrics",
    "RecordQuality",
    "StageReport",
    "ResilientPipeline",
    "RetryPolicy",
    "StageFailedError",
    "TransientStageError",
    "run_resilient",
]
