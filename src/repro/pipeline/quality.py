"""Data-quality accounting for degraded runs.

A fused result produced through imperfect sensors is only honest if it
carries how imperfect they were. :class:`DataQualityReport` states, per
feed, the planned uptime, what was observed and what was dropped, and —
when a fault-free baseline is available — how far the paper's headline
ratios drifted because of the faults. Rendering is deterministic (no
wall-clock content), so a fixed seed and fault plan reproduce identical
reports across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.taxonomy import classify_sites, taxonomy_counts
from repro.core.webmap import WebImpactAnalysis
from repro.exec.breaker import BreakerReport
from repro.faults.plan import ALL_FEEDS

#: Feed health states, in decreasing order of trust.
STATUS_OK = "ok"
STATUS_DEGRADED = "degraded"
STATUS_DOWN = "down"


@dataclass(frozen=True)
class HeadlineMetrics:
    """The paper's headline ratios for one run (the ``headline`` command)."""

    attacks: int
    unique_targets: int
    attacked_slash24_fraction: float
    attacked_site_fraction: float
    migrating_fraction: float

    @classmethod
    def from_result(cls, result) -> "HeadlineMetrics":
        fraction = result.census.attacked_fraction(
            result.fused.combined.unique_slash24s()
        )
        impact = WebImpactAnalysis(result.web_index)
        histories = impact.site_histories(result.fused.combined.events)
        counts = taxonomy_counts(
            classify_sites(
                result.openintel.first_seen,
                {d: h.first_attack_day() for d, h in histories.items()},
                result.dps_usage.first_day_by_domain(),
            )
        )
        return cls(
            attacks=len(result.fused.combined),
            unique_targets=len(result.fused.combined.unique_targets()),
            attacked_slash24_fraction=fraction,
            attacked_site_fraction=counts.attacked_fraction,
            migrating_fraction=counts.attacked_migrating_fraction,
        )

    def to_dict(self) -> dict:
        return {
            "attacks": self.attacks,
            "unique_targets": self.unique_targets,
            "attacked_slash24_fraction": self.attacked_slash24_fraction,
            "attacked_site_fraction": self.attacked_site_fraction,
            "migrating_fraction": self.migrating_fraction,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HeadlineMetrics":
        return cls(
            attacks=data["attacks"],
            unique_targets=data["unique_targets"],
            attacked_slash24_fraction=data["attacked_slash24_fraction"],
            attacked_site_fraction=data["attacked_site_fraction"],
            migrating_fraction=data["migrating_fraction"],
        )

    def drift_from(self, baseline: "HeadlineMetrics") -> Dict[str, float]:
        """Absolute drift of each ratio vs. a fault-free baseline."""
        return {
            "attacked_slash24_fraction": abs(
                self.attacked_slash24_fraction
                - baseline.attacked_slash24_fraction
            ),
            "attacked_site_fraction": abs(
                self.attacked_site_fraction - baseline.attacked_site_fraction
            ),
            "migrating_fraction": abs(
                self.migrating_fraction - baseline.migrating_fraction
            ),
        }


@dataclass(frozen=True)
class FeedQuality:
    """Health of one measurement feed over the run."""

    feed: str
    uptime: float
    events_observed: int
    events_dropped: int
    status: str
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "feed": self.feed,
            "uptime": self.uptime,
            "events_observed": self.events_observed,
            "events_dropped": self.events_dropped,
            "status": self.status,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FeedQuality":
        return cls(
            feed=data["feed"],
            uptime=data["uptime"],
            events_observed=data["events_observed"],
            events_dropped=data["events_dropped"],
            status=data["status"],
            detail=data.get("detail", ""),
        )


@dataclass(frozen=True)
class RecordQuality:
    """Record-level validation accounting for one serialized feed load.

    Built from a :class:`~repro.pipeline.datasets.FeedLoadReport` so the
    quality report can state how many records a feed file lost to
    quarantine, and why (reason code -> count).
    """

    source: str
    loaded: int
    quarantined: int
    reasons: Tuple[Tuple[str, int], ...] = ()
    quarantine_path: Optional[str] = None
    #: Which feed the load belonged to; namespaces the dead-letter file
    #: so two feeds quarantining in the same run dir cannot collide.
    feed: str = ""

    @classmethod
    def from_load_report(cls, report) -> "RecordQuality":
        return cls(
            source=report.path,
            loaded=report.loaded,
            quarantined=report.rejected,
            reasons=tuple(report.reason_counts().items()),
            quarantine_path=report.quarantine_path,
            feed=getattr(report, "feed", ""),
        )

    def to_dict(self) -> dict:
        return {
            "source": self.source,
            "loaded": self.loaded,
            "quarantined": self.quarantined,
            "reasons": [[reason, count] for reason, count in self.reasons],
            "quarantine_path": self.quarantine_path,
            "feed": self.feed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RecordQuality":
        return cls(
            source=data["source"],
            loaded=data["loaded"],
            quarantined=data["quarantined"],
            reasons=tuple(
                (reason, count) for reason, count in data.get("reasons", ())
            ),
            quarantine_path=data.get("quarantine_path"),
            feed=data.get("feed", ""),
        )


@dataclass
class StageReport:
    """Outcome of one orchestrated stage."""

    name: str
    # "cached" is a same-run checkpoint hit; "cache-hit" is the
    # cross-run stage cache (see repro.store.stagecache).
    status: str  # "ok" | "degraded" | "failed" | "cached" | "cache-hit"
    attempts: int = 1
    elapsed: float = 0.0
    error: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "status": self.status,
            "attempts": self.attempts,
            "elapsed": self.elapsed,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StageReport":
        return cls(
            name=data["name"],
            status=data["status"],
            attempts=data.get("attempts", 1),
            elapsed=data.get("elapsed", 0.0),
            error=data.get("error"),
        )


@dataclass
class DataQualityReport:
    """Everything a consumer needs to trust (or distrust) a degraded run."""

    feeds: List[FeedQuality] = field(default_factory=list)
    stages: List[StageReport] = field(default_factory=list)
    records: List[RecordQuality] = field(default_factory=list)
    headline: Optional[HeadlineMetrics] = None
    baseline: Optional[HeadlineMetrics] = None
    plan_description: str = ""
    breakers: List[BreakerReport] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-safe form (the ``quality.json`` run artifact)."""
        return {
            "plan_description": self.plan_description,
            "feeds": [f.to_dict() for f in self.feeds],
            "stages": [s.to_dict() for s in self.stages],
            "records": [r.to_dict() for r in self.records],
            "breakers": [b.to_dict() for b in self.breakers],
            "headline": self.headline.to_dict() if self.headline else None,
            "baseline": self.baseline.to_dict() if self.baseline else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DataQualityReport":
        headline = data.get("headline")
        baseline = data.get("baseline")
        return cls(
            feeds=[FeedQuality.from_dict(f) for f in data.get("feeds", ())],
            stages=[StageReport.from_dict(s) for s in data.get("stages", ())],
            records=[
                RecordQuality.from_dict(r) for r in data.get("records", ())
            ],
            headline=HeadlineMetrics.from_dict(headline) if headline else None,
            baseline=HeadlineMetrics.from_dict(baseline) if baseline else None,
            plan_description=data.get("plan_description", ""),
            breakers=[
                BreakerReport.from_dict(b) for b in data.get("breakers", ())
            ],
        )

    def per_feed_quarantine_counts(self) -> Dict[str, int]:
        """Quarantined-record totals keyed by feed (satellite: surfacing
        the per-feed dead-letter accounting)."""
        counts: Dict[str, int] = {}
        for record in self.records:
            key = record.feed or record.source
            counts[key] = counts.get(key, 0) + record.quarantined
        return counts

    def feed(self, name: str) -> FeedQuality:
        for quality in self.feeds:
            if quality.feed == name:
                return quality
        raise KeyError(f"no quality entry for feed {name!r}")

    @property
    def degraded(self) -> bool:
        return any(f.status != STATUS_OK for f in self.feeds) or any(
            r.quarantined > 0 for r in self.records
        )

    def headline_drift(self) -> Dict[str, float]:
        if self.headline is None or self.baseline is None:
            return {}
        return self.headline.drift_from(self.baseline)

    def render(self, timings: bool = False) -> str:
        """A deterministic text report (timings opt-in: they vary per run)."""
        lines: List[str] = ["=== Data quality report ==="]
        if self.plan_description:
            lines.append(self.plan_description)
        lines.append("")
        lines.append(
            f"{'feed':<10} {'status':<9} {'uptime':>7} "
            f"{'observed':>9} {'dropped':>8}"
        )
        for quality in self.feeds:
            lines.append(
                f"{quality.feed:<10} {quality.status:<9} "
                f"{quality.uptime:>6.1%} {quality.events_observed:>9} "
                f"{quality.events_dropped:>8}"
                + (f"  ({quality.detail})" if quality.detail else "")
            )
        if self.records:
            lines.append("")
            lines.append("record validation:")
            for record in self.records:
                entry = (
                    f"  {record.source}: {record.loaded} loaded, "
                    f"{record.quarantined} quarantined"
                )
                if record.reasons:
                    entry += " (" + ", ".join(
                        f"{reason}×{count}"
                        for reason, count in record.reasons
                    ) + ")"
                lines.append(entry)
                if record.quarantine_path:
                    lines.append(
                        f"    dead-letter file: {record.quarantine_path}"
                    )
            per_feed = self.per_feed_quarantine_counts()
            if sum(per_feed.values()):
                lines.append(
                    "  per feed: "
                    + ", ".join(
                        f"{feed}={count}"
                        for feed, count in sorted(per_feed.items())
                    )
                )
        tripped = [b for b in self.breakers if b.transitions]
        if tripped:
            lines.append("")
            lines.append("circuit breakers:")
            for breaker in tripped:
                lines.append(f"  {breaker.describe()}")
        if self.stages:
            lines.append("")
            lines.append("stages:")
            for stage in self.stages:
                entry = f"  {stage.name:<12} {stage.status}"
                if stage.attempts > 1:
                    entry += f" after {stage.attempts} attempts"
                if timings:
                    entry += f" in {stage.elapsed:.2f}s"
                if stage.error:
                    entry += f" [{stage.error}]"
                lines.append(entry)
        if self.headline is not None:
            lines.append("")
            lines.append(
                f"attacks observed:      {self.headline.attacks}"
            )
            lines.append(
                f"unique targets:        {self.headline.unique_targets}"
            )
            lines.append(
                "active /24s attacked:  "
                f"{self.headline.attacked_slash24_fraction:.1%}"
            )
            lines.append(
                "sites on attacked IPs: "
                f"{self.headline.attacked_site_fraction:.1%}"
            )
            lines.append(
                "attacked sites moving: "
                f"{self.headline.migrating_fraction:.2%}"
            )
        drift = self.headline_drift()
        if drift:
            lines.append("")
            lines.append("headline-ratio drift vs. fault-free baseline:")
            for name, value in drift.items():
                lines.append(f"  {name:<26} {value:+.2%}")
        return "\n".join(lines)


def feed_status(uptime: float, dropped: int) -> str:
    """Classify a feed from planned uptime and realized losses."""
    if uptime <= 0.0:
        return STATUS_DOWN
    if uptime < 1.0 or dropped > 0:
        return STATUS_DEGRADED
    return STATUS_OK


__all__ = [
    "ALL_FEEDS",
    "BreakerReport",
    "STATUS_OK",
    "STATUS_DEGRADED",
    "STATUS_DOWN",
    "HeadlineMetrics",
    "FeedQuality",
    "RecordQuality",
    "StageReport",
    "DataQualityReport",
    "feed_status",
]
