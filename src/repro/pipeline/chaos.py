"""Chaos drill: exercise the executor's failure envelope end to end.

Unit tests prove each supervision mechanism (watchdog, breaker, shard
checkpoints) in isolation; the drill proves the *composition*: a full
pipeline run under each injected execution fault must either recover to
byte-identical output or complete visibly degraded — and must never hang
past its time budget. ``python -m repro chaos`` runs it from the CLI and
CI runs ``chaos --quick`` as a smoke job.

Each scenario runs the sharded pipeline with one
:class:`~repro.faults.exec.ExecFaultPlan` armed and checks the outcome
against a serial fault-free baseline:

* ``hung-worker``  — a shard sleeps forever; the watchdog must kill it at
  the task deadline and the retry must recover byte-identically;
* ``slow-worker``  — a shard is delayed but finishes inside its deadline;
  output must be byte-identical (skipped under ``--quick``);
* ``worker-crash`` — a forked worker dies mid-shard; the retry recomputes
  only the failed shard and output must be byte-identical;
* ``poison-shard`` — a shard fails on every attempt; the feed must degrade
  through the empty-typed path with the breaker trip visible in the
  :class:`~repro.pipeline.quality.DataQualityReport`.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import List, Optional

from repro.exec.deadline import RunDeadlineExceeded
from repro.exec.pool import ExecConfig
from repro.faults.exec import (
    ExecFaultPlan,
    KIND_CRASH,
    KIND_HUNG,
    KIND_POISON,
    KIND_SLOW,
)
from repro.log import get_logger
from repro.obs import Telemetry, get_telemetry
from repro.pipeline.config import ScenarioConfig
from repro.pipeline.datasets import event_to_dict
from repro.pipeline.quality import STATUS_DOWN
from repro.pipeline.runner import StageFailedError, run_resilient

log = get_logger("chaos")

#: What a scenario must demonstrate to pass.
EXPECT_IDENTICAL = "byte-identical recovery"
EXPECT_DEGRADED = "visible degradation"


@dataclass(frozen=True)
class ChaosScenario:
    """One injected execution fault and the recovery contract it tests."""

    name: str
    faults: ExecFaultPlan
    expect: str
    #: Per-shard watchdog deadline for this scenario (None: no watchdog).
    task_deadline: Optional[float] = None
    #: Feed that must show up degraded (EXPECT_DEGRADED scenarios only).
    degraded_feed: str = ""


@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of one drill scenario."""

    name: str
    expect: str
    passed: bool
    detail: str
    elapsed: float


def drill_scenarios(quick: bool = False) -> List[ChaosScenario]:
    """The drill matrix; ``quick`` drops the slow-worker soak."""
    scenarios = [
        ChaosScenario(
            name="hung-worker",
            faults=ExecFaultPlan.single(KIND_HUNG, "honeypot", shard=0),
            expect=EXPECT_IDENTICAL,
            task_deadline=2.0,
        ),
        ChaosScenario(
            name="worker-crash",
            faults=ExecFaultPlan.single(KIND_CRASH, "telescope", shard=1),
            expect=EXPECT_IDENTICAL,
        ),
        ChaosScenario(
            name="poison-shard",
            faults=ExecFaultPlan.single(KIND_POISON, "honeypot", shard=0),
            expect=EXPECT_DEGRADED,
            degraded_feed="honeypot",
        ),
    ]
    if not quick:
        scenarios.insert(
            1,
            ChaosScenario(
                name="slow-worker",
                faults=ExecFaultPlan.single(
                    KIND_SLOW, "measurement", shard=0, delay=0.5
                ),
                expect=EXPECT_IDENTICAL,
                task_deadline=30.0,
            ),
        )
    return scenarios


def _events_bytes(result) -> bytes:
    """The exact bytes ``events.jsonl`` would hold for this result."""
    return "".join(
        json.dumps(event_to_dict(event)) + "\n"
        for event in result.fused.combined.events
    ).encode("utf-8")


def run_chaos_drill(
    config: Optional[ScenarioConfig] = None,
    quick: bool = False,
    workers: int = 2,
    shards: int = 3,
    scenario_budget: float = 120.0,
    telemetry: Optional[Telemetry] = None,
) -> List[ScenarioResult]:
    """Run every drill scenario against a serial fault-free baseline.

    Each scenario's pipeline run carries *scenario_budget* as a hard
    run deadline, so "no scenario hangs past its deadline" is enforced
    by the same :class:`~repro.exec.deadline.RunDeadline` machinery the
    CLI uses — a hang is reported as a failed scenario, not a stuck
    drill.
    """
    config = config if config is not None else ScenarioConfig.small()
    telemetry = telemetry if telemetry is not None else get_telemetry()
    scenario_outcomes = telemetry.metrics.counter(
        "chaos_scenario_outcomes_total",
        "chaos drill scenario verdicts",
        ("scenario", "verdict"),
    )
    log.info("chaos drill baseline (serial, fault-free)")
    with telemetry.tracer.span("chaos-baseline"):
        reference = _events_bytes(run_resilient(config, telemetry=telemetry))
    results: List[ScenarioResult] = []
    for scenario in drill_scenarios(quick):
        log.info(
            "chaos scenario",
            name=scenario.name,
            faults=scenario.faults.describe(),
        )
        started = time.monotonic()
        result = None
        failure = ""
        try:
            with telemetry.tracer.span(
                "chaos-scenario", scenario=scenario.name
            ):
                result = run_resilient(
                    config,
                    exec_config=ExecConfig(
                        workers=workers,
                        shards=shards,
                        task_deadline=scenario.task_deadline,
                    ),
                    exec_faults=scenario.faults,
                    deadline=scenario_budget,
                    telemetry=telemetry,
                )
        except RunDeadlineExceeded:
            failure = (
                f"scenario exceeded its {scenario_budget:.0f}s budget"
            )
        except StageFailedError as exc:
            failure = f"core stage failed: {exc}"
        elapsed = time.monotonic() - started
        if result is None:
            passed, detail = False, failure
        elif scenario.expect == EXPECT_IDENTICAL:
            if _events_bytes(result) == reference:
                passed = True
                detail = "recovered; fused events byte-identical to serial"
            else:
                passed = False
                detail = "completed but fused events diverged from serial"
        else:
            feed = result.quality.feed(scenario.degraded_feed)
            tripped = [
                b.name for b in result.quality.breakers if b.transitions
            ]
            if feed.status == STATUS_DOWN and tripped:
                passed = True
                detail = (
                    f"feed {scenario.degraded_feed!r} down, breaker(s) "
                    f"tripped: {', '.join(tripped)}"
                )
            else:
                passed = False
                detail = (
                    f"degradation not visible (feed status "
                    f"{feed.status!r}, tripped breakers: {tripped})"
                )
        scenario_outcomes.inc(
            scenario=scenario.name,
            verdict="passed" if passed else "failed",
        )
        results.append(
            ScenarioResult(
                name=scenario.name,
                expect=scenario.expect,
                passed=passed,
                detail=detail,
                elapsed=elapsed,
            )
        )
        log.info(
            "chaos scenario finished",
            name=scenario.name,
            passed=passed,
            elapsed=round(elapsed, 2),
        )
    return results


__all__ = [
    "EXPECT_DEGRADED",
    "EXPECT_IDENTICAL",
    "ChaosScenario",
    "ScenarioResult",
    "drill_scenarios",
    "run_chaos_drill",
]
