"""Resilient stage orchestration over the simulation pipeline.

``run_simulation`` is the happy path: six stages chained directly, any
exception fatal. :class:`ResilientPipeline` runs the same stage functions
under supervision instead:

* **timing** — every stage's wall time and attempt count is recorded in a
  :class:`~repro.pipeline.quality.StageReport`;
* **retry with backoff** — :class:`TransientStageError` (the injectable
  stand-in for a flaky collector, full disk, or dropped connection) is
  retried up to ``RetryPolicy.max_attempts`` times with exponential
  backoff;
* **checkpointing** — completed stage outputs are kept, so a run that died
  mid-pipeline resumes from the first incomplete stage instead of
  regenerating the Internet;
* **graceful degradation** — an observation/measurement stage that stays
  broken yields an *empty but correctly typed* feed plus a quality flag,
  and the pipeline completes with honest, quantified losses. Core stages
  (internet, attacks, migration, fusion) have no meaningful degraded
  output and still fail the run.

A :class:`~repro.faults.plan.FaultPlan` wires per-feed injectors into the
observation stages and can schedule transient stage failures, which makes
the whole failure envelope reproducible from two integers (scenario seed,
fault seed).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.dns.openintel import OpenIntelDataset
from repro.dps.detection import DPSUsageDataset
from repro.faults.injectors import FaultInjectorSet
from repro.faults.plan import (
    FEED_DPS,
    FEED_HONEYPOT,
    FEED_OPENINTEL,
    FEED_TELESCOPE,
    FaultPlan,
)
from repro.pipeline.config import ScenarioConfig
from repro.pipeline.quality import (
    DataQualityReport,
    FeedQuality,
    HeadlineMetrics,
    STATUS_DOWN,
    StageReport,
    feed_status,
)
from repro.pipeline.simulation import (
    SimulationResult,
    assemble_result,
    build_internet,
    fuse_observations,
    measure_dns,
    observe_honeypots,
    observe_telescope,
    run_migration,
    schedule_attacks,
)

#: Orchestrated stage names, in execution order.
STAGE_ORDER = (
    "internet",
    "attacks",
    "migration",
    "telescope",
    "honeypot",
    "measurement",
    "fusion",
)

class TransientStageError(RuntimeError):
    """A stage failure worth retrying (collector hiccup, not a bug)."""


class StageFailedError(RuntimeError):
    """A core stage exhausted its retries; the run cannot continue."""

    def __init__(self, stage: str, cause: Exception) -> None:
        super().__init__(f"stage {stage!r} failed permanently: {cause}")
        self.stage = stage
        self.cause = cause


@dataclass(frozen=True)
class RetryPolicy:
    """How patient the runner is with transient failures."""

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")
        if self.backoff_base < 0 or self.backoff_factor < 1:
            raise ValueError("backoff must be non-negative and non-shrinking")

    def delay(self, attempt: int) -> float:
        """Sleep before retry number *attempt* (1-based)."""
        return self.backoff_base * self.backoff_factor ** (attempt - 1)


class ResilientPipeline:
    """Supervised execution of the simulation with optional fault plan."""

    def __init__(
        self,
        config: ScenarioConfig,
        plan: Optional[FaultPlan] = None,
        retry: RetryPolicy = RetryPolicy(),
        sleep: Optional[Callable[[float], None]] = None,
    ) -> None:
        self.config = config
        self.plan = plan if plan is not None else FaultPlan.none(
            config.n_days, config.n_honeypots
        )
        if self.plan.n_days != config.n_days:
            raise ValueError(
                "fault plan window does not match the scenario window"
            )
        self.retry = retry
        self.injectors = FaultInjectorSet(self.plan)
        self.stage_reports: List[StageReport] = []
        self._checkpoints: Dict[str, Any] = {}
        self._pending_failures = self.plan.transient_failure_counts()
        self._degraded_stages: set = set()
        self._sleep = sleep if sleep is not None else time.sleep

    # -- orchestration --------------------------------------------------------

    def run(
        self, baseline: Optional[HeadlineMetrics] = None
    ) -> SimulationResult:
        """Run (or resume) the pipeline; returns a result with ``quality``."""
        config = self.config
        self.stage_reports = []
        internet = self._run_stage("internet", lambda: build_internet(config))
        ground_truth = self._run_stage(
            "attacks", lambda: schedule_attacks(config, internet)
        )
        diversion_log, ledger = self._run_stage(
            "migration",
            lambda: run_migration(config, internet, ground_truth),
        )
        telescope_events = self._run_stage(
            "telescope",
            lambda: observe_telescope(
                config, ground_truth, fault=self.injectors.telescope
            ),
            degraded_factory=list,
        )
        honeypot_events = self._run_stage(
            "honeypot",
            lambda: observe_honeypots(
                config, ground_truth, fault=self.injectors.honeypot
            ),
            degraded_factory=list,
        )
        openintel, dps_usage = self._run_stage(
            "measurement",
            lambda: measure_dns(
                config,
                internet,
                diversion_log,
                openintel_fault=self.injectors.openintel,
                dps_fault=self.injectors.dps,
            ),
            degraded_factory=self._empty_measurement,
        )
        fused, web_index = self._run_stage(
            "fusion",
            lambda: fuse_observations(
                internet, telescope_events, honeypot_events, openintel
            ),
        )
        result = assemble_result(
            config,
            internet,
            diversion_log,
            ledger,
            ground_truth,
            telescope_events,
            honeypot_events,
            fused,
            openintel,
            dps_usage,
            web_index,
        )
        result.quality = self._build_quality(result, baseline)
        return result

    def _run_stage(
        self,
        name: str,
        fn: Callable[[], Any],
        degraded_factory: Optional[Callable[[], Any]] = None,
    ) -> Any:
        if name in self._checkpoints:
            self.stage_reports.append(
                StageReport(name=name, status="cached", attempts=0)
            )
            return self._checkpoints[name]
        start = time.perf_counter()
        attempts = 0
        last_error: Optional[Exception] = None
        while attempts < self.retry.max_attempts:
            attempts += 1
            try:
                self._maybe_inject_failure(name)
                output = fn()
            except TransientStageError as exc:
                last_error = exc
                if attempts < self.retry.max_attempts:
                    self._sleep(self.retry.delay(attempts))
                continue
            self._checkpoints[name] = output
            self.stage_reports.append(
                StageReport(
                    name=name,
                    status="ok",
                    attempts=attempts,
                    elapsed=time.perf_counter() - start,
                )
            )
            return output
        if degraded_factory is not None:
            output = degraded_factory()
            self._checkpoints[name] = output
            self._degraded_stages.add(name)
            self.stage_reports.append(
                StageReport(
                    name=name,
                    status="degraded",
                    attempts=attempts,
                    elapsed=time.perf_counter() - start,
                    error=str(last_error),
                )
            )
            return output
        self.stage_reports.append(
            StageReport(
                name=name,
                status="failed",
                attempts=attempts,
                elapsed=time.perf_counter() - start,
                error=str(last_error),
            )
        )
        raise StageFailedError(name, last_error)

    def _maybe_inject_failure(self, name: str) -> None:
        remaining = self._pending_failures.get(name, 0)
        if remaining > 0:
            self._pending_failures[name] = remaining - 1
            raise TransientStageError(
                f"injected transient failure in stage {name!r}"
            )

    def _empty_measurement(self):
        """Typed empty outputs for a measurement feed that stayed down."""
        openintel = OpenIntelDataset(
            n_days=self.config.n_days,
            zone_stats=[],
            hosting_intervals=[],
            first_seen={},
        )
        return openintel, DPSUsageDataset(usages=[], n_days=self.config.n_days)

    # -- quality accounting ---------------------------------------------------

    def _build_quality(
        self,
        result: SimulationResult,
        baseline: Optional[HeadlineMetrics],
    ) -> DataQualityReport:
        plan, inj = self.plan, self.injectors
        feeds = [
            self._feed_quality(
                FEED_TELESCOPE,
                stage="telescope",
                uptime=plan.telescope_uptime(),
                observed=len(result.telescope_events),
                dropped=inj.telescope.dropped_batches,
                detail=(
                    f"{inj.telescope.dropped_packets} backscatter packets lost"
                    if inj.telescope.dropped_packets
                    else ""
                ),
            ),
            self._feed_quality(
                FEED_HONEYPOT,
                stage="honeypot",
                uptime=plan.honeypot_uptime(),
                observed=len(result.honeypot_events),
                dropped=inj.honeypot.dropped_batches,
                detail=(
                    f"{inj.honeypot.dropped_requests} requests lost"
                    if inj.honeypot.dropped_requests
                    else ""
                ),
            ),
            self._feed_quality(
                FEED_OPENINTEL,
                stage="measurement",
                uptime=plan.openintel_uptime(),
                observed=len(result.openintel.hosting_intervals),
                dropped=inj.openintel.dropped_interval_days,
                detail=(
                    f"{len(plan.openintel_missed_days)} snapshots missed, "
                    f"{inj.openintel.shifted_first_seen} first-seen shifted"
                    if plan.openintel_missed_days
                    else ""
                ),
            ),
            self._feed_quality(
                FEED_DPS,
                stage="measurement",
                uptime=plan.dps_uptime(),
                observed=len(result.dps_usage.usages),
                dropped=inj.dps.dropped_records + inj.dps.jittered_records,
                detail=(
                    f"{inj.dps.dropped_records} dropped, "
                    f"{inj.dps.jittered_records} day-jittered"
                    if plan.dps_corruption_rate
                    else ""
                ),
            ),
        ]
        headline = HeadlineMetrics.from_result(result)
        return DataQualityReport(
            feeds=feeds,
            stages=list(self.stage_reports),
            headline=headline,
            baseline=baseline,
            plan_description=plan.describe(),
        )

    def _feed_quality(
        self,
        feed: str,
        stage: str,
        uptime: float,
        observed: int,
        dropped: int,
        detail: str,
    ) -> FeedQuality:
        if stage in self._degraded_stages:
            # The stage itself died: whatever the plan says, the feed is out.
            return FeedQuality(
                feed=feed,
                uptime=0.0,
                events_observed=observed,
                events_dropped=dropped,
                status=STATUS_DOWN,
                detail="stage failed permanently; empty feed substituted",
            )
        return FeedQuality(
            feed=feed,
            uptime=uptime,
            events_observed=observed,
            events_dropped=dropped,
            status=feed_status(uptime, dropped),
            detail=detail,
        )


def run_resilient(
    config: ScenarioConfig,
    plan: Optional[FaultPlan] = None,
    baseline: Optional[HeadlineMetrics] = None,
    retry: RetryPolicy = RetryPolicy(),
    sleep: Optional[Callable[[float], None]] = None,
) -> SimulationResult:
    """One-shot convenience wrapper around :class:`ResilientPipeline`."""
    return ResilientPipeline(config, plan=plan, retry=retry, sleep=sleep).run(
        baseline=baseline
    )
