"""Resilient stage orchestration over the simulation pipeline.

``run_simulation`` is the happy path: six stages chained directly, any
exception fatal. :class:`ResilientPipeline` runs the same stage functions
under supervision instead:

* **timing** — every stage's wall time and attempt count is recorded in a
  :class:`~repro.pipeline.quality.StageReport`;
* **retry with backoff** — :class:`TransientStageError` (the injectable
  stand-in for a flaky collector, full disk, or dropped connection) is
  retried up to ``RetryPolicy.max_attempts`` times with exponential
  backoff;
* **checkpointing** — completed stage outputs are kept, so a run that died
  mid-pipeline resumes from the first incomplete stage instead of
  regenerating the Internet. With a ``run_dir`` the checkpoints are also
  persisted to disk through :class:`~repro.store.CheckpointStore`
  (atomic, checksummed, schema-versioned), so even a SIGKILLed *process*
  resumes from the last valid checkpoint — ``python -m repro resume`` —
  with corrupt checkpoints detected at load and discarded back to the
  previous trustworthy stage;
* **graceful degradation** — an observation/measurement stage that stays
  broken yields an *empty but correctly typed* feed plus a quality flag,
  and the pipeline completes with honest, quantified losses. Core stages
  (internet, attacks, migration, fusion) have no meaningful degraded
  output and still fail the run.

A :class:`~repro.faults.plan.FaultPlan` wires per-feed injectors into the
observation stages and can schedule transient stage failures, which makes
the whole failure envelope reproducible from two integers (scenario seed,
fault seed). Because every stage function is deterministic given the
scenario config, a resumed run produces byte-identical headline output to
an uninterrupted one; injector loss counters are persisted alongside the
checkpoints so even the feed-quality accounting survives the crash.
"""

from __future__ import annotations

import os
import random
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.dns.openintel import OpenIntelDataset
from repro.dps.detection import DPSUsageDataset
from repro.exec.breaker import CircuitBreaker
from repro.exec.deadline import RunDeadline, RunDeadlineExceeded
from repro.exec.interrupt import InterruptGuard, RunInterrupted
from repro.exec.pool import ExecConfig, SupervisedPool, TaskSpec
from repro.exec.shard import is_shard_checkpoint, shard_checkpoint_name
from repro.faults.exec import (
    ExecFaultPlan,
    PoisonShardError,
    WorkerCrashError,
    apply_exec_fault,
)
from repro.faults.injectors import FaultInjectorSet
from repro.faults.plan import (
    FEED_DPS,
    FEED_HONEYPOT,
    FEED_OPENINTEL,
    FEED_TELESCOPE,
    FaultPlan,
)
from repro.log import get_logger
from repro.obs import Telemetry, get_telemetry
from repro.pipeline.config import ScenarioConfig
from repro.pipeline.quality import (
    DataQualityReport,
    FeedQuality,
    HeadlineMetrics,
    RecordQuality,
    STATUS_DOWN,
    StageReport,
    feed_status,
)
from repro.store.checkpoint import CheckpointIssue, CheckpointStore
from repro.store.stagecache import CACHE_MISS, StageCache, stage_fingerprint
from repro.pipeline.simulation import (
    CAPTURE_CODECS,
    DETECT_TIERS,
    SimulationResult,
    apply_dns_faults,
    assemble_result,
    build_internet,
    detect_honeypot_shard,
    detect_telescope_shard,
    fuse_observations,
    honeypot_capture,
    measure_dns,
    measure_dns_shard,
    merge_dns_shards,
    merge_honeypot_shards,
    merge_telescope_shards,
    observe_honeypots,
    observe_telescope,
    resolve_detect_tier,
    run_migration,
    schedule_attacks,
    telescope_capture,
)

#: Orchestrated stage names, in execution order.
STAGE_ORDER = (
    "internet",
    "attacks",
    "migration",
    "telescope",
    "honeypot",
    "measurement",
    "fusion",
)

#: The mutually independent observation stages the executor may run
#: concurrently and shard internally.
OBSERVATION_STAGES = ("telescope", "honeypot", "measurement")

#: Actual data dependencies between stages. The sequential STAGE_ORDER
#: overstates them: the three observation stages only need the attack /
#: migration layers, not each other — which matters the moment they run
#: concurrently and one of them checkpoints before an earlier-ordered
#: sibling (see :meth:`CheckpointStore.load_valid_graph`).
STAGE_DEPS: Dict[str, tuple] = {
    "internet": (),
    "attacks": ("internet",),
    "migration": ("internet", "attacks"),
    "telescope": ("attacks",),
    "honeypot": ("attacks",),
    "measurement": ("migration",),
    "fusion": ("migration", "telescope", "honeypot", "measurement"),
}

#: Injector-counter prefixes each stage's own execution mutates; used to
#: snapshot/restore exactly the counters a retried attempt regenerates,
#: and to persist per-stage counter deltas that merge correctly no
#: matter which order concurrent stages complete in.
STAGE_COUNTER_PREFIXES: Dict[str, tuple] = {
    "telescope": ("telescope.",),
    "honeypot": ("honeypot.",),
    "measurement": ("openintel.", "dps."),
}

def _payload_events(output: Any) -> int:
    """Record count of a stage payload (event lists; 0 for composites)."""
    return len(output) if isinstance(output, list) else 0


class TransientStageError(RuntimeError):
    """A stage failure worth retrying (collector hiccup, not a bug)."""


class StageFailedError(RuntimeError):
    """A core stage exhausted its retries; the run cannot continue."""

    def __init__(self, stage: str, cause: Exception) -> None:
        super().__init__(f"stage {stage!r} failed permanently: {cause}")
        self.stage = stage
        self.cause = cause


@dataclass(frozen=True)
class RetryPolicy:
    """How patient the runner is with transient failures."""

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 60.0
    #: Decorrelated jitter (off by default, so existing callers keep the
    #: exact exponential sequence): each delay is drawn uniformly from
    #: [base, 3 * previous delay], capped. Retries from many processes
    #: that failed together then *spread out* instead of re-colliding at
    #: the same exponential instants. The draw is seeded, so a given
    #: (seed, attempt) pair always yields the same delay — retry timing
    #: stays reproducible, which is what makes it testable.
    jitter: bool = False
    jitter_seed: int = 0

    #: Multiplier of the decorrelated-jitter upper bound ("sleep * 3" in
    #: the classic formulation).
    JITTER_SPREAD = 3.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")
        if self.backoff_base < 0 or self.backoff_factor < 1:
            raise ValueError("backoff must be non-negative and non-shrinking")
        if self.backoff_max < 0:
            raise ValueError("backoff cap must be non-negative")

    def delay(self, attempt: int) -> float:
        """Sleep before retry number *attempt* (1-based), capped.

        The cap also guards the exponentiation itself: at high attempt
        counts ``factor ** attempt`` overflows a float, which must read
        as "wait the maximum", not crash the retry loop it protects.
        """
        if self.backoff_base == 0.0:
            return 0.0
        if self.jitter:
            return self._jittered_delay(attempt)
        try:
            raw = self.backoff_base * self.backoff_factor ** (attempt - 1)
        except OverflowError:
            return self.backoff_max
        return min(raw, self.backoff_max)

    def _jittered_delay(self, attempt: int) -> float:
        """Decorrelated jitter, derived deterministically from the seed.

        The decorrelated sequence is stateful (each delay depends on the
        previous one), but the policy is a frozen value object — so the
        sequence is re-derived from the seed on every call rather than
        carried as mutable state. Attempt counts are small; O(attempt)
        per call is noise next to the sleep it sizes.
        """
        rng = random.Random(self.jitter_seed)
        sleep = self.backoff_base
        for _ in range(attempt):
            sleep = min(
                self.backoff_max,
                rng.uniform(self.backoff_base, sleep * self.JITTER_SPREAD),
            )
        return sleep

    def delays(self, attempts: Optional[int] = None) -> List[float]:
        """The full backoff sequence (one delay per retry), for drills."""
        count = attempts if attempts is not None else self.max_attempts - 1
        return [self.delay(attempt) for attempt in range(1, count + 1)]


class ResilientPipeline:
    """Supervised execution of the simulation with optional fault plan.

    With a ``run_dir`` the pipeline is *durable*: every completed stage is
    checkpointed to disk and a fresh process pointed at the same directory
    (``python -m repro resume``) restores the longest valid prefix —
    verifying the checksum of each checkpoint and falling back to the
    previous stage when one fails validation. ``crash_after`` is the
    recovery-drill hook: the process dies with ``os._exit`` (no cleanup,
    the moral equivalent of SIGKILL) immediately after that stage's
    checkpoint reaches disk.
    """

    #: File under the run dir carrying resumable non-checkpoint state.
    STATE_FILE = "state.json"

    def __init__(
        self,
        config: ScenarioConfig,
        plan: Optional[FaultPlan] = None,
        retry: RetryPolicy = RetryPolicy(),
        sleep: Optional[Callable[[float], None]] = None,
        run_dir: Optional[Union[str, Path]] = None,
        crash_after: Optional[str] = None,
        exec_config: Optional[ExecConfig] = None,
        exec_faults: Optional[ExecFaultPlan] = None,
        deadline: Optional[Union[float, RunDeadline]] = None,
        interrupt: Optional[InterruptGuard] = None,
        breakers: Optional[Dict[str, CircuitBreaker]] = None,
        telemetry: Optional[Telemetry] = None,
        capture_codec: str = "columnar",
        detect_tier: Optional[str] = None,
        stage_cache: Optional[Union[str, Path, StageCache]] = None,
    ) -> None:
        self.config = config
        if capture_codec not in CAPTURE_CODECS:
            raise ValueError(
                f"unknown capture codec {capture_codec!r} "
                f"(codecs: {', '.join(sorted(CAPTURE_CODECS))})"
            )
        self.capture_codec = capture_codec
        if detect_tier is not None and detect_tier not in DETECT_TIERS:
            raise ValueError(
                f"unknown detect tier {detect_tier!r} "
                f"(tiers: {', '.join(sorted(DETECT_TIERS))})"
            )
        # None means "match the capture codec" (resolved per stage call).
        self.detect_tier = detect_tier
        self.telemetry = telemetry if telemetry is not None else get_telemetry()
        self.plan = plan if plan is not None else FaultPlan.none(
            config.n_days, config.n_honeypots
        )
        if self.plan.n_days != config.n_days:
            raise ValueError(
                "fault plan window does not match the scenario window"
            )
        if crash_after is not None and crash_after not in STAGE_ORDER:
            raise ValueError(
                f"unknown crash_after stage: {crash_after!r} "
                f"(stages: {', '.join(STAGE_ORDER)})"
            )
        self.retry = retry
        self.injectors = FaultInjectorSet(self.plan)
        self.stage_reports: List[StageReport] = []
        self.record_reports: List[Any] = []
        self.checkpoint_issues: List[CheckpointIssue] = []
        self._checkpoints: Dict[str, Any] = {}
        self._pending_failures = self.plan.transient_failure_counts()
        self._degraded_stages: set = set()
        self._sleep = sleep if sleep is not None else time.sleep
        self._log = get_logger("runner")
        self.crash_after = crash_after
        self.exec_config = exec_config if exec_config is not None else ExecConfig()
        self.exec_faults = (
            exec_faults if exec_faults is not None else ExecFaultPlan.none()
        )
        self.deadline = (
            deadline
            if isinstance(deadline, RunDeadline)
            else RunDeadline(deadline)
        )
        # A default-constructed guard has no handlers installed, so
        # check() is a no-op unless the CLI armed it.
        self.interrupt = interrupt if interrupt is not None else InterruptGuard()
        metrics = self.telemetry.metrics
        self._tracer = self.telemetry.tracer
        self._profiler = self.telemetry.profiler
        self._obs_clock = self.telemetry.clock
        self._m_attempts = metrics.counter(
            "pipeline_stage_attempts_total", "stage attempts started",
            ("stage",),
        )
        self._m_attempt_failures = metrics.counter(
            "pipeline_stage_attempt_failures_total",
            "stage attempts that ended in a transient failure",
            ("stage",),
        )
        self._m_outcomes = metrics.counter(
            "pipeline_stage_outcomes_total", "final stage outcomes",
            ("stage", "status"),
        )
        self._m_stage_seconds = metrics.histogram(
            "pipeline_stage_seconds", "stage wall time (telemetry clock)",
            ("stage",),
        )
        self._m_shards_reused = metrics.counter(
            "pipeline_shards_reused_total",
            "shards served from a prior checkpoint", ("stage",),
        )
        self._m_shards_computed = metrics.counter(
            "pipeline_shards_computed_total",
            "shards computed by the pool", ("stage",),
        )
        # Cross-run stage cache: only consulted for fault-free plans
        # (outputs are then pure functions of the scenario config) and
        # only for the expensive observation stages.
        if isinstance(stage_cache, StageCache):
            self.stage_cache: Optional[StageCache] = stage_cache
        elif stage_cache is not None:
            self.stage_cache = StageCache(stage_cache, metrics=metrics)
        else:
            self.stage_cache = None
        self._cache_eligible = (
            self.plan.is_benign() and not self.exec_faults.faults
        )
        # Default breaker threshold matches the retry budget: a feed that
        # fails every attempt trips its breaker exactly as the stage
        # degrades, while a feed that recovers within the budget (the
        # retry contract) is never refused its final attempt.
        self.breakers: Dict[str, CircuitBreaker] = (
            breakers
            if breakers is not None
            else {
                stage: CircuitBreaker(
                    stage,
                    failure_threshold=self.retry.max_attempts,
                    metrics=metrics,
                )
                for stage in OBSERVATION_STAGES
            }
        )
        self._pool: Optional[SupervisedPool] = (
            SupervisedPool.from_config(self.exec_config, metrics=metrics)
            if self.exec_config.parallel
            else None
        )
        # Guards checkpoint/state persistence and report lists when the
        # observation stages run under concurrent supervisor threads.
        self._state_lock = threading.RLock()
        self._attempt_now: Dict[str, int] = {}
        self._shard_cache: Dict[str, Any] = {}
        self.store: Optional[CheckpointStore] = None
        if run_dir is not None:
            self.store = CheckpointStore(run_dir, metrics=metrics)
            self._restore_from_store()

    # -- durable state --------------------------------------------------------

    def _restore_from_store(self) -> None:
        """Adopt every checkpoint whose dependencies survived validation."""
        payloads, issues = self.store.load_valid_graph(
            STAGE_ORDER, STAGE_DEPS
        )
        self._checkpoints.update(payloads)
        self.checkpoint_issues = issues
        # Runner state is snapshotted per completed stage. Newer state
        # files carry each stage's *own* counter deltas, which merge
        # correctly regardless of the order concurrent stages completed
        # in; older ones carry a single global snapshot, adopted from the
        # last restored stage (correct for the serial runs that wrote
        # them). Counters of discarded checkpoints are dropped either way
        # and regenerated deterministically by the re-run.
        state = self.store.read_json(self.STATE_FILE) or {}
        snapshots = state.get("stage_state", {})
        restored = [stage for stage in STAGE_ORDER if stage in payloads]
        own_counter_stages = [
            stage
            for stage in restored
            if "own_counters" in (snapshots.get(stage) or {})
        ]
        if own_counter_stages:
            merged: Dict[str, int] = {}
            degraded: set = set()
            for stage in own_counter_stages:
                snapshot = snapshots[stage]
                merged.update(snapshot["own_counters"])
                degraded.update(snapshot.get("degraded_stages", []))
            self.injectors.restore_counters(merged)
            self._degraded_stages.update(
                stage for stage in degraded if stage in payloads
            )
        elif restored:
            snapshot = snapshots.get(restored[-1])
            if snapshot:
                self.injectors.restore_counters(
                    snapshot.get("injector_counters", {})
                )
                self._degraded_stages.update(
                    stage
                    for stage in snapshot.get("degraded_stages", [])
                    if stage in payloads
                )
        self._restore_shard_checkpoints(payloads)
        for stage in payloads:
            self._log.info("stage restored from checkpoint", stage=stage)
        for issue in self.checkpoint_issues:
            self._log.warning(
                "checkpoint discarded",
                stage=issue.stage,
                kind=issue.kind,
                detail=issue.detail,
            )

    def _restore_shard_checkpoints(self, payloads: Dict[str, Any]) -> None:
        """Adopt per-shard partials of incomplete stages; drop stale ones.

        A shard checkpoint is only reusable when the whole stage is still
        incomplete, the shard count matches the current plan (the name
        bakes it in), and the stage's dependencies were restored — shard
        outputs derive from them just like the full stage output does.
        """
        n = self.exec_config.n_shards
        valid_names = {
            shard_checkpoint_name(stage, i, n)
            for stage in OBSERVATION_STAGES
            if stage not in payloads
            and all(dep in payloads for dep in STAGE_DEPS[stage])
            for i in range(n)
        }
        for name in self.store.stages():
            if not is_shard_checkpoint(name):
                continue
            if name not in valid_names:
                self.store.discard(name)
                continue
            try:
                self._shard_cache[name] = self.store.load(name)
                self._log.info("shard restored from checkpoint", shard=name)
            except Exception as exc:
                self.checkpoint_issues.append(
                    CheckpointIssue(name, "corrupt", str(exc))
                )
                self.store.discard(name)

    def _persist_stage(self, name: str) -> None:
        """Checkpoint a completed stage and the resumable runner state."""
        if self.store is None:
            self._drop_shards(name)
            return
        with self._state_lock:
            self.store.save(name, self._checkpoints[name])
            state = self.store.read_json(self.STATE_FILE) or {}
            snapshots = state.setdefault("stage_state", {})
            counters = self.injectors.counters()
            prefixes = STAGE_COUNTER_PREFIXES.get(name, ())
            snapshots[name] = {
                # Full snapshot kept for older readers; own_counters is
                # what current restores merge.
                "injector_counters": counters,
                "own_counters": {
                    key: value
                    for key, value in counters.items()
                    if key.startswith(prefixes)
                },
                "degraded_stages": sorted(self._degraded_stages),
            }
            self.store.write_json(self.STATE_FILE, state)
            self._drop_shards(name)
        if self.crash_after == name:
            self._log.error(
                "simulated hard crash (recovery drill)", stage=name
            )
            os._exit(137)  # SIGKILL semantics: no cleanup, no atexit

    def _drop_shards(self, stage: str) -> None:
        """Retire a completed stage's per-shard partials."""
        n = self.exec_config.n_shards
        for index in range(n):
            name = shard_checkpoint_name(stage, index, n)
            self._shard_cache.pop(name, None)
            if self.store is not None:
                self.store.discard(name)

    def attach_record_report(self, report: Any) -> None:
        """Surface a :class:`FeedLoadReport` in this run's quality report."""
        self.record_reports.append(report)

    # -- orchestration --------------------------------------------------------

    def run(
        self, baseline: Optional[HeadlineMetrics] = None
    ) -> SimulationResult:
        """Run (or resume) the pipeline; returns a result with ``quality``."""
        with self._tracer.span("run", n_days=self.config.n_days):
            return self._run_pipeline(baseline)

    def _run_pipeline(
        self, baseline: Optional[HeadlineMetrics]
    ) -> SimulationResult:
        config = self.config
        self.stage_reports = []
        internet = self._run_stage("internet", lambda: build_internet(config))
        ground_truth = self._run_stage(
            "attacks", lambda: schedule_attacks(config, internet)
        )

        def _migrate():
            diversion_log, ledger = run_migration(
                config, internet, ground_truth
            )
            # Migration mutates internet.zones in place, so the stage's
            # checkpoint must carry the *post-migration* internet: a resumed
            # process restoring this stage would otherwise hand later stages
            # the stale pre-migration snapshot. Bundling all three into one
            # payload also keeps the references diversion_log and ledger
            # share with the zones consistent across the pickle round-trip.
            return diversion_log, ledger, internet

        diversion_log, ledger, internet = self._run_stage(
            "migration", _migrate
        )
        observations = self._run_observations(
            ground_truth, internet, diversion_log
        )
        telescope_events = observations["telescope"]
        honeypot_events = observations["honeypot"]
        openintel, dps_usage = observations["measurement"]
        fused, web_index = self._run_stage(
            "fusion",
            lambda: fuse_observations(
                internet, telescope_events, honeypot_events, openintel
            ),
        )
        result = assemble_result(
            config,
            internet,
            diversion_log,
            ledger,
            ground_truth,
            telescope_events,
            honeypot_events,
            fused,
            openintel,
            dps_usage,
            web_index,
        )
        result.quality = self._build_quality(result, baseline)
        return result

    # -- supervised observation phase -----------------------------------------

    def _run_observations(
        self,
        ground_truth: Any,
        internet: Any,
        diversion_log: Any,
    ) -> Dict[str, Any]:
        """Run the three independent observation stages, possibly at once.

        With the default serial :class:`ExecConfig` this is exactly the
        historical sequential path. With parallelism enabled, each stage
        runs under its own supervisor thread and its inner work fans out
        over the shared :class:`SupervisedPool`; stage ordering of
        reports and checkpoints is canonicalized elsewhere, so the
        completion order does not matter.
        """
        stages: Dict[str, tuple] = {
            "telescope": (
                lambda: self._observe_telescope_supervised(ground_truth),
                list,
            ),
            "honeypot": (
                lambda: self._observe_honeypots_supervised(ground_truth),
                list,
            ),
            "measurement": (
                lambda: self._measure_dns_supervised(internet, diversion_log),
                self._empty_measurement,
            ),
        }
        concurrent = (
            self.exec_config.parallel
            and self.exec_config.workers > 1
            and sum(1 for s in stages if s not in self._checkpoints) > 1
        )
        if not concurrent:
            return {
                name: self._run_stage(name, fn, degraded_factory=degraded)
                for name, (fn, degraded) in stages.items()
            }
        results: Dict[str, Any] = {}
        errors: Dict[str, BaseException] = {}

        def _supervise(name: str, fn, degraded) -> None:
            try:
                results[name] = self._run_stage(
                    name, fn, degraded_factory=degraded
                )
            except BaseException as exc:  # noqa: BLE001 - rethrown below
                errors[name] = exc

        threads = [
            threading.Thread(
                target=_supervise,
                args=(name, fn, degraded),
                name=f"repro-stage-{name}",
            )
            for name, (fn, degraded) in stages.items()
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            # Deterministic choice when several stages failed together:
            # a run-deadline or interrupt abort outranks stage failures
            # (it explains them), then canonical stage order.
            for error in errors.values():
                if isinstance(error, (RunDeadlineExceeded, RunInterrupted)):
                    raise error
            first = min(errors, key=OBSERVATION_STAGES.index)
            raise errors[first]
        return results

    def _observe_telescope_supervised(self, ground_truth: Any) -> Any:
        config, fault = self.config, self.injectors.telescope
        codec = self.capture_codec
        tier = self.detect_tier
        if not self.exec_config.parallel:
            return observe_telescope(
                config, ground_truth, fault=fault, codec=codec,
                detect_tier=tier,
            )
        # Capture consumes shared sequential RNG state and mutates the
        # injector's loss counters, so it runs here in the supervising
        # process; only the RNG-free detection fans out.
        capture = telescope_capture(
            config, ground_truth, fault=fault, codec=codec
        )
        shards = self._run_shards(
            "telescope",
            lambda i, n: lambda: detect_telescope_shard(
                config, capture, i, n, tier
            ),
        )
        return merge_telescope_shards(shards)

    def _observe_honeypots_supervised(self, ground_truth: Any) -> Any:
        config, fault = self.config, self.injectors.honeypot
        codec = self.capture_codec
        tier = self.detect_tier
        if not self.exec_config.parallel:
            return observe_honeypots(
                config, ground_truth, fault=fault, codec=codec,
                detect_tier=tier,
            )
        request_log = honeypot_capture(
            config, ground_truth, fault=fault, codec=codec
        )
        shards = self._run_shards(
            "honeypot",
            lambda i, n: lambda: detect_honeypot_shard(
                config, request_log, i, n, tier
            ),
        )
        return merge_honeypot_shards(shards)

    def _measure_dns_supervised(
        self, internet: Any, diversion_log: Any
    ) -> Any:
        config = self.config
        openintel_fault = self.injectors.openintel
        dps_fault = self.injectors.dps
        if not self.exec_config.parallel:
            return measure_dns(
                config,
                internet,
                diversion_log,
                openintel_fault=openintel_fault,
                dps_fault=dps_fault,
            )
        parts = self._run_shards(
            "measurement",
            lambda i, n: lambda: measure_dns_shard(
                config, internet, diversion_log, i, n
            ),
        )
        openintel, dps_usage = merge_dns_shards(config, parts)
        # Degradation mutates injector counters: parent process only.
        return apply_dns_faults(
            openintel,
            dps_usage,
            openintel_fault=openintel_fault,
            dps_fault=dps_fault,
        )

    def _run_shards(
        self,
        stage: str,
        make_fn: Callable[[int, int], Callable[[], Any]],
    ) -> List[Any]:
        """Fan one stage's shard tasks out over the pool; merge-ready list.

        Completed shards are checkpointed (and cached) individually, so a
        retry after a partial failure — or a resumed process — only
        recomputes the shards that never finished. Any shard failure
        surfaces as a :class:`TransientStageError` for the stage retry
        loop; a shard that fails on every attempt (poison) therefore
        drives the stage down the breaker/degrade path.
        """
        n = self.exec_config.n_shards
        attempt = self._attempt_now.get(stage, 1)
        shard_log = self._log.bind(stage=stage, attempt=attempt, shards=n)
        names = [shard_checkpoint_name(stage, i, n) for i in range(n)]
        todo = [i for i in range(n) if names[i] not in self._shard_cache]
        if len(todo) < n:
            shard_log.info(
                "shards reused from checkpoint", reused=n - len(todo)
            )
            self._m_shards_reused.inc(n - len(todo), stage=stage)
        if todo:
            deadline = self._task_deadline()
            tasks = []
            for i in todo:
                fn = make_fn(i, n)
                fault = self.exec_faults.lookup(stage, i, attempt)
                if fault is not None:
                    shard_log.warning(
                        "exec fault armed", shard=i, fault=fault.kind
                    )

                def task(fn=fn, fault=fault):
                    apply_exec_fault(fault)
                    return fn()

                tasks.append(
                    TaskSpec(
                        name=f"{stage}[{i}/{n}]", fn=task, deadline=deadline
                    )
                )
            with self._tracer.span(
                "shards", stage=stage, attempt=attempt, shards=len(todo)
            ):
                outcomes = self._pool.run(tasks)
            failures = []
            for i, outcome in zip(todo, outcomes):
                if outcome.ok:
                    self._m_shards_computed.inc(stage=stage)
                    self._profiler.note(
                        stage,
                        wall_s=outcome.elapsed,
                        events=_payload_events(outcome.value),
                        shard=f"{i}/{n}",
                    )
                    self._shard_cache[names[i]] = outcome.value
                    if self.store is not None:
                        with self._state_lock:
                            self.store.save(names[i], outcome.value)
                else:
                    failures.append((i, outcome))
            if failures:
                detail = "; ".join(
                    f"shard {i}: {o.status} ({o.error})" for i, o in failures
                )
                raise TransientStageError(
                    f"{len(failures)}/{n} shard(s) of {stage} failed: {detail}"
                )
        return [self._shard_cache[name] for name in names]

    def _task_deadline(self) -> Optional[float]:
        """Per-shard watchdog deadline: the task cap, bounded by what is
        left of the whole-run deadline so a hung shard cannot out-sleep
        the run-level abort."""
        candidates = [
            value
            for value in (
                self.exec_config.task_deadline,
                self.deadline.remaining(),
            )
            if value is not None
        ]
        if not candidates:
            return None
        return max(0.01, min(candidates))

    def _run_stage(
        self,
        name: str,
        fn: Callable[[], Any],
        degraded_factory: Optional[Callable[[], Any]] = None,
    ) -> Any:
        if name in self._checkpoints:
            self._m_outcomes.inc(stage=name, status="cached")
            self._add_report(
                StageReport(name=name, status="cached", attempts=0)
            )
            self._log.debug("stage served from checkpoint", stage=name)
            return self._checkpoints[name]
        payload = self._stage_cache_get(name)
        if payload is not CACHE_MISS:
            # Served from the cross-run cache: adopt it exactly like a
            # computed output so resume checkpoints (and crash drills)
            # behave identically to an uncached run.
            self._checkpoints[name] = payload
            self._m_outcomes.inc(stage=name, status="cache-hit")
            self._add_report(
                StageReport(name=name, status="cache-hit", attempts=0)
            )
            self._log.info("stage served from stage cache", stage=name)
            self._persist_stage(name)
            return payload
        with self._tracer.span("stage", stage=name) as span:
            with self._profiler.profile(name) as prof:
                return self._run_stage_attempts(
                    name, fn, degraded_factory, span, prof
                )

    def _run_stage_attempts(
        self,
        name: str,
        fn: Callable[[], Any],
        degraded_factory: Optional[Callable[[], Any]],
        span: Any,
        prof: Any,
    ) -> Any:
        self.deadline.check(f"stage {name!r}")
        self.interrupt.check(f"stage {name!r}")
        self._log.debug("stage starting", stage=name)
        start = time.perf_counter()
        obs_start = self._obs_clock()
        attempts = 0
        last_error: Optional[Exception] = None
        breaker = self.breakers.get(name)
        prefixes = STAGE_COUNTER_PREFIXES.get(name, ())
        serial_exec = not self.exec_config.parallel

        def _finish(status: str) -> None:
            self._m_outcomes.inc(stage=name, status=status)
            self._m_stage_seconds.observe(
                self._obs_clock() - obs_start, stage=name
            )
            span.set_attr(status=status, attempts=attempts)

        while attempts < self.retry.max_attempts:
            self.deadline.check(f"stage {name!r} attempt {attempts + 1}")
            self.interrupt.check(f"stage {name!r} attempt {attempts + 1}")
            attempts += 1
            self._attempt_now[name] = attempts
            self._m_attempts.inc(stage=name)
            if breaker is not None and not breaker.allow():
                last_error = TransientStageError(
                    f"circuit breaker for {name!r} is {breaker.state}; "
                    f"attempt refused"
                )
                self._log.warning(
                    "stage attempt refused by circuit breaker",
                    stage=name,
                    attempt=attempts,
                    breaker_state=breaker.state,
                )
                continue
            # An attempt that fails after partially running (a shard
            # crash, say) has already folded losses into the injector
            # counters; the retry regenerates them, so the failed
            # attempt's contribution must be rolled back first.
            counter_baseline = {
                key: value
                for key, value in self.injectors.counters().items()
                if key.startswith(prefixes)
            } if prefixes else {}
            try:
                with self._tracer.span("attempt", stage=name, attempt=attempts):
                    self._maybe_inject_failure(name)
                    if serial_exec:
                        # With no pool, exec faults hit the stage body itself
                        # (shard 0): crash/poison surface as stage failures,
                        # hung genuinely hangs — serial mode has no watchdog.
                        apply_exec_fault(
                            self.exec_faults.lookup(name, 0, attempts)
                        )
                    output = fn()
            except (
                TransientStageError,
                PoisonShardError,
                WorkerCrashError,
            ) as exc:
                last_error = exc
                self._m_attempt_failures.inc(stage=name)
                if breaker is not None:
                    breaker.record_failure(str(exc))
                if counter_baseline:
                    self.injectors.restore_counters(counter_baseline)
                self._log.warning(
                    "stage attempt failed",
                    stage=name,
                    attempt=attempts,
                    max_attempts=self.retry.max_attempts,
                    error=str(exc),
                )
                if attempts < self.retry.max_attempts:
                    self._sleep(self.retry.delay(attempts))
                continue
            if breaker is not None:
                breaker.record_success()
            self._checkpoints[name] = output
            self._stage_cache_put(name, output)
            elapsed = time.perf_counter() - start
            _finish("ok")
            prof.set_events(_payload_events(output))
            self._add_report(
                StageReport(
                    name=name,
                    status="ok",
                    attempts=attempts,
                    elapsed=elapsed,
                )
            )
            self._log.info(
                "stage completed",
                stage=name,
                attempts=attempts,
                elapsed=round(elapsed, 3),
            )
            self._persist_stage(name)
            return output
        if degraded_factory is not None:
            output = degraded_factory()
            self._checkpoints[name] = output
            self._degraded_stages.add(name)
            _finish("degraded")
            self._add_report(
                StageReport(
                    name=name,
                    status="degraded",
                    attempts=attempts,
                    elapsed=time.perf_counter() - start,
                    error=str(last_error),
                )
            )
            self._log.error(
                "stage degraded to empty feed",
                stage=name,
                attempts=attempts,
                error=str(last_error),
            )
            self._persist_stage(name)
            return output
        _finish("failed")
        self._add_report(
            StageReport(
                name=name,
                status="failed",
                attempts=attempts,
                elapsed=time.perf_counter() - start,
                error=str(last_error),
            )
        )
        self._log.error(
            "stage failed permanently",
            stage=name,
            attempts=attempts,
            error=str(last_error),
        )
        raise StageFailedError(name, last_error)

    def _add_report(self, report: StageReport) -> None:
        with self._state_lock:
            self.stage_reports.append(report)

    # -- cross-run stage cache ------------------------------------------------

    def _stage_cacheable(self, name: str) -> bool:
        """Only the expensive observation stages, and only when no fault
        plan (data or exec) can make the output diverge from the pure
        function of the scenario config the fingerprint describes."""
        return (
            self.stage_cache is not None
            and self._cache_eligible
            and name in OBSERVATION_STAGES
        )

    def _stage_fingerprint(self, name: str) -> str:
        return stage_fingerprint(
            self.config,
            name,
            n_shards=(
                self.exec_config.n_shards if self.exec_config.parallel else 1
            ),
            capture_codec=self.capture_codec,
            detect_tier=resolve_detect_tier(
                self.detect_tier, self.capture_codec
            ),
        )

    def _stage_cache_get(self, name: str) -> Any:
        if not self._stage_cacheable(name):
            return CACHE_MISS
        return self.stage_cache.get(name, self._stage_fingerprint(name))

    def _stage_cache_put(self, name: str, output: Any) -> None:
        # Only "ok" outcomes reach here; degraded outputs never enter
        # the cache (they reflect a failure, not the scenario).
        if not self._stage_cacheable(name):
            return
        self.stage_cache.put(name, self._stage_fingerprint(name), output)

    def _maybe_inject_failure(self, name: str) -> None:
        remaining = self._pending_failures.get(name, 0)
        if remaining > 0:
            self._pending_failures[name] = remaining - 1
            raise TransientStageError(
                f"injected transient failure in stage {name!r}"
            )

    def _empty_measurement(self):
        """Typed empty outputs for a measurement feed that stayed down."""
        openintel = OpenIntelDataset(
            n_days=self.config.n_days,
            zone_stats=[],
            hosting_intervals=[],
            first_seen={},
        )
        return openintel, DPSUsageDataset(usages=[], n_days=self.config.n_days)

    # -- quality accounting ---------------------------------------------------

    def _build_quality(
        self,
        result: SimulationResult,
        baseline: Optional[HeadlineMetrics],
    ) -> DataQualityReport:
        plan, inj = self.plan, self.injectors
        feeds = [
            self._feed_quality(
                FEED_TELESCOPE,
                stage="telescope",
                uptime=plan.telescope_uptime(),
                observed=len(result.telescope_events),
                dropped=inj.telescope.dropped_batches,
                detail=(
                    f"{inj.telescope.dropped_packets} backscatter packets lost"
                    if inj.telescope.dropped_packets
                    else ""
                ),
            ),
            self._feed_quality(
                FEED_HONEYPOT,
                stage="honeypot",
                uptime=plan.honeypot_uptime(),
                observed=len(result.honeypot_events),
                dropped=inj.honeypot.dropped_batches,
                detail=(
                    f"{inj.honeypot.dropped_requests} requests lost"
                    if inj.honeypot.dropped_requests
                    else ""
                ),
            ),
            self._feed_quality(
                FEED_OPENINTEL,
                stage="measurement",
                uptime=plan.openintel_uptime(),
                observed=len(result.openintel.hosting_intervals),
                dropped=inj.openintel.dropped_interval_days,
                detail=(
                    f"{len(plan.openintel_missed_days)} snapshots missed, "
                    f"{inj.openintel.shifted_first_seen} first-seen shifted"
                    if plan.openintel_missed_days
                    else ""
                ),
            ),
            self._feed_quality(
                FEED_DPS,
                stage="measurement",
                uptime=plan.dps_uptime(),
                observed=len(result.dps_usage.usages),
                dropped=inj.dps.dropped_records + inj.dps.jittered_records,
                detail=(
                    f"{inj.dps.dropped_records} dropped, "
                    f"{inj.dps.jittered_records} day-jittered"
                    if plan.dps_corruption_rate
                    else ""
                ),
            ),
        ]
        headline = HeadlineMetrics.from_result(result)
        # Concurrent supervisors append stage reports in completion
        # order; canonicalize to pipeline order so the rendered report
        # is deterministic regardless of worker timing.
        stages = sorted(
            self.stage_reports,
            key=lambda report: (
                STAGE_ORDER.index(report.name)
                if report.name in STAGE_ORDER
                else len(STAGE_ORDER)
            ),
        )
        return DataQualityReport(
            feeds=feeds,
            stages=stages,
            records=[
                RecordQuality.from_load_report(report)
                for report in self.record_reports
            ],
            headline=headline,
            baseline=baseline,
            plan_description=plan.describe(),
            breakers=[
                self.breakers[stage].report()
                for stage in OBSERVATION_STAGES
                if stage in self.breakers
            ],
        )

    def _feed_quality(
        self,
        feed: str,
        stage: str,
        uptime: float,
        observed: int,
        dropped: int,
        detail: str,
    ) -> FeedQuality:
        if stage in self._degraded_stages:
            # The stage itself died: whatever the plan says, the feed is out.
            return FeedQuality(
                feed=feed,
                uptime=0.0,
                events_observed=observed,
                events_dropped=dropped,
                status=STATUS_DOWN,
                detail="stage failed permanently; empty feed substituted",
            )
        return FeedQuality(
            feed=feed,
            uptime=uptime,
            events_observed=observed,
            events_dropped=dropped,
            status=feed_status(uptime, dropped),
            detail=detail,
        )


def run_resilient(
    config: ScenarioConfig,
    plan: Optional[FaultPlan] = None,
    baseline: Optional[HeadlineMetrics] = None,
    retry: RetryPolicy = RetryPolicy(),
    sleep: Optional[Callable[[float], None]] = None,
    run_dir: Optional[Union[str, Path]] = None,
    exec_config: Optional[ExecConfig] = None,
    exec_faults: Optional[ExecFaultPlan] = None,
    deadline: Optional[Union[float, RunDeadline]] = None,
    interrupt: Optional[InterruptGuard] = None,
    telemetry: Optional[Telemetry] = None,
    capture_codec: str = "columnar",
    detect_tier: Optional[str] = None,
    stage_cache: Optional[Union[str, Path, StageCache]] = None,
) -> SimulationResult:
    """One-shot convenience wrapper around :class:`ResilientPipeline`."""
    return ResilientPipeline(
        config,
        plan=plan,
        retry=retry,
        sleep=sleep,
        run_dir=run_dir,
        exec_config=exec_config,
        exec_faults=exec_faults,
        deadline=deadline,
        interrupt=interrupt,
        telemetry=telemetry,
        capture_codec=capture_codec,
        detect_tier=detect_tier,
        stage_cache=stage_cache,
    ).run(baseline=baseline)
