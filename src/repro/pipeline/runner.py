"""Resilient stage orchestration over the simulation pipeline.

``run_simulation`` is the happy path: six stages chained directly, any
exception fatal. :class:`ResilientPipeline` runs the same stage functions
under supervision instead:

* **timing** — every stage's wall time and attempt count is recorded in a
  :class:`~repro.pipeline.quality.StageReport`;
* **retry with backoff** — :class:`TransientStageError` (the injectable
  stand-in for a flaky collector, full disk, or dropped connection) is
  retried up to ``RetryPolicy.max_attempts`` times with exponential
  backoff;
* **checkpointing** — completed stage outputs are kept, so a run that died
  mid-pipeline resumes from the first incomplete stage instead of
  regenerating the Internet. With a ``run_dir`` the checkpoints are also
  persisted to disk through :class:`~repro.store.CheckpointStore`
  (atomic, checksummed, schema-versioned), so even a SIGKILLed *process*
  resumes from the last valid checkpoint — ``python -m repro resume`` —
  with corrupt checkpoints detected at load and discarded back to the
  previous trustworthy stage;
* **graceful degradation** — an observation/measurement stage that stays
  broken yields an *empty but correctly typed* feed plus a quality flag,
  and the pipeline completes with honest, quantified losses. Core stages
  (internet, attacks, migration, fusion) have no meaningful degraded
  output and still fail the run.

A :class:`~repro.faults.plan.FaultPlan` wires per-feed injectors into the
observation stages and can schedule transient stage failures, which makes
the whole failure envelope reproducible from two integers (scenario seed,
fault seed). Because every stage function is deterministic given the
scenario config, a resumed run produces byte-identical headline output to
an uninterrupted one; injector loss counters are persisted alongside the
checkpoints so even the feed-quality accounting survives the crash.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.dns.openintel import OpenIntelDataset
from repro.dps.detection import DPSUsageDataset
from repro.faults.injectors import FaultInjectorSet
from repro.faults.plan import (
    FEED_DPS,
    FEED_HONEYPOT,
    FEED_OPENINTEL,
    FEED_TELESCOPE,
    FaultPlan,
)
from repro.log import get_logger
from repro.pipeline.config import ScenarioConfig
from repro.pipeline.quality import (
    DataQualityReport,
    FeedQuality,
    HeadlineMetrics,
    RecordQuality,
    STATUS_DOWN,
    StageReport,
    feed_status,
)
from repro.store.checkpoint import CheckpointIssue, CheckpointStore
from repro.pipeline.simulation import (
    SimulationResult,
    assemble_result,
    build_internet,
    fuse_observations,
    measure_dns,
    observe_honeypots,
    observe_telescope,
    run_migration,
    schedule_attacks,
)

#: Orchestrated stage names, in execution order.
STAGE_ORDER = (
    "internet",
    "attacks",
    "migration",
    "telescope",
    "honeypot",
    "measurement",
    "fusion",
)

class TransientStageError(RuntimeError):
    """A stage failure worth retrying (collector hiccup, not a bug)."""


class StageFailedError(RuntimeError):
    """A core stage exhausted its retries; the run cannot continue."""

    def __init__(self, stage: str, cause: Exception) -> None:
        super().__init__(f"stage {stage!r} failed permanently: {cause}")
        self.stage = stage
        self.cause = cause


@dataclass(frozen=True)
class RetryPolicy:
    """How patient the runner is with transient failures."""

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 60.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")
        if self.backoff_base < 0 or self.backoff_factor < 1:
            raise ValueError("backoff must be non-negative and non-shrinking")
        if self.backoff_max < 0:
            raise ValueError("backoff cap must be non-negative")

    def delay(self, attempt: int) -> float:
        """Sleep before retry number *attempt* (1-based), capped.

        The cap also guards the exponentiation itself: at high attempt
        counts ``factor ** attempt`` overflows a float, which must read
        as "wait the maximum", not crash the retry loop it protects.
        """
        if self.backoff_base == 0.0:
            return 0.0
        try:
            raw = self.backoff_base * self.backoff_factor ** (attempt - 1)
        except OverflowError:
            return self.backoff_max
        return min(raw, self.backoff_max)


class ResilientPipeline:
    """Supervised execution of the simulation with optional fault plan.

    With a ``run_dir`` the pipeline is *durable*: every completed stage is
    checkpointed to disk and a fresh process pointed at the same directory
    (``python -m repro resume``) restores the longest valid prefix —
    verifying the checksum of each checkpoint and falling back to the
    previous stage when one fails validation. ``crash_after`` is the
    recovery-drill hook: the process dies with ``os._exit`` (no cleanup,
    the moral equivalent of SIGKILL) immediately after that stage's
    checkpoint reaches disk.
    """

    #: File under the run dir carrying resumable non-checkpoint state.
    STATE_FILE = "state.json"

    def __init__(
        self,
        config: ScenarioConfig,
        plan: Optional[FaultPlan] = None,
        retry: RetryPolicy = RetryPolicy(),
        sleep: Optional[Callable[[float], None]] = None,
        run_dir: Optional[Union[str, Path]] = None,
        crash_after: Optional[str] = None,
    ) -> None:
        self.config = config
        self.plan = plan if plan is not None else FaultPlan.none(
            config.n_days, config.n_honeypots
        )
        if self.plan.n_days != config.n_days:
            raise ValueError(
                "fault plan window does not match the scenario window"
            )
        if crash_after is not None and crash_after not in STAGE_ORDER:
            raise ValueError(
                f"unknown crash_after stage: {crash_after!r} "
                f"(stages: {', '.join(STAGE_ORDER)})"
            )
        self.retry = retry
        self.injectors = FaultInjectorSet(self.plan)
        self.stage_reports: List[StageReport] = []
        self.record_reports: List[Any] = []
        self.checkpoint_issues: List[CheckpointIssue] = []
        self._checkpoints: Dict[str, Any] = {}
        self._pending_failures = self.plan.transient_failure_counts()
        self._degraded_stages: set = set()
        self._sleep = sleep if sleep is not None else time.sleep
        self._log = get_logger("runner")
        self.crash_after = crash_after
        self.store: Optional[CheckpointStore] = None
        if run_dir is not None:
            self.store = CheckpointStore(run_dir)
            self._restore_from_store()

    # -- durable state --------------------------------------------------------

    def _restore_from_store(self) -> None:
        """Adopt the longest valid checkpoint prefix from the run dir."""
        payloads, issues = self.store.load_valid_prefix(STAGE_ORDER)
        self._checkpoints.update(payloads)
        self.checkpoint_issues = issues
        # Runner state is snapshotted per completed stage; adopt the
        # snapshot of the *last restored* stage, so counters belonging to
        # a discarded checkpoint are dropped with it and regenerated
        # deterministically by the re-run.
        state = self.store.read_json(self.STATE_FILE) or {}
        snapshots = state.get("stage_state", {})
        last_restored = None
        for stage in STAGE_ORDER:
            if stage in payloads:
                last_restored = stage
        snapshot = snapshots.get(last_restored) if last_restored else None
        if snapshot:
            self.injectors.restore_counters(
                snapshot.get("injector_counters", {})
            )
            self._degraded_stages.update(
                stage
                for stage in snapshot.get("degraded_stages", [])
                if stage in payloads
            )
        for stage in payloads:
            self._log.info("stage restored from checkpoint", stage=stage)
        for issue in issues:
            self._log.warning(
                "checkpoint discarded",
                stage=issue.stage,
                kind=issue.kind,
                detail=issue.detail,
            )

    def _persist_stage(self, name: str) -> None:
        """Checkpoint a completed stage and the resumable runner state."""
        if self.store is None:
            return
        self.store.save(name, self._checkpoints[name])
        state = self.store.read_json(self.STATE_FILE) or {}
        snapshots = state.setdefault("stage_state", {})
        snapshots[name] = {
            "injector_counters": self.injectors.counters(),
            "degraded_stages": sorted(self._degraded_stages),
        }
        self.store.write_json(self.STATE_FILE, state)
        if self.crash_after == name:
            self._log.error(
                "simulated hard crash (recovery drill)", stage=name
            )
            os._exit(137)  # SIGKILL semantics: no cleanup, no atexit

    def attach_record_report(self, report: Any) -> None:
        """Surface a :class:`FeedLoadReport` in this run's quality report."""
        self.record_reports.append(report)

    # -- orchestration --------------------------------------------------------

    def run(
        self, baseline: Optional[HeadlineMetrics] = None
    ) -> SimulationResult:
        """Run (or resume) the pipeline; returns a result with ``quality``."""
        config = self.config
        self.stage_reports = []
        internet = self._run_stage("internet", lambda: build_internet(config))
        ground_truth = self._run_stage(
            "attacks", lambda: schedule_attacks(config, internet)
        )

        def _migrate():
            diversion_log, ledger = run_migration(
                config, internet, ground_truth
            )
            # Migration mutates internet.zones in place, so the stage's
            # checkpoint must carry the *post-migration* internet: a resumed
            # process restoring this stage would otherwise hand later stages
            # the stale pre-migration snapshot. Bundling all three into one
            # payload also keeps the references diversion_log and ledger
            # share with the zones consistent across the pickle round-trip.
            return diversion_log, ledger, internet

        diversion_log, ledger, internet = self._run_stage(
            "migration", _migrate
        )
        telescope_events = self._run_stage(
            "telescope",
            lambda: observe_telescope(
                config, ground_truth, fault=self.injectors.telescope
            ),
            degraded_factory=list,
        )
        honeypot_events = self._run_stage(
            "honeypot",
            lambda: observe_honeypots(
                config, ground_truth, fault=self.injectors.honeypot
            ),
            degraded_factory=list,
        )
        openintel, dps_usage = self._run_stage(
            "measurement",
            lambda: measure_dns(
                config,
                internet,
                diversion_log,
                openintel_fault=self.injectors.openintel,
                dps_fault=self.injectors.dps,
            ),
            degraded_factory=self._empty_measurement,
        )
        fused, web_index = self._run_stage(
            "fusion",
            lambda: fuse_observations(
                internet, telescope_events, honeypot_events, openintel
            ),
        )
        result = assemble_result(
            config,
            internet,
            diversion_log,
            ledger,
            ground_truth,
            telescope_events,
            honeypot_events,
            fused,
            openintel,
            dps_usage,
            web_index,
        )
        result.quality = self._build_quality(result, baseline)
        return result

    def _run_stage(
        self,
        name: str,
        fn: Callable[[], Any],
        degraded_factory: Optional[Callable[[], Any]] = None,
    ) -> Any:
        if name in self._checkpoints:
            self.stage_reports.append(
                StageReport(name=name, status="cached", attempts=0)
            )
            self._log.debug("stage served from checkpoint", stage=name)
            return self._checkpoints[name]
        self._log.debug("stage starting", stage=name)
        start = time.perf_counter()
        attempts = 0
        last_error: Optional[Exception] = None
        while attempts < self.retry.max_attempts:
            attempts += 1
            try:
                self._maybe_inject_failure(name)
                output = fn()
            except TransientStageError as exc:
                last_error = exc
                self._log.warning(
                    "stage attempt failed",
                    stage=name,
                    attempt=attempts,
                    max_attempts=self.retry.max_attempts,
                    error=str(exc),
                )
                if attempts < self.retry.max_attempts:
                    self._sleep(self.retry.delay(attempts))
                continue
            self._checkpoints[name] = output
            elapsed = time.perf_counter() - start
            self.stage_reports.append(
                StageReport(
                    name=name,
                    status="ok",
                    attempts=attempts,
                    elapsed=elapsed,
                )
            )
            self._log.info(
                "stage completed",
                stage=name,
                attempts=attempts,
                elapsed=round(elapsed, 3),
            )
            self._persist_stage(name)
            return output
        if degraded_factory is not None:
            output = degraded_factory()
            self._checkpoints[name] = output
            self._degraded_stages.add(name)
            self.stage_reports.append(
                StageReport(
                    name=name,
                    status="degraded",
                    attempts=attempts,
                    elapsed=time.perf_counter() - start,
                    error=str(last_error),
                )
            )
            self._log.error(
                "stage degraded to empty feed",
                stage=name,
                attempts=attempts,
                error=str(last_error),
            )
            self._persist_stage(name)
            return output
        self.stage_reports.append(
            StageReport(
                name=name,
                status="failed",
                attempts=attempts,
                elapsed=time.perf_counter() - start,
                error=str(last_error),
            )
        )
        self._log.error(
            "stage failed permanently",
            stage=name,
            attempts=attempts,
            error=str(last_error),
        )
        raise StageFailedError(name, last_error)

    def _maybe_inject_failure(self, name: str) -> None:
        remaining = self._pending_failures.get(name, 0)
        if remaining > 0:
            self._pending_failures[name] = remaining - 1
            raise TransientStageError(
                f"injected transient failure in stage {name!r}"
            )

    def _empty_measurement(self):
        """Typed empty outputs for a measurement feed that stayed down."""
        openintel = OpenIntelDataset(
            n_days=self.config.n_days,
            zone_stats=[],
            hosting_intervals=[],
            first_seen={},
        )
        return openintel, DPSUsageDataset(usages=[], n_days=self.config.n_days)

    # -- quality accounting ---------------------------------------------------

    def _build_quality(
        self,
        result: SimulationResult,
        baseline: Optional[HeadlineMetrics],
    ) -> DataQualityReport:
        plan, inj = self.plan, self.injectors
        feeds = [
            self._feed_quality(
                FEED_TELESCOPE,
                stage="telescope",
                uptime=plan.telescope_uptime(),
                observed=len(result.telescope_events),
                dropped=inj.telescope.dropped_batches,
                detail=(
                    f"{inj.telescope.dropped_packets} backscatter packets lost"
                    if inj.telescope.dropped_packets
                    else ""
                ),
            ),
            self._feed_quality(
                FEED_HONEYPOT,
                stage="honeypot",
                uptime=plan.honeypot_uptime(),
                observed=len(result.honeypot_events),
                dropped=inj.honeypot.dropped_batches,
                detail=(
                    f"{inj.honeypot.dropped_requests} requests lost"
                    if inj.honeypot.dropped_requests
                    else ""
                ),
            ),
            self._feed_quality(
                FEED_OPENINTEL,
                stage="measurement",
                uptime=plan.openintel_uptime(),
                observed=len(result.openintel.hosting_intervals),
                dropped=inj.openintel.dropped_interval_days,
                detail=(
                    f"{len(plan.openintel_missed_days)} snapshots missed, "
                    f"{inj.openintel.shifted_first_seen} first-seen shifted"
                    if plan.openintel_missed_days
                    else ""
                ),
            ),
            self._feed_quality(
                FEED_DPS,
                stage="measurement",
                uptime=plan.dps_uptime(),
                observed=len(result.dps_usage.usages),
                dropped=inj.dps.dropped_records + inj.dps.jittered_records,
                detail=(
                    f"{inj.dps.dropped_records} dropped, "
                    f"{inj.dps.jittered_records} day-jittered"
                    if plan.dps_corruption_rate
                    else ""
                ),
            ),
        ]
        headline = HeadlineMetrics.from_result(result)
        return DataQualityReport(
            feeds=feeds,
            stages=list(self.stage_reports),
            records=[
                RecordQuality.from_load_report(report)
                for report in self.record_reports
            ],
            headline=headline,
            baseline=baseline,
            plan_description=plan.describe(),
        )

    def _feed_quality(
        self,
        feed: str,
        stage: str,
        uptime: float,
        observed: int,
        dropped: int,
        detail: str,
    ) -> FeedQuality:
        if stage in self._degraded_stages:
            # The stage itself died: whatever the plan says, the feed is out.
            return FeedQuality(
                feed=feed,
                uptime=0.0,
                events_observed=observed,
                events_dropped=dropped,
                status=STATUS_DOWN,
                detail="stage failed permanently; empty feed substituted",
            )
        return FeedQuality(
            feed=feed,
            uptime=uptime,
            events_observed=observed,
            events_dropped=dropped,
            status=feed_status(uptime, dropped),
            detail=detail,
        )


def run_resilient(
    config: ScenarioConfig,
    plan: Optional[FaultPlan] = None,
    baseline: Optional[HeadlineMetrics] = None,
    retry: RetryPolicy = RetryPolicy(),
    sleep: Optional[Callable[[float], None]] = None,
    run_dir: Optional[Union[str, Path]] = None,
) -> SimulationResult:
    """One-shot convenience wrapper around :class:`ResilientPipeline`."""
    return ResilientPipeline(
        config, plan=plan, retry=retry, sleep=sleep, run_dir=run_dir
    ).run(baseline=baseline)
