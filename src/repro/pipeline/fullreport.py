"""One-call regeneration of the paper's entire evaluation section.

``generate_full_report`` takes a finished :class:`SimulationResult` and
returns every table and figure as rendered text, keyed by artifact id
(``table1`` .. ``table9``, ``fig1`` .. ``fig11``, ``joint``, plus the
Section 8 extensions). The CLI and the ``reproduce_paper`` example both
build on it.
"""

from __future__ import annotations

from typing import Dict

from repro.core.cohosting import cohosting_bins
from repro.core.distributions import (
    duration_cdf,
    intensity_cdf,
    per_protocol_intensity_cdfs,
)
from repro.core.fusion import FusedDataset
from repro.core.infra import dns_impact, mail_impact
from repro.core.intensity import IntensityModel, intensity_percentile_table
from repro.core.migration import MigrationAnalysis
from repro.core.ports import (
    port_cardinality,
    service_table,
    web_infrastructure_share,
    web_port_comparison,
)
from repro.core.rankings import (
    country_ranking,
    ip_protocol_distribution,
    reflection_protocol_distribution,
)
from repro.core.report import (
    render_cohosting,
    render_delay_cdf,
    render_duration_cdf,
    render_intensity_cdf,
    render_series_summary,
    render_table,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
    render_table6,
    render_table7,
    render_table8,
    render_table9,
    render_taxonomy,
)
from repro.core.taxonomy import classify_sites, taxonomy_counts
from repro.core.timeseries import daily_series, figure1_series
from repro.core.webmap import WebImpactAnalysis, sites_alive_per_day
from repro.net.packet import PROTO_TCP, PROTO_UDP


def generate_full_report(result) -> Dict[str, str]:
    """Render every table and figure for one simulation result."""
    fused: FusedDataset = result.fused
    n_days = result.n_days
    report: Dict[str, str] = {}

    # Tables 1-2.
    report["table1"] = render_table1(fused.summary_rows())
    report["table2"] = render_table2(
        result.openintel.zone_stats,
        result.openintel.total_web_sites,
        result.openintel.total_data_points,
    )
    report["table3"] = render_table3(result.dps_usage.provider_site_counts())
    report["table4"] = (
        render_table4(country_ranking(fused.telescope), "Telescope")
        + "\n\n"
        + render_table4(country_ranking(fused.honeypot), "Honeypot")
    )
    report["table5"] = render_table5(ip_protocol_distribution(fused.telescope))
    report["table6"] = render_table6(
        reflection_protocol_distribution(fused.honeypot)
    )
    report["table7"] = render_table7(port_cardinality(fused.telescope))
    report["table8"] = render_table8(
        service_table(fused.telescope, PROTO_TCP),
        service_table(fused.telescope, PROTO_UDP),
    )

    # Figures 1-5.
    report["fig1"] = "\n\n".join(
        render_series_summary(panel)
        for panel in figure1_series(fused, n_days).values()
    )
    report["fig2"] = (
        render_duration_cdf(duration_cdf(fused.telescope), "Telescope")
        + "\n\n"
        + render_duration_cdf(duration_cdf(fused.honeypot), "Honeypot")
    )
    report["fig3"] = render_intensity_cdf(
        intensity_cdf(fused.telescope), "Telescope (Figure 3)"
    )
    report["fig4"] = "\n\n".join(
        render_intensity_cdf(cdf, f"Honeypot {label} (Figure 4)")
        for label, cdf in per_protocol_intensity_cdfs(fused.honeypot).items()
    )
    model = IntensityModel(fused.combined.events)
    medium = model.medium_plus(fused.combined.events)
    report["fig5"] = render_series_summary(
        daily_series(medium, n_days, "Medium+ combined")
    )

    # Section 5: Figures 6-7.
    impact = WebImpactAnalysis(result.web_index)
    associations = impact.associate(fused.combined.events)
    report["fig6"] = render_cohosting(cohosting_bins(associations))
    alive = sites_alive_per_day(result.openintel.first_seen, n_days)
    counts, fractions = impact.daily_affected(
        fused.combined.events, n_days, alive
    )
    report["fig7"] = render_table(
        ["statistic", "value"],
        [
            ["sites/day (mean)", f"{counts.mean():.0f}"],
            ["share of namespace (mean)", f"{fractions.mean():.2%}"],
            ["share of namespace (max)", f"{fractions.max():.2%}"],
        ],
        title="Figure 7: Web sites on attacked IPs",
    )

    # Section 6: Figures 8-11, Table 9.
    histories = impact.site_histories(fused.combined.events)
    first_attack = {d: h.first_attack_day() for d, h in histories.items()}
    dps_first = result.dps_usage.first_day_by_domain()
    report["fig8"] = render_taxonomy(
        taxonomy_counts(
            classify_sites(result.openintel.first_seen, first_attack, dps_first)
        )
    )
    migration = MigrationAnalysis(histories, dps_first, model)
    all_over, migrating_over = migration.repetition_effect()
    report["fig9"] = render_table(
        ["population", ">5 attacks"],
        [
            ["all attacked sites", f"{all_over:.2%}"],
            ["migrating sites", f"{migrating_over:.2%}"],
        ],
        title="Figure 9: attack frequency vs migration",
    )
    delay_cdfs = {"All": migration.delay_cdf()}
    for label, fraction in (("Top 5%", 0.05), ("Top 1%", 0.01)):
        try:
            delay_cdfs[label] = migration.delay_cdf(top_fraction=fraction)
        except ValueError:
            continue
    report["fig10"] = render_delay_cdf(delay_cdfs)
    try:
        report["fig11"] = render_delay_cdf(
            {">=4h attacks": migration.delay_cdf_long_attacks()}
        )
    except ValueError:
        report["fig11"] = "no migrations followed a >=4h attack in this run"
    site_intensity = (
        max(model.normalized(e) for e in history.events)
        for history in histories.values()
    )
    report["table9"] = render_table9(
        intensity_percentile_table(site_intensity)
    )

    # Joint attacks + extensions.
    joint = fused.joint_analysis()
    report["joint"] = render_table(
        ["statistic", "value"],
        [
            ["shared targets", joint.n_shared_targets],
            ["simultaneous targets", joint.n_joint_targets],
            ["joint single-port", f"{joint.single_port_fraction:.1%}"],
            ["joint UDP 27015", f"{joint.udp_27015_fraction:.1%}"],
            ["joint NTP share",
             f"{joint.reflection_protocol_shares.get('NTP', 0.0):.1%}"],
        ],
        title="Joint attacks (Section 4)",
    )
    mail = mail_impact(fused.combined.events, result.openintel.mail_intervals)
    dns = dns_impact(fused.combined.events, result.openintel.ns_intervals)
    report["extensions"] = render_table(
        ["infrastructure", "attacked IPs", "affected domains", "share"],
        [
            [impact_.label, impact_.attacked_infrastructure_ips,
             impact_.affected_domains, f"{impact_.affected_fraction:.1%}"]
            for impact_ in (mail, dns)
        ],
        title="Section 8 extensions: mail & DNS impact",
    )
    web_share = web_infrastructure_share(fused.telescope)
    comparison = web_port_comparison(fused.telescope)
    report["webports"] = render_table(
        ["statistic", "value"],
        [
            ["single-port TCP on Web ports", f"{web_share:.1%}"],
            ["median intensity web/all",
             f"{comparison.median_intensity_web:.1f} / "
             f"{comparison.median_intensity_all:.1f}"],
            ["mean duration web/all (min)",
             f"{comparison.mean_duration_web / 60:.0f} / "
             f"{comparison.mean_duration_all / 60:.0f}"],
        ],
        title="Web-port attacks (Section 4)",
    )
    return report


#: Print order for CLI / example output.
REPORT_ORDER = (
    "table1", "table2", "table3", "table4", "table5", "table6", "table7",
    "table8", "table9", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
    "fig7", "fig8", "fig9", "fig10", "fig11", "joint", "webports",
    "extensions",
)
